"""Semi-linear sets and unary languages (the Section 3 substrate)."""

from repro.semilinear.extraction import UnaryExtraction, extract_semilinear
from repro.semilinear.linear_sets import LinearSet, SemiLinearSet
from repro.semilinear.unary import (
    detect_eventual_periodicity,
    detect_robust_periodicity,
    is_sample_semilinear,
    lengths_of,
    powers_of_two,
    scaled_powers_of_two,
    semilinear_gap_witness,
    unary_language_of,
)

__all__ = [
    "UnaryExtraction",
    "extract_semilinear",
    "LinearSet",
    "SemiLinearSet",
    "detect_eventual_periodicity",
    "detect_robust_periodicity",
    "is_sample_semilinear",
    "lengths_of",
    "powers_of_two",
    "scaled_powers_of_two",
    "semilinear_gap_witness",
    "unary_language_of",
]
