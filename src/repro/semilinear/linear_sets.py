"""Linear and semi-linear subsets of ℕ.

Section 3 of the paper: a set ``S ⊆ ℕ`` is *linear* if
``S = { m₀ + Σ mᵢ·nᵢ | nᵢ ≥ 0 }`` for an offset ``m₀`` and periods
``m₁…m_r``; *semi-linear* if it is a finite union of linear sets.  Over a
unary alphabet, semi-linear languages are exactly the languages of
Presburger arithmetic, of core spanners, of generalized core spanners —
and of FC.  ``{2ⁿ}`` is not semi-linear, which is the engine behind
Lemma 3.6 (pow2).

For subsets of ℕ, semi-linear = *eventually periodic*; the classes here
exploit that to provide exact membership, union, complement, and a
normalisation to (finite exceptional part, threshold, period) form.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd

__all__ = ["LinearSet", "SemiLinearSet"]


@dataclass(frozen=True)
class LinearSet:
    """The linear set ``{ offset + Σ periods[i]·nᵢ | nᵢ ≥ 0 }``.

    Over ℕ (dimension 1) the generated set equals
    ``{ offset + g·n | n ≥ 0 }`` restricted to the numerical semigroup of
    the periods; membership is decided exactly by bounded coin-change.
    """

    offset: int
    periods: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise ValueError("offset must be ≥ 0")
        if any(m <= 0 for m in self.periods):
            raise ValueError("periods must be positive (drop zero periods)")
        object.__setattr__(self, "periods", tuple(sorted(self.periods)))

    def __contains__(self, value: int) -> bool:
        remainder = value - self.offset
        if remainder < 0:
            return False
        if remainder == 0:
            return True
        if not self.periods:
            return False
        g = gcd(*self.periods) if len(self.periods) > 1 else self.periods[0]
        if remainder % g != 0:
            return False
        # Coin problem: beyond the Frobenius bound everything divisible by
        # g is representable; below it, check by DP.
        scaled = [m // g for m in self.periods]
        target = remainder // g
        frobenius_bound = max(scaled) ** 2  # ≥ Frobenius number + 1
        if target >= frobenius_bound:
            return True
        reachable = [False] * (target + 1)
        reachable[0] = True
        for coin in scaled:
            for amount in range(coin, target + 1):
                if reachable[amount - coin]:
                    reachable[amount] = True
        return reachable[target]

    def elements_up_to(self, bound: int) -> frozenset[int]:
        """All members ≤ ``bound``."""
        return frozenset(v for v in range(bound + 1) if v in self)


@dataclass(frozen=True)
class SemiLinearSet:
    """A finite union of :class:`LinearSet` components."""

    components: tuple[LinearSet, ...] = ()

    @classmethod
    def from_parts(cls, *parts: "LinearSet | int") -> "SemiLinearSet":
        """Build from linear sets and/or bare integers (singletons)."""
        built = tuple(
            part if isinstance(part, LinearSet) else LinearSet(part)
            for part in parts
        )
        return cls(built)

    @classmethod
    def arithmetic_progression(cls, offset: int, period: int) -> "SemiLinearSet":
        """``{offset + period·n}`` as a one-component semi-linear set."""
        return cls((LinearSet(offset, (period,)),))

    def __contains__(self, value: int) -> bool:
        return any(value in component for component in self.components)

    def union(self, other: "SemiLinearSet") -> "SemiLinearSet":
        """Semi-linear sets are closed under union (trivially)."""
        return SemiLinearSet(self.components + other.components)

    def elements_up_to(self, bound: int) -> frozenset[int]:
        """All members ≤ ``bound``."""
        result: set[int] = set()
        for component in self.components:
            result |= component.elements_up_to(bound)
        return frozenset(result)

    def eventually_periodic_form(
        self, probe_bound: int = 4096
    ) -> tuple[frozenset[int], int, int]:
        """Return ``(exceptions, threshold, period)`` such that membership
        above ``threshold`` is periodic with ``period`` and below it is
        given by ``exceptions``.

        Every semi-linear subset of ℕ admits such a form; we compute it by
        probing up to a bound that dominates all offsets and Frobenius
        bounds of the components.
        """
        if not self.components:
            return frozenset(), 0, 1
        period = 1
        for component in self.components:
            for m in component.periods:
                period = period * m // gcd(period, m)
        threshold = max(
            (
                component.offset
                + (max(component.periods) ** 2 if component.periods else 0)
                for component in self.components
            ),
            default=0,
        )
        threshold = min(threshold, probe_bound)
        exceptions = frozenset(
            v for v in range(threshold) if v in self
        )
        return exceptions, threshold, period
