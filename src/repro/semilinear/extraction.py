"""Extract the semi-linear set of a unary FC sentence.

Over Σ = {a}, FC defines exactly the semi-linear languages (the Section 3
citation chain).  Constructively: probe the sentence on ``a⁰ … a^bound``,
detect the eventual period with the window-doubling robust detector, and
package the result as a :class:`SemiLinearSet` together with the evidence
(threshold, period, exceptional part).

This makes the abstract equivalence usable: given any unary FC sentence,
``extract_semilinear`` returns the arithmetic object it denotes — or
reports that no window-stable structure was found at the probed scale
(which for genuine FC sentences just means the bound was too small, and
for oracle-backed pseudo-sentences like "length is a power of two" is the
expected non-semi-linear verdict).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fc.semantics import defines_language_member
from repro.fc.syntax import Formula
from repro.semilinear.linear_sets import LinearSet, SemiLinearSet
from repro.semilinear.unary import detect_eventual_periodicity

__all__ = ["UnaryExtraction", "extract_semilinear"]


@dataclass(frozen=True)
class UnaryExtraction:
    """The result of probing a unary sentence for semi-linear structure.

    ``semilinear`` is ``None`` when no window-stable structure was found;
    otherwise it denotes the same length set as the sentence on the
    doubled probe window (and, for genuine FC sentences, everywhere).
    """

    threshold: int | None
    period: int | None
    exceptions: frozenset[int]
    semilinear: "SemiLinearSet | None"
    probe_bound: int

    @property
    def found(self) -> bool:
        return self.semilinear is not None


def extract_semilinear(
    sentence: Formula, probe_bound: int = 48, letter: str = "a"
) -> UnaryExtraction:
    """Probe a unary FC sentence and extract its semi-linear length set.

    Detection on ``{0..probe_bound}`` must survive doubling (membership is
    re-checked by *model checking* on the doubled window, so the result is
    backed by the sentence itself, not by extrapolation of the sample).
    """

    def member(n: int) -> bool:
        return defines_language_member(letter * n, sentence, letter)

    sample = frozenset(n for n in range(probe_bound + 1) if member(n))
    detected = detect_eventual_periodicity(sample, probe_bound)
    if detected is None:
        return UnaryExtraction(None, None, sample, None, probe_bound)
    threshold, period = detected
    # Window-doubling validation against the sentence itself.
    for n in range(threshold, 2 * probe_bound - period + 1):
        if member(n) != member(n + period):
            return UnaryExtraction(None, None, sample, None, probe_bound)
    exceptions = frozenset(n for n in sample if n < threshold)
    components: list[LinearSet] = [LinearSet(n) for n in sorted(exceptions)]
    for offset in range(threshold, threshold + period):
        if member(offset):
            components.append(LinearSet(offset, (period,)))
    return UnaryExtraction(
        threshold,
        period,
        exceptions,
        SemiLinearSet(tuple(components)),
        probe_bound,
    )
