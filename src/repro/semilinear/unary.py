"""Unary languages as subsets of ℕ, and semi-linearity detection.

A unary language ``L ⊆ {a}*`` is identified with ``S_L = {|w| : w ∈ L}``.
The paper's Section 3 chain of citations gives: over a unary alphabet,
FC = core spanners = generalized core spanners = Presburger = semi-linear.
Hence any unary language whose length set is *not* eventually periodic —
such as ``L_pow = {a^{2ⁿ}}`` — is outside FC; that is Lemma 3.6's engine.

This module provides the translation, an eventual-periodicity detector for
finite samples (the empirical face of "semi-linear"), and the concrete
``{2ⁿ}`` / ``{i·2ⁿ}`` non-semi-linearity witnesses used by Lemma 3.6 and
Proposition 4.9.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.semilinear.linear_sets import SemiLinearSet

__all__ = [
    "lengths_of",
    "unary_language_of",
    "detect_eventual_periodicity",
    "detect_robust_periodicity",
    "is_sample_semilinear",
    "powers_of_two",
    "scaled_powers_of_two",
    "semilinear_gap_witness",
]


def lengths_of(language: Iterable[str]) -> frozenset[int]:
    """``S_L``: the length set of a unary language sample."""
    return frozenset(len(word) for word in language)


def unary_language_of(numbers: Iterable[int], letter: str = "a") -> list[str]:
    """The unary language ``{ letterⁿ : n ∈ numbers }`` (sorted)."""
    return [letter * n for n in sorted(set(numbers))]


def detect_eventual_periodicity(
    sample: frozenset[int], bound: int
) -> tuple[int, int] | None:
    """Find ``(threshold, period)`` making ``sample`` (as a subset of
    ``{0..bound}``) eventually periodic, or ``None``.

    A set that is semi-linear restricted to ``{0..bound}`` must admit such
    a pair with ``threshold + 2·period ≤ bound`` to be *detectable*; the
    converse direction (a detected period genuinely extends to infinity)
    cannot be concluded from a finite sample, so callers treat a ``None``
    as evidence of non-semi-linearity at the probed scale, exactly like
    the paper treats the growth of ``2ⁿ``.
    """
    membership = [n in sample for n in range(bound + 1)]
    for period in range(1, bound // 2 + 1):
        for threshold in range(0, bound - 2 * period + 1):
            if all(
                membership[n] == membership[n + period]
                for n in range(threshold, bound - period + 1)
            ):
                return threshold, period
    return None


def is_sample_semilinear(sample: frozenset[int], bound: int) -> bool:
    """Whether the sample looks eventually periodic on ``{0..bound}``."""
    return detect_eventual_periodicity(sample, bound) is not None


def detect_robust_periodicity(
    member: Callable[[int], bool], bound: int
) -> tuple[int, int] | None:
    """Window-stable eventual periodicity for an *infinite* set.

    Any finite window of any set is trivially eventually periodic (the
    tail beyond the largest member is constant), so windowed detection
    alone cannot refute semi-linearity.  This detector requires the
    structure found on ``{0..bound}`` to *survive doubling*: a
    ``(threshold, period)`` detected on the small window must still
    describe membership on ``{0..2·bound}``.  Genuinely semi-linear sets
    pass for large enough bounds; ``{2ⁿ}`` fails at every bound because
    the next power always lands inside the doubled window.
    """
    sample = frozenset(n for n in range(bound + 1) if member(n))
    detected = detect_eventual_periodicity(sample, bound)
    if detected is None:
        return None
    threshold, period = detected
    for n in range(threshold, 2 * bound - period + 1):
        if member(n) != member(n + period):
            return None
    return detected


def powers_of_two(bound: int) -> frozenset[int]:
    """``{2ⁿ} ∩ {0..bound}`` — the Lemma 3.6 non-semi-linear set."""
    result = set()
    value = 1
    while value <= bound:
        result.add(value)
        value *= 2
    return frozenset(result)


def scaled_powers_of_two(scale: int, bound: int) -> frozenset[int]:
    """``{scale·2ⁿ} ∩ {0..bound}`` — Proposition 4.9's variant."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    result = set()
    value = 2 * scale
    while value <= bound:
        result.add(value)
        value *= 2
    return frozenset(result)


def semilinear_gap_witness(
    semilinear: SemiLinearSet, target: Callable[[int], bool], bound: int
) -> int | None:
    """Return the least ``n ≤ bound`` where ``semilinear`` and the target
    predicate disagree (``None`` if they agree up to ``bound``).

    Used to show concretely that *no* small semi-linear set matches
    ``{2ⁿ}``: every candidate disagrees somewhere below the bound.
    """
    for n in range(bound + 1):
        if (n in semilinear) != target(n):
            return n
    return None
