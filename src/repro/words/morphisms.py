"""Word morphisms ``h : Σ* → Σ*``.

A morphism is determined by its action on letters and extends by
``h(xy) = h(x)·h(y)``.  Theorem 5.8 shows that the graph relation
``Morph_h = {(x, h(x))}`` is not FC[REG]-definable; the concrete morphism
used in the proof (``a ↦ b``, ``b ↦ b``) is provided as a ready-made
instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

__all__ = ["Morphism", "PAPER_MORPHISM", "identity_morphism", "erasing_morphism"]


@dataclass(frozen=True)
class Morphism:
    """A word morphism given by its letter images.

    Attributes:
        letter_images: mapping from single letters to their image words.
        name: optional display name.
    """

    letter_images: Mapping[str, str]
    name: str = field(default="h")

    def __post_init__(self) -> None:
        for letter in self.letter_images:
            if len(letter) != 1:
                raise ValueError(f"morphism keys must be letters, got {letter!r}")

    def __call__(self, word: str) -> str:
        """Apply the morphism: ``h(w) = h(w[0])·…·h(w[-1])``."""
        try:
            return "".join(self.letter_images[letter] for letter in word)
        except KeyError as exc:
            raise ValueError(
                f"morphism {self.name} undefined on letter {exc.args[0]!r}"
            ) from None

    def is_erasing(self) -> bool:
        """Return ``True`` iff some letter maps to the empty word."""
        return any(not image for image in self.letter_images.values())

    def is_length_preserving(self) -> bool:
        """Return ``True`` iff every letter maps to a single letter."""
        return all(len(image) == 1 for image in self.letter_images.values())

    def graph(self, words: list[str]) -> set[tuple[str, str]]:
        """Return ``{(w, h(w)) : w ∈ words}`` — a finite slice of Morph_h."""
        return {(word, self(word)) for word in words}


#: The morphism used in the proof of Theorem 5.8: a ↦ b, b ↦ b.
PAPER_MORPHISM = Morphism({"a": "b", "b": "b"}, name="h_paper")


def identity_morphism(alphabet: str) -> Morphism:
    """Return the identity morphism on ``alphabet``."""
    return Morphism({letter: letter for letter in alphabet}, name="id")


def erasing_morphism(alphabet: str, erased: str) -> Morphism:
    """Return the morphism erasing the letters of ``erased`` and fixing the
    rest of ``alphabet``."""
    images = {
        letter: ("" if letter in erased else letter) for letter in alphabet
    }
    return Morphism(images, name=f"erase[{erased}]")
