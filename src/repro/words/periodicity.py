"""Periods, the periodicity lemma, and commutation.

Three classical facts from combinatorics on words that the paper leans on:

* the **periodicity lemma** (Fine and Wilf): if primitive ``w`` and ``v``
  have powers sharing a factor of length at least ``|w| + |v| − 1``, then
  ``w`` and ``v`` are conjugate (the paper uses the Hadravová formulation);
* **commutation** (Lothaire, Proposition 1.3.2): ``uv = vu`` iff ``u`` and
  ``v`` are powers of a common word — this powers both the φ_{w*} rewriting
  of Lemma 5.4 and the primitivity lemma A.1;
* basic period arithmetic (the period set of a word, Fine–Wilf on periods).
"""

from __future__ import annotations

import math

from repro.words.conjugacy import are_conjugate
from repro.words.factors import longest_common_factor_length
from repro.words.primitivity import is_primitive, primitive_root

__all__ = [
    "borders",
    "longest_border",
    "periods",
    "smallest_period",
    "has_period",
    "fine_wilf_threshold",
    "fine_wilf_holds",
    "commute",
    "common_root",
    "periodicity_lemma_predicts_conjugacy",
    "longest_common_factor_of_powers",
]


def borders(word: str) -> list[str]:
    """All borders of ``word``: proper prefixes that are also suffixes
    (including ε, excluding the word itself), shortest first."""
    return [
        word[:i]
        for i in range(len(word))
        if word.endswith(word[:i])
    ]


def longest_border(word: str) -> str:
    """The longest proper prefix of ``word`` that is also a suffix.

    Border–period duality: ``smallest_period(w) = |w| − |longest_border(w)|``
    (property-tested).
    """
    found = borders(word)
    return found[-1] if found else ""


def has_period(word: str, p: int) -> bool:
    """Return ``True`` iff ``p`` is a period of ``word``:
    ``word[i] == word[i+p]`` for all valid ``i``.  Every ``p ≥ len(word)``
    is trivially a period."""
    if p <= 0:
        raise ValueError(f"periods must be positive, got {p}")
    return all(word[i] == word[i + p] for i in range(len(word) - p))


def periods(word: str) -> list[int]:
    """Return all periods of ``word`` in ``1 … len(word)``, ascending."""
    return [p for p in range(1, len(word) + 1) if has_period(word, p)]


def smallest_period(word: str) -> int:
    """Return the smallest period of ``word`` (``len(word)`` at worst;
    0 for the empty word)."""
    if not word:
        return 0
    for p in range(1, len(word) + 1):
        if has_period(word, p):
            return p
    raise AssertionError("unreachable: len(word) is always a period")


def fine_wilf_threshold(p: int, q: int) -> int:
    """Return the Fine–Wilf threshold ``p + q − gcd(p, q)``.

    A word of at least this length with periods ``p`` and ``q`` also has
    period ``gcd(p, q)``.
    """
    if p <= 0 or q <= 0:
        raise ValueError("periods must be positive")
    return p + q - math.gcd(p, q)


def fine_wilf_holds(word: str, p: int, q: int) -> bool:
    """Check the Fine–Wilf conclusion on a concrete word: if ``word`` has
    periods ``p`` and ``q`` and ``len(word) ≥ p + q − gcd(p,q)``, then it
    has period ``gcd(p, q)``.  Returns the truth of the implication."""
    if not (has_period(word, p) and has_period(word, q)):
        return True
    if len(word) < fine_wilf_threshold(p, q):
        return True
    return has_period(word, math.gcd(p, q))


def commute(u: str, v: str) -> bool:
    """Return ``True`` iff ``uv == vu``."""
    return u + v == v + u


def common_root(u: str, v: str) -> str | None:
    """If ``u`` and ``v`` commute, return the primitive word ``z`` with
    ``u = z^{k1}`` and ``v = z^{k2}`` (Lothaire, Proposition 1.3.2);
    otherwise return ``None``.

    For ``u = v = ""`` there is no primitive common root; we return ``""``
    in that degenerate case.
    """
    if not commute(u, v):
        return None
    if not u and not v:
        return ""
    base = u or v
    return primitive_root(base)


def longest_common_factor_of_powers(w: str, v: str, exponent: int) -> int:
    """Return the longest common factor length of ``w^exponent`` and
    ``v^exponent`` — a finite probe of the common factors of ``w^ω``, ``v^ω``."""
    return longest_common_factor_length(w * exponent, v * exponent)


def periodicity_lemma_predicts_conjugacy(w: str, v: str, probe_exponent: int = 6) -> bool:
    """Empirically instantiate the periodicity lemma (Section 4.3).

    For primitive ``w`` and ``v``: if ``w^ω`` and ``v^ω`` share a factor of
    length ``≥ |w| + |v| − 1`` then ``w`` and ``v`` are conjugate.  We probe
    with finite powers and return the truth of the implication.  Raises
    ``ValueError`` when ``w`` or ``v`` is not primitive.
    """
    if not (is_primitive(w) and is_primitive(v)):
        raise ValueError("the periodicity lemma requires primitive words")
    shared = longest_common_factor_of_powers(w, v, probe_exponent)
    if shared < len(w) + len(v) - 1:
        return True
    return are_conjugate(w, v)
