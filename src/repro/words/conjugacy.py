"""Conjugacy and co-primitivity of words.

Two words are *conjugate* if one is a rotation of the other (``w = xy`` and
``v = yx``).  Two words are *co-primitive* (the paper's Section 4.3 notion)
if both are primitive and they are **not** conjugate.  Co-primitivity is the
precondition of the Fooling Lemma: it guarantees (via the periodicity lemma,
Lemma 4.10) that ``Facs(u^n) ∩ Facs(v^m)`` stabilises, so the
Pseudo-Congruence Lemma applies with a fixed round overhead ``r``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.words.factors import common_factors, longest_common_factor_length
from repro.words.primitivity import is_primitive

__all__ = [
    "conjugates",
    "are_conjugate",
    "are_coprimitive",
    "FactorIntersectionProfile",
    "factor_intersection_profile",
    "stable_intersection_bound",
]


def conjugates(word: str) -> list[str]:
    """Return all distinct rotations of ``word`` (its conjugacy class)."""
    if not word:
        return [""]
    seen: set[str] = set()
    result = []
    for i in range(len(word)):
        rotation = word[i:] + word[:i]
        if rotation not in seen:
            seen.add(rotation)
            result.append(rotation)
    return result


def are_conjugate(u: str, v: str) -> bool:
    """Return ``True`` iff ``u`` and ``v`` are conjugate (``u=xy``, ``v=yx``).

    Uses the classical linear-time test: ``u`` and ``v`` are conjugate iff
    ``|u| = |v|`` and ``v`` occurs in ``u·u``.
    """
    if len(u) != len(v):
        return False
    if not u:
        return True
    return v in u + u


def are_coprimitive(u: str, v: str) -> bool:
    """Return ``True`` iff ``u`` and ``v`` are co-primitive.

    Per the paper (Section 4.3): both must be primitive, and they must not
    be conjugate.  Example: ``aba`` and ``bba`` are co-primitive; ``aabba``
    and ``aaabb`` are not (they are conjugate via ``x=aabb, y=a``).
    """
    return is_primitive(u) and is_primitive(v) and not are_conjugate(u, v)


@dataclass(frozen=True)
class FactorIntersectionProfile:
    """Empirical profile of ``Facs(u^n) ∩ Facs(v^m)`` as n, m grow.

    Produced by :func:`factor_intersection_profile`; certifies Lemma 4.10
    condition (2) on a finite window: from ``(n0, m0)`` on, the
    intersection no longer changes.

    Attributes:
        u, v: the base words.
        n0, m0: smallest exponents after which the intersection was stable
            on the probed window (``None`` if it never stabilised there).
        max_common_length: length of the longest common factor seen — the
            paper's bound ``r`` from Lemma 4.10 condition (3).
        stable_intersection: the stabilised factor set (``None`` if it did
            not stabilise on the window).
    """

    u: str
    v: str
    n0: int | None
    m0: int | None
    max_common_length: int
    stable_intersection: frozenset[str] | None

    @property
    def stabilised(self) -> bool:
        """Whether the intersection stabilised on the probed window."""
        return self.n0 is not None


def factor_intersection_profile(
    u: str, v: str, max_exponent: int | None = None
) -> FactorIntersectionProfile:
    """Probe ``Facs(u^n) ∩ Facs(v^n)`` for ``n = 1 … max_exponent``.

    For co-primitive ``u, v`` the periodicity lemma promises stabilisation
    (Lemma 4.10); for conjugate words the intersection grows forever.  This
    function measures which happens on a finite window, returning a
    :class:`FactorIntersectionProfile`.

    ``max_exponent`` defaults to a window wide enough that co-primitive
    pairs are guaranteed to stabilise inside it: common factors are shorter
    than ``|u| + |v| − 1`` (periodicity lemma), so the intersection is
    fixed once both powers are at least twice that long.
    """
    if not u or not v:
        raise ValueError("base words must be non-empty")
    if max_exponent is None:
        target = 2 * (len(u) + len(v))
        max_exponent = max(
            4,
            -(-target // len(u)) + 1,
            -(-target // len(v)) + 1,
        )
    intersections = [
        common_factors(u * n, v * n) for n in range(1, max_exponent + 1)
    ]
    stable_from: int | None = None
    for index in range(len(intersections) - 1):
        if all(
            intersections[later] == intersections[index]
            for later in range(index + 1, len(intersections))
        ):
            stable_from = index + 1  # exponents are 1-based
            break
    max_len = max(len(x) for x in intersections[-1])
    if stable_from is None:
        return FactorIntersectionProfile(u, v, None, None, max_len, None)
    return FactorIntersectionProfile(
        u, v, stable_from, stable_from, max_len, intersections[stable_from - 1]
    )


def stable_intersection_bound(u: str, v: str) -> int:
    """Return the Lemma 4.10 bound ``r`` for co-primitive ``u``, ``v``.

    By the periodicity lemma, any common factor of ``u^ω`` and ``v^ω`` is
    shorter than ``|u| + |v| − 1`` when ``u``, ``v`` are primitive and not
    conjugate.  We compute the exact maximum common-factor length at
    exponents large enough to expose all common factors (``n`` with
    ``n·|u| ≥ 2(|u|+|v|)``), which is a valid ``r`` for *all* exponents.

    Raises ``ValueError`` if ``u``, ``v`` are not co-primitive (no finite
    bound exists for conjugate primitive words).
    """
    if not are_coprimitive(u, v):
        raise ValueError(f"{u!r} and {v!r} are not co-primitive")
    target = 2 * (len(u) + len(v))
    nu = -(-target // len(u))  # ceil division
    nv = -(-target // len(v))
    bound = longest_common_factor_length(u * nu, v * nv)
    # Sanity: the periodicity lemma caps common factors at |u| + |v| - 2.
    assert bound <= len(u) + len(v) - 2
    return bound
