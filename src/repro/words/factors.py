"""Factor (substring) combinatorics for finite words.

The paper represents a word ``w`` as a relational structure whose universe is
``Facs(w)``, the set of all factors (contiguous substrings) of ``w``.  This
module provides the factor-set primitives used throughout the library:
factor/prefix/suffix enumeration, factor tests, and the factor-intersection
computations that the Pseudo-Congruence Lemma (Lemma 4.4) and the
co-primitivity characterisation (Lemma 4.10) rely on.

Words are plain Python ``str`` objects; the empty word is ``""``.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Iterator

from repro import cachestats

__all__ = [
    "factors",
    "iter_factors",
    "prefixes",
    "suffixes",
    "is_factor",
    "is_strict_factor",
    "is_prefix",
    "is_suffix",
    "is_strict_prefix",
    "is_strict_suffix",
    "factor_count",
    "factor_complexity",
    "common_factors",
    "longest_common_factor_length",
    "occurrence_count",
]


def iter_factors(word: str) -> Iterator[str]:
    """Yield every distinct factor of ``word``, including ``""`` and ``word``.

    Factors are yielded in order of increasing length and, within a length,
    in order of their leftmost occurrence.  Each factor appears exactly once.
    """
    seen: set[str] = set()
    n = len(word)
    yield ""
    seen.add("")
    for length in range(1, n + 1):
        for start in range(n - length + 1):
            factor = word[start : start + length]
            if factor not in seen:
                seen.add(factor)
                yield factor


@lru_cache(maxsize=4096)
def factors(word: str) -> frozenset[str]:
    """Return ``Facs(word)``, the set of all factors of ``word``.

    The result is cached: the EF-game machinery repeatedly asks for the
    factor sets of the same handful of words.
    """
    return frozenset(iter_factors(word))


cachestats.register("words.factors.factors", factors)


def prefixes(word: str) -> list[str]:
    """Return all prefixes of ``word`` (including ``""`` and ``word``)."""
    return [word[:i] for i in range(len(word) + 1)]


def suffixes(word: str) -> list[str]:
    """Return all suffixes of ``word`` (including ``""`` and ``word``)."""
    return [word[i:] for i in range(len(word) + 1)]


def is_factor(factor: str, word: str) -> bool:
    """Return ``True`` iff ``factor`` ⊑ ``word``."""
    return factor in word


def is_strict_factor(factor: str, word: str) -> bool:
    """Return ``True`` iff ``factor`` ⊏ ``word`` (factor, but not equal)."""
    return factor != word and factor in word


def is_prefix(prefix: str, word: str) -> bool:
    """Return ``True`` iff ``word`` starts with ``prefix``."""
    return word.startswith(prefix)


def is_suffix(suffix: str, word: str) -> bool:
    """Return ``True`` iff ``word`` ends with ``suffix``."""
    return word.endswith(suffix)


def is_strict_prefix(prefix: str, word: str) -> bool:
    """Return ``True`` iff ``prefix`` is a prefix of ``word`` and ≠ ``word``."""
    return prefix != word and word.startswith(prefix)


def is_strict_suffix(suffix: str, word: str) -> bool:
    """Return ``True`` iff ``suffix`` is a suffix of ``word`` and ≠ ``word``."""
    return suffix != word and word.endswith(suffix)


def factor_count(word: str) -> int:
    """Return ``|Facs(word)|`` (the number of distinct factors)."""
    return len(factors(word))


def common_factors(u: str, v: str) -> frozenset[str]:
    """Return ``Facs(u) ∩ Facs(v)``.

    This is the quantity governing the round overhead ``r`` of the
    Pseudo-Congruence Lemma: ``r = max{|x| : x ∈ Facs(w1) ∩ Facs(w2)}``.
    """
    return factors(u) & factors(v)


def longest_common_factor_length(u: str, v: str) -> int:
    """Return ``max{|x| : x ∈ Facs(u) ∩ Facs(v)}``.

    The empty word is always common, so the result is ≥ 0.  Computed by
    dynamic programming over suffix matches rather than materialising the
    (quadratic-size) factor sets, so it stays cheap for long words.
    """
    if not u or not v:
        return 0
    best = 0
    # match[j] = length of the longest common suffix of u[:i] and v[:j].
    match = [0] * (len(v) + 1)
    for i in range(1, len(u) + 1):
        previous_diagonal = 0
        for j in range(1, len(v) + 1):
            current = match[j]
            if u[i - 1] == v[j - 1]:
                match[j] = previous_diagonal + 1
                if match[j] > best:
                    best = match[j]
            else:
                match[j] = 0
            previous_diagonal = current
    return best


def factor_complexity(word: str) -> list[int]:
    """The factor-complexity function: entry n = number of distinct
    factors of length n (n = 0 … len(word)).

    Sturmian words — the Fibonacci word among them — have complexity
    exactly n + 1 at every length, the minimum possible for aperiodic
    words; the test suite checks this on the finite Fibonacci prefixes.
    """
    counts = [0] * (len(word) + 1)
    for factor in iter_factors(word):
        counts[len(factor)] += 1
    return counts


def occurrence_count(factor: str, word: str) -> int:
    """Return the number of (possibly overlapping) occurrences of ``factor``.

    ``occurrence_count("", w)`` is ``len(w) + 1`` — one occurrence per
    position, matching the convention ``|w|_ε = |w| + 1`` for spans.
    For single letters this equals the paper's ``|w|_a``.
    """
    if not factor:
        return len(word) + 1
    count = 0
    start = word.find(factor)
    while start != -1:
        count += 1
        start = word.find(factor, start + 1)
    return count


def restrict_to_factors(candidates: Iterable[str], word: str) -> list[str]:
    """Filter ``candidates`` down to those that are factors of ``word``."""
    return [candidate for candidate in candidates if candidate in word]
