"""Finite Fibonacci words and the paper's language ``L_fib``.

Proposition 4.1 shows (somewhat surprisingly) that the language

    L_fib = { c·F0·c·F1·c···c·Fn·c | n ∈ ℕ }

is expressible in FC, where ``F0 = a``, ``F1 = ab``, ``F_i = F_{i-1}·F_{i-2}``.
The paper also notes (via Karhumäki) that the infinite Fibonacci word is
4th-power-free, which is why FC has no pumping lemma in the classical sense.
This module builds the words, the language membership test, and the
power-freeness check used by the E05 experiment.
"""

from __future__ import annotations

from functools import lru_cache

from repro import cachestats

__all__ = [
    "fibonacci_word",
    "fibonacci_words",
    "l_fib_word",
    "is_l_fib",
    "l_fib_members",
    "contains_kth_power",
    "is_fourth_power_free",
]

SEPARATOR = "c"


@lru_cache(maxsize=64)
def fibonacci_word(n: int) -> str:
    """Return ``F_n``: ``F_0 = "a"``, ``F_1 = "ab"``, ``F_i = F_{i-1}F_{i-2}``."""
    if n < 0:
        raise ValueError(f"negative index: {n}")
    if n == 0:
        return "a"
    if n == 1:
        return "ab"
    return fibonacci_word(n - 1) + fibonacci_word(n - 2)


cachestats.register("words.fibonacci.fibonacci_word", fibonacci_word)


def fibonacci_words(count: int) -> list[str]:
    """Return ``[F_0, …, F_{count-1}]``."""
    return [fibonacci_word(i) for i in range(count)]


def l_fib_word(n: int, separator: str = SEPARATOR) -> str:
    """Return the ``L_fib`` member ``c F_0 c F_1 c ... c F_n c``."""
    if len(separator) != 1:
        raise ValueError("separator must be a single symbol")
    parts = [separator]
    for i in range(n + 1):
        parts.append(fibonacci_word(i))
        parts.append(separator)
    return "".join(parts)


def is_l_fib(word: str, separator: str = SEPARATOR) -> bool:
    """Ground-truth membership test for ``L_fib``.

    A word belongs to ``L_fib`` iff it equals ``c F_0 c … c F_n c`` for some
    ``n ≥ 0``.  (Used as the oracle against which the FC sentence φ_fib is
    validated in experiment E05.)
    """
    if not word.startswith(separator) or not word.endswith(separator):
        return False
    blocks = word[1:-1].split(separator) if len(word) > 1 else []
    if not blocks:
        return False
    for index, block in enumerate(blocks):
        if block != fibonacci_word(index):
            return False
    return True


def l_fib_members(max_length: int, separator: str = SEPARATOR) -> list[str]:
    """Return all members of ``L_fib`` of length at most ``max_length``."""
    members = []
    n = 0
    while True:
        candidate = l_fib_word(n, separator)
        if len(candidate) > max_length:
            break
        members.append(candidate)
        n += 1
    return members


def contains_kth_power(word: str, k: int) -> bool:
    """Return ``True`` iff ``word`` contains ``u^k`` for some non-empty ``u``."""
    if k < 1:
        raise ValueError(f"k must be ≥ 1, got {k}")
    n = len(word)
    for base_len in range(1, n // k + 1):
        window = base_len * k
        for start in range(n - window + 1):
            base = word[start : start + base_len]
            if word[start : start + window] == base * k:
                return True
    return False


def is_fourth_power_free(word: str) -> bool:
    """Return ``True`` iff ``word`` contains no factor ``u^4`` with ``u ≠ ε``.

    Karhumäki: the infinite Fibonacci word contains no 4th powers, so all
    ``F_n`` pass this check — the fact the paper uses to conclude FC lacks a
    pumping lemma.
    """
    return not contains_kth_power(word, 4)
