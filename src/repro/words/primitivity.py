"""Primitive words, primitive roots and ``exp_w`` decompositions.

A non-empty word ``w`` is *primitive* if it is not a proper power: ``w = z^m``
implies ``w = z``.  The paper's Primitive Power Lemma (Lemma 4.8) and the
Fooling Lemma (Lemma 4.12) are built on a handful of structural facts about
primitive words, all of which are implemented (and machine-checkable) here:

* ``is_primitive`` / ``primitive_root`` — the classical notions; the empty
  word is imprimitive by the paper's convention.
* ``exponent`` — the paper's ``exp_w(u)``: the largest ``m`` with
  ``w^m ⊑ u``.
* ``power_factorization`` — Lemma 4.7 (obs:factorOfRep): the *unique*
  factorisation ``u = u1 · w^{exp_w(u)} · u2`` of a factor of ``w^m`` with a
  proper suffix ``u1`` and proper prefix ``u2`` of ``w``.
* ``primitive_overlap_exponents`` — Lemma A.1 (obs:primitive): the only ways
  a primitive ``w`` sits inside ``w^m``.
* ``exponent_additivity_defect`` — Lemma D.4 (expoIncrease): for factors of
  ``w^m``, ``exp_w(uv) ∈ {exp_w(u)+exp_w(v), exp_w(u)+exp_w(v)+1}``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "is_primitive",
    "is_imprimitive",
    "primitive_root",
    "power",
    "exponent",
    "PowerFactorization",
    "power_factorization",
    "primitive_occurrences_in_power",
    "exponent_additivity_defect",
]


def _smallest_period(word: str) -> int:
    """Return the smallest ``p`` such that ``word`` is a prefix of
    ``word[:p]`` repeated — i.e. the smallest period of ``word``.

    Uses the classical failure-function (KMP border) computation.
    """
    n = len(word)
    border = [0] * (n + 1)
    k = 0
    for i in range(1, n):
        while k > 0 and word[i] != word[k]:
            k = border[k]
        if word[i] == word[k]:
            k += 1
        border[i + 1] = k
    return n - border[n]


def is_primitive(word: str) -> bool:
    """Return ``True`` iff ``word`` is primitive.

    The empty word is imprimitive by convention (as in the paper).  A word
    is primitive iff its smallest period ``p`` either does not divide
    ``len(word)`` or equals ``len(word)``.
    """
    if not word:
        return False
    n = len(word)
    p = _smallest_period(word)
    return p == n or n % p != 0


def is_imprimitive(word: str) -> bool:
    """Return ``True`` iff ``word`` is a proper power ``z^m`` with ``m > 1``
    (or the empty word, which is imprimitive by convention)."""
    return not is_primitive(word)


def primitive_root(word: str) -> str:
    """Return the primitive root of ``word``: the unique primitive ``z``
    with ``word = z^m`` for some ``m ≥ 1``.

    Raises ``ValueError`` on the empty word, which has no primitive root.
    """
    if not word:
        raise ValueError("the empty word has no primitive root")
    n = len(word)
    p = _smallest_period(word)
    if n % p == 0:
        return word[:p]
    return word


def power(word: str, k: int) -> str:
    """Return ``word^k`` (``k = 0`` gives the empty word)."""
    if k < 0:
        raise ValueError(f"negative exponent: {k}")
    return word * k


def exponent(base: str, word: str) -> int:
    """Return ``exp_base(word)``: the largest ``m ≥ 0`` with ``base^m ⊑ word``.

    Mirrors the paper's ``exp_w`` function (Section 4.2).  ``base`` must be
    non-empty.  Example: ``exponent("aab", "aaaabaabaab") == 3``.
    """
    if not base:
        raise ValueError("exp_w is only defined for non-empty base words")
    if len(base) > len(word):
        return 0
    # The exponent is at most len(word) // len(base); search downward from
    # an incremental upward scan (each containment test is linear, and the
    # answer is usually tiny).
    m = 0
    candidate = base
    while len(candidate) <= len(word) and candidate in word:
        m += 1
        candidate += base
    return m


@dataclass(frozen=True)
class PowerFactorization:
    """The unique Lemma 4.7 factorisation ``word = suffix · base^exp · prefix``.

    ``suffix`` is a *proper* suffix of ``base`` and ``prefix`` a *proper*
    prefix of ``base``; ``exp = exp_base(word) ≥ 1``.
    """

    suffix: str
    base: str
    exp: int
    prefix: str

    def rebuild(self) -> str:
        """Reassemble the factorised word."""
        return self.suffix + self.base * self.exp + self.prefix

    def with_exponent(self, new_exp: int) -> str:
        """Return ``suffix · base^new_exp · prefix``.

        This is exactly Duplicator's response move in the Primitive Power
        Lemma strategy (Figure 3 of the paper): keep the fringe words,
        swap the exponent.
        """
        if new_exp < 0:
            raise ValueError(f"negative exponent: {new_exp}")
        return self.suffix + self.base * new_exp + self.prefix


def power_factorization(base: str, word: str) -> PowerFactorization:
    """Return the unique factorisation of Lemma 4.7 (obs:factorOfRep).

    Preconditions (checked): ``base`` is primitive, ``exp_base(word) ≥ 1``,
    and ``word`` is a factor of some power ``base^m``.  Under those
    conditions there is a *unique* proper suffix ``u1`` and proper prefix
    ``u2`` of ``base`` with ``word = u1 · base^exp · u2``; uniqueness is what
    makes the Primitive Power Lemma strategy well defined.
    """
    if not is_primitive(base):
        raise ValueError(f"base {base!r} is not primitive")
    exp = exponent(base, word)
    if exp < 1:
        raise ValueError(f"{word!r} does not contain {base!r}: exp = 0")
    blen = len(base)
    # word must sit inside base^m for m large enough; scan all alignments of
    # the leading base^exp block and keep those consistent with the fringe
    # conditions.  Uniqueness (Lemma 4.7) guarantees exactly one survives
    # when word ⊑ base^m.
    found: PowerFactorization | None = None
    core = base * exp
    start = word.find(core)
    while start != -1:
        suffix = word[:start]
        prefix = word[start + len(core) :]
        if (
            len(suffix) < blen
            and len(prefix) < blen
            and base.endswith(suffix)
            and base.startswith(prefix)
        ):
            candidate = PowerFactorization(suffix, base, exp, prefix)
            if found is not None and candidate != found:
                raise ValueError(
                    f"{word!r} admits two Lemma 4.7 factorisations over "
                    f"{base!r}; it is not a factor of a power of {base!r}"
                )
            found = candidate
        start = word.find(core, start + 1)
    if found is None:
        raise ValueError(
            f"{word!r} is not a factor of any power of the primitive word "
            f"{base!r}"
        )
    return found


def primitive_occurrences_in_power(base: str, m: int) -> list[int]:
    """Return the start offsets of ``base`` inside ``base^m``.

    Lemma A.1 (obs:primitive) states that for primitive ``base`` these are
    exactly the multiples of ``len(base)`` — a primitive word cannot occur
    at a non-trivial offset inside its own powers.  Exposed so that the
    property can be tested directly.
    """
    if not base:
        raise ValueError("base must be non-empty")
    host = base * m
    offsets = []
    start = host.find(base)
    while start != -1:
        offsets.append(start)
        start = host.find(base, start + 1)
    return offsets


def exponent_additivity_defect(base: str, u: str, v: str) -> int:
    """Return ``exp_base(u·v) − (exp_base(u) + exp_base(v))``.

    Lemma D.4 (expoIncrease) asserts that whenever ``u·v`` is a factor of a
    power of the primitive word ``base``, the defect is 0 or 1.  Exposed for
    property-based testing and used by the Primitive Power strategy checks.
    """
    return exponent(base, u + v) - exponent(base, u) - exponent(base, v)
