"""Parametric word families and language oracles for the paper's languages.

Lemma 4.14 lists six concrete non-FC languages L₁…L₆; Example 4.5 treats
``aⁿbⁿ``; Section 5 needs scattered subwords, permutations, shuffles, etc.
This module provides, for each language: a *constructor* for members, a
ground-truth *membership oracle*, and enumeration over ``Σ^{≤n}`` — the
workload generators for experiments E09, E10, E15, E17.
"""

from __future__ import annotations

from collections import Counter
from itertools import product
from typing import Callable, Iterator

__all__ = [
    "words_up_to",
    "words_of_length",
    "LanguageOracle",
    "l_anbn",
    "l_aibj_leq",
    "l1_an_ban",
    "l2_ai_baj",
    "l3_additive",
    "l4_multiplicative",
    "l5_coprimitive_blocks",
    "l6_triple",
    "l_pow2",
    "PAPER_LANGUAGES",
    "is_scattered_subword",
    "shuffle_product",
    "in_shuffle",
    "is_permutation",
]

L5_LEFT = "abaabb"
L5_RIGHT = "bbaaba"


def words_of_length(alphabet: str, length: int) -> Iterator[str]:
    """Yield all words over ``alphabet`` of exactly ``length``."""
    for letters in product(alphabet, repeat=length):
        yield "".join(letters)


def words_up_to(alphabet: str, max_length: int) -> Iterator[str]:
    """Yield all words over ``alphabet`` of length ``0 … max_length``."""
    for length in range(max_length + 1):
        yield from words_of_length(alphabet, length)


class LanguageOracle:
    """A language packaged as (name, membership test, member constructor).

    ``member(n)`` produces the n-th canonical member (used to build EF-game
    witness pairs); ``__contains__`` is the ground-truth membership oracle.
    """

    def __init__(
        self,
        name: str,
        contains: Callable[[str], bool],
        member: Callable[[int], str],
        alphabet: str,
        description: str = "",
    ) -> None:
        self.name = name
        self._contains = contains
        self.member = member
        self.alphabet = alphabet
        self.description = description

    def __contains__(self, word: str) -> bool:
        return self._contains(word)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"LanguageOracle({self.name})"

    def members_up_to(self, max_length: int) -> list[str]:
        """Return all members of length ≤ ``max_length`` (by enumeration)."""
        return [w for w in words_up_to(self.alphabet, max_length) if w in self]

    def slice(self, max_length: int) -> tuple[frozenset[str], frozenset[str]]:
        """Return (members, non-members) among all words of length ≤ n."""
        members, non_members = set(), set()
        for word in words_up_to(self.alphabet, max_length):
            (members if word in self else non_members).add(word)
        return frozenset(members), frozenset(non_members)


def _is_block_power(word: str, block: str) -> tuple[bool, int]:
    """Return (is ``word`` = ``block^m``, the m)."""
    if not block:
        raise ValueError("block must be non-empty")
    quotient, remainder = divmod(len(word), len(block))
    if remainder != 0 or word != block * quotient:
        return False, 0
    return True, quotient


# --- Example 4.5 -----------------------------------------------------------

def _anbn_contains(word: str) -> bool:
    n2 = len(word)
    if n2 % 2:
        return False
    half = n2 // 2
    return word == "a" * half + "b" * half


l_anbn = LanguageOracle(
    "anbn",
    _anbn_contains,
    lambda n: "a" * n + "b" * n,
    alphabet="ab",
    description="{ a^n b^n | n ∈ ℕ } (Example 4.5; Freydenberger–Peterfreund)",
)


def _aibj_leq_contains(word: str) -> bool:
    i = 0
    while i < len(word) and word[i] == "a":
        i += 1
    j = len(word) - i
    return word == "a" * i + "b" * j and 0 <= i <= j


l_aibj_leq = LanguageOracle(
    "ai_bj_leq",
    _aibj_leq_contains,
    lambda n: "a" * n + "b" * (n + 1),
    alphabet="ab",
    description="{ a^i b^j | 0 ≤ i ≤ j } (Example 4.5)",
)


# --- Lemma 4.14: L1 … L6 ---------------------------------------------------

def _l1_contains(word: str) -> bool:
    for n in range(len(word) // 3 + 2):
        candidate = "a" * n + "ba" * n
        if candidate == word:
            return True
        if len(candidate) > len(word):
            break
    return False


l1_an_ban = LanguageOracle(
    "L1",
    _l1_contains,
    lambda n: "a" * n + "ba" * n,
    alphabet="ab",
    description="L1 = { a^n (ba)^n | n ∈ ℕ } (Prop 4.6)",
)


def _l2_contains(word: str) -> bool:
    i = 0
    while i < len(word) and word[i] == "a":
        i += 1
    rest = word[i:]
    ok, j = _is_block_power(rest, "ba") if rest else (True, 0)
    return ok and 1 <= i <= j and word == "a" * i + "ba" * j


l2_ai_baj = LanguageOracle(
    "L2",
    _l2_contains,
    lambda n: "a" * (n + 1) + "ba" * (n + 1),
    alphabet="ab",
    description="L2 = { a^i (ba)^j | 1 ≤ i ≤ j }",
)


def _l3_contains(word: str) -> bool:
    # b^n a^m b^(n+m).  When m = 0 the word is b^n·b^n = b^{2n}, so all-b
    # words are members iff their length is even (the block parse is
    # ambiguous there — b^2 is b^1 a^0 b^1).  With m ≥ 1 the parse into
    # maximal blocks is unique.
    if all(letter == "b" for letter in word):
        return len(word) % 2 == 0
    n = 0
    while n < len(word) and word[n] == "b":
        n += 1
    m = 0
    while n + m < len(word) and word[n + m] == "a":
        m += 1
    tail = word[n + m :]
    return tail == "b" * (n + m) and word == "b" * n + "a" * m + tail


l3_additive = LanguageOracle(
    "L3",
    _l3_contains,
    lambda n: "b" * n + "a" * (n + 1) + "b" * (2 * n + 1),
    alphabet="ab",
    description="L3 = { b^n a^m b^(n+m) | m,n ∈ ℕ }",
)


def _l4_contains(word: str) -> bool:
    n = 0
    while n < len(word) and word[n] == "b":
        n += 1
    m = 0
    while n + m < len(word) and word[n + m] == "a":
        m += 1
    tail = word[n + m :]
    if word != "b" * n + "a" * m + tail or any(c != "b" for c in tail):
        return False
    # leading b-block is maximal, so if m == 0 the tail must be empty, and
    # then word = b^n with n*m = 0 requires n... careful: b^n a^0 b^0 = b^n
    # is a member iff n*0 == 0, i.e. always (tail empty).
    return len(tail) == n * m


l4_multiplicative = LanguageOracle(
    "L4",
    _l4_contains,
    lambda n: "b" + "a" * n + "b" * n,  # the n=1 slice used in the proof
    alphabet="ab",
    description="L4 = { b^n a^m b^(n·m) | m,n ∈ ℕ }",
)


def _l5_contains(word: str) -> bool:
    for m in range(len(word) // len(L5_LEFT + L5_RIGHT) + 2):
        candidate = L5_LEFT * m + L5_RIGHT * m
        if candidate == word:
            return True
        if len(candidate) > len(word):
            break
    return False


l5_coprimitive_blocks = LanguageOracle(
    "L5",
    _l5_contains,
    lambda m: L5_LEFT * m + L5_RIGHT * m,
    alphabet="ab",
    description="L5 = { (abaabb)^m (bbaaba)^m | m ∈ ℕ }",
)


def _l6_contains(word: str) -> bool:
    for n in range(len(word) // 4 + 2):
        candidate = "a" * n + "b" * n + "ab" * n
        if candidate == word:
            return True
        if len(candidate) > len(word):
            break
    return False


l6_triple = LanguageOracle(
    "L6",
    _l6_contains,
    lambda n: "a" * n + "b" * n + "ab" * n,
    alphabet="ab",
    description="L6 = { a^n b^n (ab)^n | n ∈ ℕ }",
)


def _l_pow2_contains(word: str) -> bool:
    n = len(word)
    if word != "a" * n:
        return False
    return n >= 1 and (n & (n - 1)) == 0


l_pow2 = LanguageOracle(
    "L_pow",
    _l_pow2_contains,
    lambda n: "a" * (2**n),
    alphabet="a",
    description="L_pow = { a^(2^n) | n ∈ ℕ } (not semi-linear; Lemma 3.6)",
)

#: All language oracles keyed by the paper's names.
PAPER_LANGUAGES: dict[str, LanguageOracle] = {
    "anbn": l_anbn,
    "ai_bj_leq": l_aibj_leq,
    "L1": l1_an_ban,
    "L2": l2_ai_baj,
    "L3": l3_additive,
    "L4": l4_multiplicative,
    "L5": l5_coprimitive_blocks,
    "L6": l6_triple,
    "L_pow": l_pow2,
}


# --- Section 5 relations' combinatorial primitives -------------------------

def is_scattered_subword(x: str, y: str) -> bool:
    """Return ``True`` iff ``x ⊑_scatt y`` (x is a subsequence of y)."""
    it = iter(y)
    return all(letter in it for letter in x)


def shuffle_product(x: str, y: str) -> frozenset[str]:
    """Return the shuffle product ``x ⧢ y`` as a set of words.

    Computed by dynamic programming over prefix pairs; the result has at
    most C(|x|+|y|, |x|) elements, so keep inputs short.
    """
    table: dict[tuple[int, int], set[str]] = {(0, 0): {""}}
    for i in range(len(x) + 1):
        for j in range(len(y) + 1):
            if (i, j) == (0, 0):
                continue
            acc: set[str] = set()
            if i > 0:
                acc.update(word + x[i - 1] for word in table[(i - 1, j)])
            if j > 0:
                acc.update(word + y[j - 1] for word in table[(i, j - 1)])
            table[(i, j)] = acc
    return frozenset(table[(len(x), len(y))])


def in_shuffle(z: str, x: str, y: str) -> bool:
    """Return ``True`` iff ``z ∈ x ⧢ y`` (without materialising the product)."""
    if len(z) != len(x) + len(y):
        return False
    # reachable[j] = True iff z[:i+j] splits into x[:i] ⧢ y[:j].
    reachable = [False] * (len(y) + 1)
    reachable[0] = True
    for j in range(1, len(y) + 1):
        reachable[j] = reachable[j - 1] and z[j - 1] == y[j - 1]
    for i in range(1, len(x) + 1):
        reachable[0] = reachable[0] and z[i - 1] == x[i - 1]
        for j in range(1, len(y) + 1):
            from_x = reachable[j] and z[i + j - 1] == x[i - 1]
            from_y = reachable[j - 1] and z[i + j - 1] == y[j - 1]
            reachable[j] = from_x or from_y
    return reachable[len(y)]


def is_permutation(x: str, y: str) -> bool:
    """Return ``True`` iff ``x`` is a permutation (anagram) of ``y``."""
    return Counter(x) == Counter(y)
