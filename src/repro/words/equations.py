"""Word equations: bounded-solution enumeration and classical identities.

FC is a finite-model variant of the *theory of concatenation*, whose
atomic questions are word equations; the core-spanner inexpressibility
tradition the paper builds on (Karhumäki–Mignosi–Plandowski) is about
expressibility by word equations.  This module provides a small word
equation engine:

* patterns are sequences of letters and variables (``"xAby"`` style is
  avoided — patterns are explicit tuples, letters as 1-char strings
  marked by case convention: lowercase = terminal, uppercase = variable);
* :func:`solutions` enumerates all solutions with variable values up to a
  length bound (exact within the bound);
* classical identities used by the paper's proofs are exposed as
  ready-made equations: commutation ``XY = YX`` (Lothaire 1.3.2) and
  conjugacy ``XZ = ZY``.

The test-suite cross-checks the commutation identity against
``repro.words.periodicity.common_root`` — the same mathematical fact,
computed two ways.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Iterator, Mapping, Sequence

from repro.words.generators import words_up_to

__all__ = [
    "Equation",
    "solutions",
    "is_solution",
    "commutation_equation",
    "conjugacy_equation",
]

#: A pattern item: a terminal letter (lowercase) or a variable (uppercase).
PatternItem = str


def _is_variable(item: str) -> bool:
    return item.isupper()


@dataclass(frozen=True)
class Equation:
    """A word equation ``lhs ≐ rhs`` over terminals and variables.

    Sides are tuples of single-character items; uppercase characters are
    variables, anything else is a terminal letter.
    """

    lhs: tuple[str, ...]
    rhs: tuple[str, ...]

    def __post_init__(self) -> None:
        for side in (self.lhs, self.rhs):
            for item in side:
                if len(item) != 1:
                    raise ValueError(
                        f"pattern items are single characters, got {item!r}"
                    )

    @classmethod
    def parse(cls, text: str) -> "Equation":
        """Parse ``"XY = YX"`` style notation (whitespace ignored)."""
        left, _, right = text.partition("=")
        if not _:
            raise ValueError(f"missing '=' in equation {text!r}")
        return cls(
            tuple(left.strip().replace(" ", "")),
            tuple(right.strip().replace(" ", "")),
        )

    def variables(self) -> tuple[str, ...]:
        """Variables in order of first occurrence."""
        seen: list[str] = []
        for item in self.lhs + self.rhs:
            if _is_variable(item) and item not in seen:
                seen.append(item)
        return tuple(seen)

    def substitute(self, assignment: Mapping[str, str]) -> tuple[str, str]:
        """Instantiate both sides under a variable assignment."""

        def build(side: Sequence[str]) -> str:
            return "".join(
                assignment[item] if _is_variable(item) else item
                for item in side
            )

        return build(self.lhs), build(self.rhs)

    def __repr__(self) -> str:
        return f"{''.join(self.lhs)} ≐ {''.join(self.rhs)}"


def is_solution(equation: Equation, assignment: Mapping[str, str]) -> bool:
    """Does the assignment solve the equation?"""
    left, right = equation.substitute(assignment)
    return left == right


def solutions(
    equation: Equation, alphabet: str, max_length: int
) -> Iterator[dict[str, str]]:
    """Enumerate all solutions with every variable value in Σ^{≤n}.

    Exact within the bound; exponential in the number of variables, so
    keep equations small (the classical identities have 2–3 variables).
    """
    variables = equation.variables()
    pool = list(words_up_to(alphabet, max_length))
    for values in product(pool, repeat=len(variables)):
        assignment = dict(zip(variables, values))
        if is_solution(equation, assignment):
            yield assignment


def commutation_equation() -> Equation:
    """``XY = YX`` — solutions are exactly the pairs of powers of a common
    word (Lothaire, Proposition 1.3.2; the engine of φ_{w*})."""
    return Equation.parse("XY = YX")


def conjugacy_equation() -> Equation:
    """``XZ = ZY`` — for non-empty X, Y this characterises conjugacy of X
    and Y (with Z the rotation witness)."""
    return Equation.parse("XZ = ZY")
