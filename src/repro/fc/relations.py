"""FC-definable word relations.

Section 2 defines when a formula φ_R with free variables ``x₁…x_k``
*defines* a relation ``R ⊆ (Σ*)^k``:  for every ``w``, the satisfying
assignments of φ_R on ``𝔄_w`` must be exactly ``R ∩ Facs(w)^k``.  This
module wraps a formula + variable order into an :class:`FCRelation` and
provides the (finite-instance) "defines" check — used to validate R_copy
and R_{k-copies} positively, and used in reverse by the Theorem 5.8
experiments where a hypothetical defining formula is shown impossible.
"""

from __future__ import annotations

from itertools import product
from typing import Callable, Iterable, Iterator, Sequence

from repro.fc.semantics import satisfying_assignments, satisfying_tuples
from repro.fc.structures import word_structure
from repro.fc.syntax import Formula, Var, free_variables

__all__ = ["FCRelation", "relation_slice", "defines_relation"]


class FCRelation:
    """A formula with an ordered tuple of free variables, read as a relation.

    ``evaluate(word)`` returns the set of tuples
    ``(σ(x₁), …, σ(x_k))`` over all σ ∈ ⟦φ⟧(w).
    """

    def __init__(self, formula: Formula, variables: Sequence[Var], alphabet: str):
        declared = tuple(variables)
        actual = free_variables(formula)
        if frozenset(declared) != actual:
            raise ValueError(
                f"declared variables {[v.name for v in declared]} do not match "
                f"free variables {sorted(v.name for v in actual)}"
            )
        if len(set(declared)) != len(declared):
            raise ValueError("variable tuple has repeats")
        self.formula = formula
        self.variables = declared
        self.alphabet = alphabet

    @property
    def arity(self) -> int:
        return len(self.variables)

    def evaluate(self, word: str) -> frozenset[tuple[str, ...]]:
        """Return the relation slice selected on ``word``.

        Per-word enumeration — kept as the differential oracle for
        :meth:`evaluate_many` (the batched relational-sweep path).
        """
        tuples = set()
        for sigma in satisfying_assignments(word, self.formula, self.alphabet):
            tuples.add(tuple(sigma[v] for v in self.variables))
        return frozenset(tuples)

    def evaluate_many(
        self, words: Iterable[str], scope: int | None = None
    ) -> Iterator[tuple[str, frozenset[tuple[str, ...]]]]:
        """Batched :meth:`evaluate` over a word family: yield
        ``(word, tuples)`` via one compiled relational sweep
        (:func:`repro.fc.semantics.satisfying_tuples`), sharing the
        family's interned id space, pools and pure-atom memos across
        all words.  ``scope`` is as in ``satisfying_tuples``."""
        batch = satisfying_tuples(
            self.formula,
            self.alphabet,
            words,
            scope=scope,
            variables=self.variables,
        )
        for word, rows in batch:
            yield word, frozenset(rows)

    def __repr__(self) -> str:
        names = ", ".join(v.name for v in self.variables)
        return f"FCRelation(({names}) | {self.formula!r})"


def relation_slice(
    predicate: Callable[..., bool], word: str, arity: int, alphabet: str
) -> frozenset[tuple[str, ...]]:
    """Return ``R ∩ Facs(word)^arity`` for a Python predicate ``R``."""
    structure = word_structure(word, alphabet)
    pool = sorted(structure.universe_factors, key=lambda f: (len(f), f))
    return frozenset(
        candidate
        for candidate in product(pool, repeat=arity)
        if predicate(*candidate)
    )


def defines_relation(
    relation: FCRelation,
    predicate: Callable[..., bool],
    words: Iterable[str],
    scope: int | None = None,
) -> bool:
    """Check the paper's "φ_R defines R" condition on a finite word sample.

    For every ``w`` in ``words``: ``⟦φ_R⟧(w)`` (as variable tuples) must
    equal ``R ∩ Facs(w)^k`` where ``R`` is given by ``predicate``.  The
    formula side runs as one batched relational sweep over the sample
    (``scope`` as in :meth:`FCRelation.evaluate_many`).
    """
    for word, actual in relation.evaluate_many(words, scope=scope):
        expected = relation_slice(predicate, word, relation.arity, relation.alphabet)
        if actual != expected:
            return False
    return True
