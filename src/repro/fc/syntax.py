"""Abstract syntax of FC formulas.

FC (Section 2 of the paper) is first-order logic over the signature
``τ_Σ = {R∘, a₁, …, a_m, ε}`` whose atomic formulas are written
``(x ≐ y·z)`` for ``x, y, z ∈ Ξ ∪ Σ ∪ {ε}``.  This module defines the AST:

* :class:`Term` — a variable or a constant (a letter of Σ, or ε);
* :class:`Concat` — the atom ``(x ≐ y·z)``;
* :class:`Not`, :class:`And`, :class:`Or`, :class:`Implies` (sugar);
* :class:`Exists`, :class:`Forall`;

plus the syntactic functions the paper uses: quantifier rank ``qr``, free
variables, and variable substitution.  Regular-constraint atoms
(FC[REG], Section 5) subclass :class:`Formula` in ``repro.fcreg.constraints``.

Constants are represented as ``Const(symbol)`` where ``symbol`` is a single
letter, or ``EPSILON = Const("")`` for the empty word.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Union

__all__ = [
    "Term",
    "Var",
    "Const",
    "EPSILON",
    "Formula",
    "Concat",
    "ConcatChain",
    "Not",
    "And",
    "Or",
    "Implies",
    "Exists",
    "Forall",
    "term",
    "quantifier_rank",
    "free_variables",
    "all_variables",
    "constants_used",
    "substitute",
    "alpha_canonical",
    "conjunction",
    "disjunction",
    "exists_many",
    "forall_many",
    "subformulas",
]


@dataclass(frozen=True)
class Var:
    """A first-order variable from the countable set Ξ."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const:
    """A constant symbol: a terminal letter, or ε (``symbol == ""``)."""

    symbol: str

    def __post_init__(self) -> None:
        if len(self.symbol) > 1:
            raise ValueError(
                f"constants are single letters or ε, got {self.symbol!r}"
            )

    def __repr__(self) -> str:
        return self.symbol if self.symbol else "ε"


#: The empty-word constant ε.
EPSILON = Const("")

Term = Union[Var, Const]


def term(value: "Term | str") -> Term:
    """Coerce a convenience value to a :class:`Term`.

    Strings of length ≤ 1 become constants (``""`` is ε); longer strings are
    rejected — multi-letter words must go through the ``sugar`` module.
    Existing terms pass through unchanged.
    """
    if isinstance(value, (Var, Const)):
        return value
    if isinstance(value, str):
        return Const(value)
    raise TypeError(f"cannot coerce {value!r} to an FC term")


class Formula:
    """Base class of all FC (and FC[REG]) formulas."""

    def __and__(self, other: "Formula") -> "And":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Or":
        return Or(self, other)

    def __invert__(self) -> "Not":
        return Not(self)


@dataclass(frozen=True, repr=False)
class Concat(Formula):
    """The atomic formula ``(x ≐ y·z)``, i.e. ``R∘(x, y, z)``.

    Interpreted as: the value of ``x`` is the concatenation of the values of
    ``y`` and ``z``, with all three values factors of the input word.
    """

    x: Term
    y: Term
    z: Term

    def __repr__(self) -> str:
        return f"({self.x!r} ≐ {self.y!r}·{self.z!r})"


@dataclass(frozen=True, repr=False)
class ConcatChain(Formula):
    """The n-ary shorthand atom ``x ≐ t₁·t₂·…·tₙ``.

    Semantically identical to the Freydenberger–Thompson binary splitting
    ``∃l₁…l_{n-2}: (x ≐ t₁·l₁) ∧ …`` (see ``repro.fc.sugar.eq_concat``),
    but evaluated natively: the model checker enumerates decompositions of
    the value of ``x`` instead of scanning the factor universe for each
    link variable.  Treated as a rank-0 atom, matching the paper's remark
    that long right-hand sides are shorthand; use the binary desugaring
    when the exact quantifier rank of the *binary* formula matters.
    """

    x: Term
    parts: tuple[Term, ...]

    def __post_init__(self) -> None:
        if len(self.parts) < 1:
            raise ValueError("chain needs at least one right-hand-side term")

    def __repr__(self) -> str:
        rhs = "·".join(repr(p) for p in self.parts)
        return f"({self.x!r} ≐ {rhs})"

    def _atom_terms(self) -> Iterator[Term]:
        yield self.x
        yield from self.parts

    def _quantifier_rank(self) -> int:
        return 0

    def _substitute(self, mapping: dict) -> "ConcatChain":
        def sub(t: Term) -> Term:
            return mapping.get(t, t) if isinstance(t, Var) else t

        return ConcatChain(sub(self.x), tuple(sub(p) for p in self.parts))


@dataclass(frozen=True, repr=False)
class Not(Formula):
    """Negation ``¬φ``."""

    inner: Formula

    def __repr__(self) -> str:
        return f"¬{self.inner!r}"


@dataclass(frozen=True, repr=False)
class And(Formula):
    """Conjunction ``(φ ∧ ψ)``."""

    left: Formula
    right: Formula

    def __repr__(self) -> str:
        return f"({self.left!r} ∧ {self.right!r})"


@dataclass(frozen=True, repr=False)
class Or(Formula):
    """Disjunction ``(φ ∨ ψ)``."""

    left: Formula
    right: Formula

    def __repr__(self) -> str:
        return f"({self.left!r} ∨ {self.right!r})"


@dataclass(frozen=True, repr=False)
class Implies(Formula):
    """Implication ``(φ → ψ)`` — syntactic sugar for ``¬φ ∨ ψ`` with the
    same quantifier rank; kept as a node for readable formulas like φ_fib."""

    left: Formula
    right: Formula

    def __repr__(self) -> str:
        return f"({self.left!r} → {self.right!r})"


@dataclass(frozen=True, repr=False)
class Exists(Formula):
    """Existential quantification ``∃x: φ``; ``x`` ranges over Facs(w)."""

    var: Var
    inner: Formula

    def __repr__(self) -> str:
        return f"∃{self.var!r}: {self.inner!r}"


@dataclass(frozen=True, repr=False)
class Forall(Formula):
    """Universal quantification ``∀x: φ``; ``x`` ranges over Facs(w)."""

    var: Var
    inner: Formula

    def __repr__(self) -> str:
        return f"∀{self.var!r}: {self.inner!r}"


def quantifier_rank(formula: Formula) -> int:
    """Return ``qr(φ)`` exactly as defined in Section 3.

    Atoms have rank 0; negation preserves rank; ∧/∨/→ take the max;
    each quantifier adds one.
    """
    if isinstance(formula, Concat):
        return 0
    if isinstance(formula, Not):
        return quantifier_rank(formula.inner)
    if isinstance(formula, (And, Or, Implies)):
        return max(quantifier_rank(formula.left), quantifier_rank(formula.right))
    if isinstance(formula, (Exists, Forall)):
        return quantifier_rank(formula.inner) + 1
    # FC[REG] regular constraints are rank-0 atoms; they implement
    # _quantifier_rank themselves.
    rank = getattr(formula, "_quantifier_rank", None)
    if rank is not None:
        return rank()
    raise TypeError(f"unknown formula node: {formula!r}")


def _atom_terms(formula: Formula) -> Iterator[Term]:
    if isinstance(formula, Concat):
        yield formula.x
        yield formula.y
        yield formula.z
    else:
        custom = getattr(formula, "_atom_terms", None)
        if custom is not None:
            yield from custom()


def free_variables(formula: Formula) -> frozenset[Var]:
    """Return the set of free variables of ``formula``."""
    if isinstance(formula, Not):
        return free_variables(formula.inner)
    if isinstance(formula, (And, Or, Implies)):
        return free_variables(formula.left) | free_variables(formula.right)
    if isinstance(formula, (Exists, Forall)):
        return free_variables(formula.inner) - {formula.var}
    return frozenset(t for t in _atom_terms(formula) if isinstance(t, Var))


def all_variables(formula: Formula) -> frozenset[Var]:
    """Return every variable occurring in ``formula`` (free or bound)."""
    if isinstance(formula, Not):
        return all_variables(formula.inner)
    if isinstance(formula, (And, Or, Implies)):
        return all_variables(formula.left) | all_variables(formula.right)
    if isinstance(formula, (Exists, Forall)):
        return all_variables(formula.inner) | {formula.var}
    return frozenset(t for t in _atom_terms(formula) if isinstance(t, Var))


def constants_used(formula: Formula) -> frozenset[Const]:
    """Return every constant symbol occurring in ``formula``."""
    if isinstance(formula, Not):
        return constants_used(formula.inner)
    if isinstance(formula, (And, Or, Implies)):
        return constants_used(formula.left) | constants_used(formula.right)
    if isinstance(formula, (Exists, Forall)):
        return constants_used(formula.inner)
    return frozenset(t for t in _atom_terms(formula) if isinstance(t, Const))


def substitute(formula: Formula, mapping: dict[Var, Term]) -> Formula:
    """Capture-avoiding-enough substitution of *free* variables by terms.

    Raises ``ValueError`` if a substituted term would be captured by a
    quantifier (the formula builders always use fresh bound variables, so in
    practice this never triggers).
    """
    if not mapping:
        return formula
    if isinstance(formula, Concat):
        def sub(t: Term) -> Term:
            return mapping.get(t, t) if isinstance(t, Var) else t

        return Concat(sub(formula.x), sub(formula.y), sub(formula.z))
    if isinstance(formula, Not):
        return Not(substitute(formula.inner, mapping))
    if isinstance(formula, And):
        return And(substitute(formula.left, mapping), substitute(formula.right, mapping))
    if isinstance(formula, Or):
        return Or(substitute(formula.left, mapping), substitute(formula.right, mapping))
    if isinstance(formula, Implies):
        return Implies(
            substitute(formula.left, mapping), substitute(formula.right, mapping)
        )
    if isinstance(formula, (Exists, Forall)):
        inner_mapping = {v: t for v, t in mapping.items() if v != formula.var}
        for replacement in inner_mapping.values():
            if replacement == formula.var:
                raise ValueError(
                    f"substitution would capture {formula.var!r}; rename bound "
                    "variables first"
                )
        rebuilt = substitute(formula.inner, inner_mapping)
        node = Exists if isinstance(formula, Exists) else Forall
        return node(formula.var, rebuilt)
    custom = getattr(formula, "_substitute", None)
    if custom is not None:
        return custom(mapping)
    raise TypeError(f"unknown formula node: {formula!r}")


def alpha_canonical(formula: Formula) -> Formula:
    """``formula`` with bound variables renamed to preorder positions.

    Two alpha-equivalent formulas map to the identical tree (and hence
    identical ``repr``), regardless of what gensym counters produced
    their bound-variable names.  Content-addressed artifact keys
    (``repro.store``) fingerprint this form, not the raw repr: fresh-name
    allocation is process-global state, so the same sentence built in two
    runs can differ in nothing but binder names.  Free variables keep
    their names — they are part of the sentence's identity.

    The canonical names use ``⟨⟩`` delimiters no builder or parser ever
    produces, so they cannot collide with (and thus capture) free
    variables.
    """
    counter = 0

    def rename(node: Formula, env: dict[Var, Var]) -> Formula:
        nonlocal counter
        if isinstance(node, Concat):
            def sub(t: Term) -> Term:
                return env.get(t, t) if isinstance(t, Var) else t

            return Concat(sub(node.x), sub(node.y), sub(node.z))
        if isinstance(node, ConcatChain):
            return node._substitute(env)
        if isinstance(node, Not):
            return Not(rename(node.inner, env))
        if isinstance(node, And):
            return And(rename(node.left, env), rename(node.right, env))
        if isinstance(node, Or):
            return Or(rename(node.left, env), rename(node.right, env))
        if isinstance(node, Implies):
            return Implies(rename(node.left, env), rename(node.right, env))
        if isinstance(node, (Exists, Forall)):
            fresh = Var(f"⟨q{counter}⟩")
            counter += 1
            inner = rename(node.inner, {**env, node.var: fresh})
            kind = Exists if isinstance(node, Exists) else Forall
            return kind(fresh, inner)
        custom = getattr(node, "_substitute", None)
        if custom is not None:
            return custom(env)
        raise TypeError(f"unknown formula node: {node!r}")

    return rename(formula, {})


def conjunction(formulas: list[Formula]) -> Formula:
    """Fold a list into a right-nested conjunction; empty list is invalid."""
    if not formulas:
        raise ValueError("conjunction of zero formulas")
    result = formulas[-1]
    for item in reversed(formulas[:-1]):
        result = And(item, result)
    return result


def disjunction(formulas: list[Formula]) -> Formula:
    """Fold a list into a right-nested disjunction; empty list is invalid."""
    if not formulas:
        raise ValueError("disjunction of zero formulas")
    result = formulas[-1]
    for item in reversed(formulas[:-1]):
        result = Or(item, result)
    return result


def exists_many(variables: list[Var], inner: Formula) -> Formula:
    """``∃x₁ … ∃xₙ: inner``."""
    result = inner
    for variable in reversed(variables):
        result = Exists(variable, result)
    return result


def forall_many(variables: list[Var], inner: Formula) -> Formula:
    """``∀x₁ … ∀xₙ: inner``."""
    result = inner
    for variable in reversed(variables):
        result = Forall(variable, result)
    return result


def subformulas(formula: Formula) -> Iterator[Formula]:
    """Yield ``formula`` and all its subformulas (preorder)."""
    yield formula
    if isinstance(formula, (Concat, ConcatChain)):
        return  # atoms (incl. extension atoms below) have no proper subformulas
    if isinstance(formula, Not):
        yield from subformulas(formula.inner)
    elif isinstance(formula, (And, Or, Implies)):
        yield from subformulas(formula.left)
        yield from subformulas(formula.right)
    elif isinstance(formula, (Exists, Forall)):
        yield from subformulas(formula.inner)
