"""Syntactic sugar: arbitrary-arity concatenation atoms.

The original FC definition (Freydenberger–Peterfreund) allows atoms
``x ≐ α`` with an arbitrarily long right-hand side ``α ∈ (Σ ∪ Ξ)*``; the
paper restricts atoms to binary concatenation ``(x ≐ y·z)`` and notes the
long form is shorthand (Freydenberger–Thompson splitting).  This module
performs that splitting: :func:`eq_concat` compiles ``x ≐ t₁·t₂·…·tₙ`` into
a chain of binary atoms glued by fresh existentially-quantified variables.

Note on quantifier rank: desugaring introduces ∃-quantifiers (one per extra
concatenation), so the rank of a desugared formula exceeds the rank of its
sugared form.  The EF-game experiments therefore only use hand-written
binary formulas when rank matters; the sugar is for readable builders such
as φ_fib and the ψᵢ reductions, where only the defined language matters.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence

from repro.fc.syntax import (
    Concat,
    ConcatChain,
    Const,
    EPSILON,
    Exists,
    Formula,
    Term,
    Var,
    conjunction,
)

__all__ = [
    "FreshVariables",
    "split_word",
    "eq_concat",
    "eq_terms",
    "equals",
    "chain",
    "desugar_chains",
]


class FreshVariables:
    """A generator of fresh variables ``prefix_0, prefix_1, …``.

    Each :class:`FreshVariables` instance yields globally distinct names
    (a class-level counter is mixed in), so nested builders never collide.
    """

    _global_counter = itertools.count()

    def __init__(self, prefix: str = "t"):
        self._prefix = prefix
        self._instance = next(self._global_counter)
        self._local = itertools.count()

    def fresh(self) -> Var:
        """Return the next fresh variable."""
        return Var(f"{self._prefix}{self._instance}_{next(self._local)}")


def split_word(word: str) -> list[Term]:
    """Split a word into letter-constant terms (``""`` gives ``[ε]``)."""
    if word == "":
        return [EPSILON]
    return [Const(letter) for letter in word]


def _normalise_parts(parts: Iterable["Term | str"]) -> list[Term]:
    """Flatten a mixed sequence of terms and words into a term list."""
    normalised: list[Term] = []
    for part in parts:
        if isinstance(part, str):
            normalised.extend(split_word(part))
        elif isinstance(part, (Var, Const)):
            normalised.append(part)
        else:
            raise TypeError(f"cannot use {part!r} in a concatenation term")
    return normalised


def eq_concat(
    left: "Term | str",
    parts: Sequence["Term | str"],
    fresh: FreshVariables | None = None,
) -> Formula:
    """Build the FC formula expressing ``left ≐ parts[0]·parts[1]·…``.

    String parts are split into letter constants (so ``"cacab"`` works
    directly); the result is a pure binary-concatenation FC formula with
    fresh intermediate variables, e.g.::

        eq_concat(x, [y, "b", y])    # x ≐ y·b·y

    compiles to ``∃t₀: (x ≐ y·t₀) ∧ (t₀ ≐ b·y)``.
    """
    fresh = fresh or FreshVariables()
    if isinstance(left, str):
        if len(left) > 1:
            raise ValueError(
                "left-hand side must be a variable or single constant; "
                "introduce a variable for longer words"
            )
        left = Const(left)
    terms = _normalise_parts(parts)
    if not terms:
        raise ValueError("empty right-hand side; use [EPSILON]")
    if len(terms) == 1:
        return Concat(left, terms[0], EPSILON)
    if len(terms) == 2:
        return Concat(left, terms[0], terms[1])
    # x ≐ t1·(rest): introduce links l_i with
    #   x ≐ t1·l1, l1 ≐ t2·l2, …, l_{n-2} ≐ t_{n-1}·t_n
    links = [fresh.fresh() for _ in range(len(terms) - 2)]
    atoms: list[Formula] = [Concat(left, terms[0], links[0])]
    for index in range(1, len(terms) - 2):
        atoms.append(Concat(links[index - 1], terms[index], links[index]))
    atoms.append(Concat(links[-1], terms[-2], terms[-1]))
    body = conjunction(atoms)
    for link in reversed(links):
        body = Exists(link, body)
    return body


def chain(left: "Term | str", parts: Sequence["Term | str"]) -> Formula:
    """Build the native n-ary atom ``left ≐ parts[0]·parts[1]·…``.

    Same normalisation conveniences as :func:`eq_concat` (strings split into
    letter constants), but returns a :class:`ConcatChain` node, which the
    model checker evaluates by decomposition enumeration — much faster than
    the binary desugaring when the chain is long.  Use
    :func:`desugar_chains` to convert back to pure binary FC.
    """
    if isinstance(left, str):
        if len(left) > 1:
            raise ValueError(
                "left-hand side must be a variable or single constant"
            )
        left = Const(left)
    terms = _normalise_parts(parts)
    if not terms:
        raise ValueError("empty right-hand side; use [EPSILON]")
    if len(terms) == 1:
        return Concat(left, terms[0], EPSILON)
    if len(terms) == 2:
        return Concat(left, terms[0], terms[1])
    return ConcatChain(left, tuple(terms))


def desugar_chains(formula: Formula) -> Formula:
    """Replace every :class:`ConcatChain` by its binary splitting.

    The result is a pure binary-atom FC formula defining the same language
    (the Freydenberger–Thompson splitting); its quantifier rank may exceed
    the sugared formula's rank by the number of introduced link variables.
    """
    from repro.fc.syntax import And, Exists, Forall, Implies, Not, Or

    if isinstance(formula, ConcatChain):
        return eq_concat(formula.x, list(formula.parts))
    if isinstance(formula, Not):
        return Not(desugar_chains(formula.inner))
    if isinstance(formula, And):
        return And(desugar_chains(formula.left), desugar_chains(formula.right))
    if isinstance(formula, Or):
        return Or(desugar_chains(formula.left), desugar_chains(formula.right))
    if isinstance(formula, Implies):
        return Implies(
            desugar_chains(formula.left), desugar_chains(formula.right)
        )
    if isinstance(formula, Exists):
        return Exists(formula.var, desugar_chains(formula.inner))
    if isinstance(formula, Forall):
        return Forall(formula.var, desugar_chains(formula.inner))
    return formula


def eq_terms(left: "Term | str", right: "Term | str") -> Formula:
    """Build ``left ≐ right`` (equality as ``left ≐ right·ε``).

    The paper uses ``(z ≐ ε)`` as shorthand for ``(z ≐ ε·ε)``; this is the
    general form of that shorthand.
    """
    return eq_concat(left, [right])


def equals(left: "Term | str", right: "Term | str") -> Formula:
    """Alias of :func:`eq_terms` for readability in builders."""
    return eq_terms(left, right)
