"""Serialisation of FC formulas to the parser's text syntax.

``to_text`` produces ASCII text that :func:`repro.fc.parser.parse_fc`
parses back to an equal AST (round-trip property-tested).  Useful for
logging, the CLI, and persisting synthesised certificates.
"""

from __future__ import annotations

from repro.fc.syntax import (
    And,
    Concat,
    ConcatChain,
    EPSILON,
    Exists,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    Term,
    Var,
)

__all__ = ["to_text"]


def _term(t: Term) -> str:
    if isinstance(t, Var):
        return t.name
    if t == EPSILON:
        return "eps"
    return t.symbol


def to_text(formula: Formula) -> str:
    """Render a formula in the ``repro.fc.parser`` text syntax.

    Grouping is explicit (every connective application parenthesised), so
    the output is unambiguous regardless of precedence.  Regular
    constraints and oracle atoms have no text syntax and raise
    ``ValueError``.
    """
    if isinstance(formula, Concat):
        if formula.z == EPSILON and formula.y != EPSILON:
            return f"({_term(formula.x)} = {_term(formula.y)})"
        return (
            f"({_term(formula.x)} = {_term(formula.y)}.{_term(formula.z)})"
        )
    if isinstance(formula, ConcatChain):
        rhs = ".".join(_term(p) for p in formula.parts)
        return f"({_term(formula.x)} = {rhs})"
    if isinstance(formula, Not):
        return f"~{to_text(formula.inner)}"
    if isinstance(formula, And):
        return f"({to_text(formula.left)} & {to_text(formula.right)})"
    if isinstance(formula, Or):
        return f"({to_text(formula.left)} | {to_text(formula.right)})"
    if isinstance(formula, Implies):
        return f"({to_text(formula.left)} -> {to_text(formula.right)})"
    if isinstance(formula, Exists):
        # Quantifier scope extends maximally in the text grammar, so
        # quantified subformulas are always parenthesised.
        return f"(E {formula.var.name}: {to_text(formula.inner)})"
    if isinstance(formula, Forall):
        return f"(A {formula.var.name}: {to_text(formula.inner)})"
    raise ValueError(
        f"{type(formula).__name__} has no text syntax (only pure FC prints)"
    )
