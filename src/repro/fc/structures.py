"""τ_Σ-structures: the relational view of a word.

Section 2 of the paper represents ``w ∈ Σ*`` as the structure

    𝔄_w = (Facs(w) ∪ {⊥}, R∘, a₁^𝔄, …, a_m^𝔄, ε^𝔄)

where ``R∘ = {(a,b,c) ∈ Facs(w)³ | a = b·c}`` and the constant ``a`` is
interpreted as the letter ``a`` if it occurs in ``w`` and as ``⊥`` otherwise.
This module implements the structure, the null element ⊥, the constants
vector ``⟨𝔄⟩`` used in EF games, and restriction to a sub-universe
(``𝔄|_{A'}``, used by the Pseudo-Congruence proof).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable

from repro import cachestats
from repro.words.factors import factors

__all__ = ["BOTTOM", "Bottom", "WordStructure", "word_structure"]


class Bottom:
    """The null element ⊥ (a singleton).

    ⊥ is a member of every universe; it interprets constants whose letter
    does not occur in the word, and it is never the value of a variable.
    """

    _instance: "Bottom | None" = None

    def __new__(cls) -> "Bottom":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "⊥"


#: The unique ⊥ element.
BOTTOM = Bottom()

#: An element of a structure universe: a factor (str) or ⊥.
Element = "str | Bottom"


@dataclass(frozen=True)
class WordStructure:
    """The τ_Σ-structure 𝔄_w representing ``word`` over ``alphabet``.

    The universe is ``Facs(word) ∪ {⊥}``; ``R∘`` is concatenation restricted
    to factors; each letter of ``alphabet`` is a constant symbol interpreted
    as itself when it occurs in ``word`` and as ⊥ otherwise; ε is always
    interpreted as the empty factor.

    The structure is *logically* determined by ``(word, alphabet)``; the
    relation ``R∘`` is never materialised (it has Θ(|Facs|²) tuples) —
    membership is answered by string operations.
    """

    word: str
    alphabet: str

    def __post_init__(self) -> None:
        if len(set(self.alphabet)) != len(self.alphabet):
            raise ValueError(f"alphabet has repeated letters: {self.alphabet!r}")
        missing = set(self.word) - set(self.alphabet)
        if missing:
            raise ValueError(
                f"word uses letters {sorted(missing)} outside alphabet "
                f"{self.alphabet!r}"
            )

    # -- universe ----------------------------------------------------------

    @property
    def universe_factors(self) -> frozenset[str]:
        """``Facs(word)`` — the universe minus ⊥."""
        return factors(self.word)

    def universe(self) -> list["str | Bottom"]:
        """The full universe ``Facs(word) ∪ {⊥}`` as a list.

        Factors are ordered by (length, lexicographic) for determinism.
        """
        ordered: list[str | Bottom] = sorted(
            self.universe_factors, key=lambda f: (len(f), f)
        )
        ordered.append(BOTTOM)
        return ordered

    def universe_size(self) -> int:
        """``|Facs(word)| + 1``."""
        return len(self.universe_factors) + 1

    def contains(self, element: "str | Bottom") -> bool:
        """Return ``True`` iff ``element`` belongs to the universe."""
        if element is BOTTOM:
            return True
        return isinstance(element, str) and element in self.word

    # -- interpretation of symbols ------------------------------------------

    def constant(self, symbol: str) -> "str | Bottom":
        """Interpret the constant ``symbol``.

        ``""`` is ε (always the empty factor).  A letter is itself if it
        occurs in ``word``, else ⊥.  Unknown symbols raise ``ValueError``.
        """
        if symbol == "":
            return ""
        if symbol not in self.alphabet:
            raise ValueError(
                f"{symbol!r} is not a constant of τ_{{{self.alphabet}}}"
            )
        return symbol if symbol in self.word else BOTTOM

    def constants_vector(self) -> tuple["str | Bottom", ...]:
        """Return ``⟨𝔄⟩ = (a₁^𝔄, …, a_m^𝔄, ε^𝔄)`` (Section 3).

        EF-game win checks append this vector to the played elements, so
        Duplicator must also respect the constants.
        """
        values = [self.constant(letter) for letter in self.alphabet]
        values.append("")
        return tuple(values)

    def concat_holds(
        self,
        x: "str | Bottom",
        y: "str | Bottom",
        z: "str | Bottom",
    ) -> bool:
        """Return ``True`` iff ``(x, y, z) ∈ R∘`` — all three are factors of
        ``word`` and ``x = y·z``.  Any ⊥ argument makes the atom false."""
        if x is BOTTOM or y is BOTTOM or z is BOTTOM:
            return False
        if x != y + z:
            return False
        # y and z are factors whenever x is (they are factors of x), so only
        # x's membership needs checking.
        return x in self.word

    # -- restriction (Appendix C definition) --------------------------------

    def restrict(self, sub_universe: Iterable[str]) -> "RestrictedStructure":
        """Return ``𝔄|_{A'}``: the structure restricted to the factor set
        ``sub_universe`` (plus ⊥), with R∘ and constants restricted too.

        Used by the Pseudo-Congruence proof, which plays look-up games on
        ``𝔄_{w1·w2}|_{Facs(w1)}`` etc.
        """
        allowed = frozenset(sub_universe)
        stray = {f for f in allowed if f not in self.word}
        if stray:
            raise ValueError(
                f"sub-universe contains non-factors: {sorted(stray)[:3]}"
            )
        return RestrictedStructure(self, allowed)

    def __repr__(self) -> str:
        return f"𝔄[{self.word!r}]"


@dataclass(frozen=True)
class RestrictedStructure:
    """``𝔄_w|_{A'}`` — the restriction of a word structure to a sub-universe.

    Implements the same element/constant/R∘ interface as
    :class:`WordStructure`, so EF games can be played on restrictions.
    """

    base: WordStructure
    allowed: frozenset[str]

    @property
    def word(self) -> str:
        return self.base.word

    @property
    def alphabet(self) -> str:
        return self.base.alphabet

    @property
    def universe_factors(self) -> frozenset[str]:
        return self.allowed

    def universe(self) -> list["str | Bottom"]:
        ordered: list[str | Bottom] = sorted(
            self.allowed, key=lambda f: (len(f), f)
        )
        ordered.append(BOTTOM)
        return ordered

    def universe_size(self) -> int:
        return len(self.allowed) + 1

    def contains(self, element: "str | Bottom") -> bool:
        if element is BOTTOM:
            return True
        return element in self.allowed

    def constant(self, symbol: str) -> "str | Bottom":
        value = self.base.constant(symbol)
        if value is BOTTOM or value in self.allowed:
            return value
        return BOTTOM

    def constants_vector(self) -> tuple["str | Bottom", ...]:
        values = [self.constant(letter) for letter in self.alphabet]
        values.append(self.constant(""))
        return tuple(values)

    def concat_holds(
        self,
        x: "str | Bottom",
        y: "str | Bottom",
        z: "str | Bottom",
    ) -> bool:
        if x is BOTTOM or y is BOTTOM or z is BOTTOM:
            return False
        if x not in self.allowed or y not in self.allowed or z not in self.allowed:
            return False
        return x == y + z

    def __repr__(self) -> str:
        return f"𝔄[{self.word!r}]|({len(self.allowed)} factors)"


@lru_cache(maxsize=2048)
def word_structure(word: str, alphabet: str) -> WordStructure:
    """Cached constructor for :class:`WordStructure`.

    The model checker and the game solver construct the same structures
    over and over; caching keeps the factor sets shared.
    """
    return WordStructure(word, alphabet)


cachestats.register("fc.structures.word_structure", word_structure)
