"""A text syntax for FC formulas.

Grammar (ASCII-friendly; unicode connectives also accepted)::

    formula  := quantified | implies
    quantified := ('E' | 'A') var+ ':' formula        # ∃ / ∀, e.g. "E x y:"
    implies  := or ('->' or)*
    or       := and ('|' and)*
    and      := unary ('&' unary)*
    unary    := '~' unary | atom | '(' formula ')'
    atom     := '(' term '=' term ('.' term)* ')'     # (x = y.z), (x = eps)
    term     := variable | letter-constant | 'eps'

Variables are identifiers of length ≥ 2 or any identifier not naming a
letter of the declared alphabet; single letters of the alphabet parse as
constants; ``eps`` (or ``ε``) is the empty-word constant.  Atoms with more
than two right-hand-side terms build :class:`ConcatChain` nodes.

Examples::

    parse_fc("E x: (x = a.a)", alphabet="ab")        # ∃x: (x ≐ a·a)
    parse_fc("A z: (~(z = eps) -> ~E x y: ((x = z.y) & (y = z.z)))", "ab")
"""

from __future__ import annotations

import re

from repro.fc.syntax import (
    And,
    Concat,
    ConcatChain,
    Const,
    EPSILON,
    Exists,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    Term,
    Var,
)

__all__ = ["parse_fc", "FCParseError"]


class FCParseError(ValueError):
    """Raised on malformed FC formula text, with position information."""


# Identifiers admit brackets so machine-generated variable names like
# "_z1[x]" (the builders' fresh variables) remain printable/parseable.
_TOKEN_PATTERN = re.compile(
    r"\s*(?:(?P<arrow>->|→)|(?P<punct>[():&|~.=∃∀∧∨¬≐·])"
    r"|(?P<word>[^\W\d][\w\[\]]*))",
    re.UNICODE,
)

_QUANTIFIER_WORDS = {"E": Exists, "A": Forall, "∃": Exists, "∀": Forall}


class _Tokens:
    def __init__(self, text: str):
        self.text = text
        self.items: list[tuple[str, str, int]] = []
        position = 0
        while position < len(text):
            match = _TOKEN_PATTERN.match(text, position)
            if match is None or match.end() == position:
                remainder = text[position:].strip()
                if not remainder:
                    break
                raise FCParseError(
                    f"cannot tokenise at position {position}: {remainder[:12]!r}"
                )
            if match.group("arrow"):
                self.items.append(("->", "->", match.start()))
            elif match.group("punct"):
                punct = match.group("punct")
                normalised = {
                    "∧": "&",
                    "∨": "|",
                    "¬": "~",
                    "≐": "=",
                    "·": ".",
                }.get(punct, punct)
                self.items.append((normalised, punct, match.start()))
            else:
                self.items.append(("word", match.group("word"), match.start()))
            position = match.end()
        self.cursor = 0

    def peek(self) -> tuple[str, str, int] | None:
        if self.cursor < len(self.items):
            return self.items[self.cursor]
        return None

    def take(self) -> tuple[str, str, int]:
        item = self.peek()
        if item is None:
            raise FCParseError("unexpected end of formula")
        self.cursor += 1
        return item

    def expect(self, kind: str) -> tuple[str, str, int]:
        item = self.take()
        if item[0] != kind:
            raise FCParseError(
                f"expected {kind!r} at position {item[2]}, got {item[1]!r}"
            )
        return item


class _Parser:
    def __init__(self, text: str, alphabet: str):
        self.tokens = _Tokens(text)
        self.alphabet = alphabet

    def term(self, word: str, position: int) -> Term:
        if word in ("eps", "ε"):
            return EPSILON
        if len(word) == 1 and word in self.alphabet:
            return Const(word)
        if word[0].isalpha() or word[0] == "_":
            return Var(word)
        raise FCParseError(f"bad term {word!r} at position {position}")

    def formula(self) -> Formula:
        item = self.tokens.peek()
        if item is not None and item[0] == "word" and item[1] in _QUANTIFIER_WORDS:
            # Quantifier block: E x y: φ
            _, quantifier_word, _ = self.tokens.take()
            quantifier = _QUANTIFIER_WORDS[quantifier_word]
            variables: list[Var] = []
            while True:
                nxt = self.tokens.peek()
                if nxt is None:
                    raise FCParseError("unterminated quantifier block")
                if nxt[0] == ":":
                    self.tokens.take()
                    break
                kind, word, position = self.tokens.take()
                if kind != "word":
                    raise FCParseError(
                        f"expected variable at position {position}"
                    )
                term = self.term(word, position)
                if not isinstance(term, Var):
                    raise FCParseError(
                        f"cannot quantify over constant {word!r} "
                        f"(position {position})"
                    )
                variables.append(term)
            if not variables:
                raise FCParseError("quantifier block binds no variables")
            body = self.formula()
            for variable in reversed(variables):
                body = quantifier(variable, body)
            return body
        return self.implies()

    def implies(self) -> Formula:
        node = self.disjunction()
        while (item := self.tokens.peek()) is not None and item[0] == "->":
            self.tokens.take()
            node = Implies(node, self.disjunction())
        return node

    def disjunction(self) -> Formula:
        node = self.conjunction()
        while (item := self.tokens.peek()) is not None and item[0] == "|":
            self.tokens.take()
            node = Or(node, self.conjunction())
        return node

    def conjunction(self) -> Formula:
        node = self.unary()
        while (item := self.tokens.peek()) is not None and item[0] == "&":
            self.tokens.take()
            node = And(node, self.unary())
        return node

    def unary(self) -> Formula:
        item = self.tokens.peek()
        if item is None:
            raise FCParseError("unexpected end of formula")
        if item[0] == "~":
            self.tokens.take()
            return Not(self.unary())
        if item[0] == "word" and item[1] in _QUANTIFIER_WORDS:
            return self.formula()
        if item[0] == "(":
            return self.group_or_atom()
        raise FCParseError(
            f"unexpected {item[1]!r} at position {item[2]}"
        )

    def group_or_atom(self) -> Formula:
        self.tokens.expect("(")
        # Look ahead: "word =" means an atom; otherwise a grouped formula.
        first = self.tokens.peek()
        if (
            first is not None
            and first[0] == "word"
            and self.tokens.cursor + 1 < len(self.tokens.items)
            and self.tokens.items[self.tokens.cursor + 1][0] == "="
        ):
            _, head_word, head_pos = self.tokens.take()
            self.tokens.expect("=")
            head = self.term(head_word, head_pos)
            parts: list[Term] = []
            while True:
                kind, word, position = self.tokens.take()
                if kind != "word":
                    raise FCParseError(
                        f"expected term at position {position}, got {word!r}"
                    )
                parts.append(self.term(word, position))
                nxt = self.tokens.take()
                if nxt[0] == ")":
                    break
                if nxt[0] != ".":
                    raise FCParseError(
                        f"expected '.' or ')' at position {nxt[2]}"
                    )
            if len(parts) == 1:
                return Concat(head, parts[0], EPSILON)
            if len(parts) == 2:
                return Concat(head, parts[0], parts[1])
            return ConcatChain(head, tuple(parts))
        node = self.formula()
        self.tokens.expect(")")
        return node


def parse_fc(text: str, alphabet: str) -> Formula:
    """Parse FC formula text into an AST over the given alphabet.

    Raises :class:`FCParseError` on malformed input or trailing tokens.
    """
    parser = _Parser(text, alphabet)
    node = parser.formula()
    trailing = parser.tokens.peek()
    if trailing is not None:
        raise FCParseError(
            f"trailing input at position {trailing[2]}: {trailing[1]!r}"
        )
    return node
