"""Model checking for FC (and, via a dispatch hook, FC[REG]).

Implements the satisfaction relation of Section 2:

* an *interpretation* is ``(𝔄_w, σ)`` with ``σ`` mapping variables to
  factors of ``w`` (never ⊥) and constants to their fixed interpretation;
* quantifiers range over ``Facs(w)``;
* ``⟦φ⟧(w)`` is the set of assignments (restricted to the free variables)
  that satisfy φ in 𝔄_w.

The checker is a straightforward recursive evaluator — FC model checking is
PSPACE-hard in combined complexity, and the experiments only ever check
fixed small formulas on short words, where brute force is exact and fast
enough.  Extension atoms (e.g. FC[REG] regular constraints) participate by
providing an ``_evaluate(structure, assignment)`` method.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator

from repro.fc.compiled import compiled_evaluator
from repro.fc.optimizer import formula_pool
from repro.kernel import stats as kernel_stats
from repro.fc.structures import BOTTOM, WordStructure, word_structure
from repro.fc.sweep import LanguageSweep
from repro.store import artifacts as store_artifacts, runtime as store_runtime
from repro.fc.syntax import (
    And,
    Concat,
    ConcatChain,
    Const,
    Exists,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    Term,
    Var,
    alpha_canonical,
    free_variables,
)
from repro.words.generators import words_up_to

__all__ = [
    "Assignment",
    "evaluate",
    "evaluate_naive",
    "models",
    "satisfying_assignments",
    "satisfying_tuples",
    "defines_language_member",
    "defines_language_members",
    "defines_language_members_shard",
    "language_signatures",
    "language_slice",
    "languages_agree",
    "merge_shard_rows",
    "shard_words",
    "FCLanguage",
]

#: A variable assignment σ restricted to variables (constants are implicit).
Assignment = Dict[Var, str]



def _term_value(
    structure: WordStructure, assignment: Assignment, t: Term
) -> "str | object":
    """Interpret a term: constants via the structure, variables via σ."""
    if isinstance(t, Const):
        return structure.constant(t.symbol)
    try:
        return assignment[t]
    except KeyError:
        raise ValueError(
            f"free variable {t!r} has no value in the assignment"
        ) from None


def evaluate(
    structure: WordStructure, formula: Formula, assignment: Assignment
) -> bool:
    """Decide ``(𝔄, σ) ⊨ φ``.

    ``assignment`` must cover all free variables of ``formula``; bound
    variables are handled internally (the dict is mutated in place during
    quantifier scans and restored afterwards).
    """
    if isinstance(formula, Concat):
        x = _term_value(structure, assignment, formula.x)
        y = _term_value(structure, assignment, formula.y)
        z = _term_value(structure, assignment, formula.z)
        return structure.concat_holds(x, y, z)
    if isinstance(formula, ConcatChain):
        head = _term_value(structure, assignment, formula.x)
        if head is BOTTOM:
            return False
        pieces = []
        for part in formula.parts:
            value = _term_value(structure, assignment, part)
            if value is BOTTOM:
                return False
            pieces.append(value)
        return head == "".join(pieces) and structure.contains(head)
    if isinstance(formula, Not):
        return not evaluate(structure, formula.inner, assignment)
    if isinstance(formula, And):
        return evaluate(structure, formula.left, assignment) and evaluate(
            structure, formula.right, assignment
        )
    if isinstance(formula, Or):
        return evaluate(structure, formula.left, assignment) or evaluate(
            structure, formula.right, assignment
        )
    if isinstance(formula, Implies):
        return (not evaluate(structure, formula.left, assignment)) or evaluate(
            structure, formula.right, assignment
        )
    if isinstance(formula, (Exists, Forall)):
        variable = formula.var
        shadowed = assignment.get(variable)
        had_value = variable in assignment
        want = isinstance(formula, Exists)
        if had_value:
            del assignment[variable]  # the outer value must not constrain
        # Sideways information passing: restrict the scan to values for
        # which the inner formula can still reach the decisive truth value
        # (∃ → can-be-true, ∀ → can-be-false); see fc.optimizer.
        pool = formula_pool(structure, assignment, variable, formula.inner, want)
        scan = structure.universe_factors if pool is None else pool
        result = not want
        for factor in scan:
            assignment[variable] = factor
            if evaluate(structure, formula.inner, assignment) == want:
                result = want
                break
        if had_value:
            assignment[variable] = shadowed  # type: ignore[assignment]
        else:
            assignment.pop(variable, None)
        return result
    custom = getattr(formula, "_evaluate", None)
    if custom is not None:
        return custom(structure, assignment)
    raise TypeError(f"unknown formula node: {formula!r}")


def evaluate_naive(
    structure: WordStructure, formula: Formula, assignment: Assignment
) -> bool:
    """Reference evaluator: identical semantics to :func:`evaluate` but with
    no candidate-pool optimisation — every quantifier scans the full factor
    universe.  Kept for cross-validation (the optimiser's soundness is
    property-tested against this) and as executable documentation of the
    plain Section 2 semantics."""
    if isinstance(formula, Concat):
        x = _term_value(structure, assignment, formula.x)
        y = _term_value(structure, assignment, formula.y)
        z = _term_value(structure, assignment, formula.z)
        return structure.concat_holds(x, y, z)
    if isinstance(formula, ConcatChain):
        head = _term_value(structure, assignment, formula.x)
        if head is BOTTOM:
            return False
        pieces = []
        for part in formula.parts:
            value = _term_value(structure, assignment, part)
            if value is BOTTOM:
                return False
            pieces.append(value)
        return head == "".join(pieces) and structure.contains(head)
    if isinstance(formula, Not):
        return not evaluate_naive(structure, formula.inner, assignment)
    if isinstance(formula, And):
        return evaluate_naive(structure, formula.left, assignment) and (
            evaluate_naive(structure, formula.right, assignment)
        )
    if isinstance(formula, Or):
        return evaluate_naive(structure, formula.left, assignment) or (
            evaluate_naive(structure, formula.right, assignment)
        )
    if isinstance(formula, Implies):
        return (not evaluate_naive(structure, formula.left, assignment)) or (
            evaluate_naive(structure, formula.right, assignment)
        )
    if isinstance(formula, (Exists, Forall)):
        variable = formula.var
        shadowed = assignment.get(variable)
        had_value = variable in assignment
        want = isinstance(formula, Exists)
        result = not want
        for factor in structure.universe_factors:
            assignment[variable] = factor
            if evaluate_naive(structure, formula.inner, assignment) == want:
                result = want
                break
        if had_value:
            assignment[variable] = shadowed  # type: ignore[assignment]
        else:
            assignment.pop(variable, None)
        return result
    custom = getattr(formula, "_evaluate", None)
    if custom is not None:
        return custom(structure, assignment)
    raise TypeError(f"unknown formula node: {formula!r}")


def models(
    word: str,
    formula: Formula,
    alphabet: str,
    assignment: Assignment | None = None,
) -> bool:
    """Decide ``𝔄_w ⊨ φ`` (with optional free-variable assignment).

    Raises ``ValueError`` if free variables are left unassigned or a value
    is not a factor of ``word`` (assignments must never be ⊥).
    """
    structure = word_structure(word, alphabet)
    assignment = dict(assignment or {})
    for variable in free_variables(formula):
        if variable not in assignment:
            raise ValueError(f"free variable {variable!r} unassigned")
    for variable, value in assignment.items():
        if value is BOTTOM or value not in word:
            raise ValueError(
                f"assignment {variable!r} ↦ {value!r} is not a factor of "
                f"{word!r}"
            )
    # Kernel fast path: interned ids + per-subformula projection cache,
    # shared process-wide per structure (see repro.fc.compiled).
    return compiled_evaluator(structure).evaluate(formula, assignment)


def satisfying_assignments(
    word: str, formula: Formula, alphabet: str
) -> Iterator[Assignment]:
    """Yield ``⟦φ⟧(w)``: every assignment of the free variables of φ to
    factors of ``word`` under which φ holds.

    Assignments are yielded as fresh dicts with domain exactly the free
    variables (matching the paper's convention for ⟦φ⟧).

    With an active artifact store (``repro.store``), the full result set
    is hydrated from the ``fc-assignments`` artifact — same assignments,
    same enumeration order — and published after a cold enumeration is
    exhausted (partial scans are never stored as ⟦φ⟧(w)).
    """
    if store_runtime.active() is None:
        yield from _enumerate_assignments(word, formula, alphabet)
        return
    args = {
        "word": word,
        "alphabet": alphabet,
        # Formula nodes are frozen dataclasses, so repr is structural —
        # but bound-variable names come from process-global gensym
        # counters, so the fingerprint is taken over the alpha-canonical
        # form (binder names replaced by preorder positions).
        "formula": store_artifacts.fingerprint_text(
            repr(alpha_canonical(formula))
        ),
    }
    payload = store_runtime.load(
        store_artifacts.FC_ASSIGNMENTS_KIND,
        store_artifacts.FC_ASSIGNMENTS_VERSION,
        args,
    )
    if payload is not None:
        for row in store_artifacts.decode_assignments(payload):
            yield {Var(name): value for name, value in row}
        return
    rows = []
    for assignment in _enumerate_assignments(word, formula, alphabet):
        rows.append(
            [
                (variable.name, assignment[variable])
                for variable in sorted(assignment, key=lambda v: v.name)
            ]
        )
        yield assignment
    store_runtime.publish(
        store_artifacts.FC_ASSIGNMENTS_KIND,
        store_artifacts.FC_ASSIGNMENTS_VERSION,
        args,
        store_artifacts.encode_assignments(rows),
    )


def _enumerate_assignments(
    word: str, formula: Formula, alphabet: str
) -> Iterator[Assignment]:
    """The cold ⟦φ⟧(w) enumeration behind :func:`satisfying_assignments`."""
    structure = word_structure(word, alphabet)
    evaluator = compiled_evaluator(structure)
    variables = sorted(free_variables(formula), key=lambda v: v.name)
    factor_pool = sorted(structure.universe_factors, key=lambda f: (len(f), f))

    def recurse(index: int, assignment: Assignment) -> Iterator[Assignment]:
        if index == len(variables):
            # The projection cache makes this re-entry cheap: inner
            # subformulas are recomputed only when *their* free variables
            # change, not for every enumerated combination.
            if evaluator.evaluate(formula, assignment):
                yield dict(assignment)
            return
        variable = variables[index]
        for factor in factor_pool:
            assignment[variable] = factor
            yield from recurse(index + 1, assignment)
        del assignment[variable]

    yield from recurse(0, {})


def satisfying_tuples(
    formula: Formula,
    alphabet: str,
    words: Iterable[str],
    scope: int | None = None,
    variables: "tuple[Var, ...] | None" = None,
) -> Iterator[tuple[str, list[tuple[str, ...]]]]:
    """Batched ``⟦φ⟧`` over a word family: yield ``(word, rows)``.

    ``rows`` lists the satisfying value tuples of ``formula`` on
    ``word`` — one column per free variable, in sorted-name order by
    default or in the order given by ``variables`` (a permutation of
    the free variables) — in the same enumeration order
    :func:`satisfying_assignments` yields.  For a sentence, ``rows`` is
    ``[()]`` when the word models φ and ``[]`` otherwise.

    Formulas in the sweep fragment compile once per family
    (:meth:`repro.fc.sweep.SweepProgram.relation`): interning, pools
    and pure-atom truth are shared across words and the per-word scan
    is pool-pruned bitset algebra.  Formulas outside the fragment fall
    back to per-word :func:`satisfying_assignments`, with identical
    rows — the differential suite checks the row-for-row equality.

    ``scope`` declares that ``words`` is exactly ``Σ^{≤scope}`` in
    enumeration order; with an active artifact store the whole grid's
    relation then hydrates from (or publishes to) one
    ``sweep-relation`` artifact, and the family's factor tables go
    through the ``sweep-universe`` artifact as in
    :func:`defines_language_members`.
    """
    canonical = tuple(sorted(free_variables(formula), key=lambda v: v.name))
    if variables is None:
        order = None
    else:
        if sorted(variables, key=lambda v: v.name) != list(canonical):
            raise ValueError(
                "variables must be a permutation of the free variables"
            )
        # repro-lint: domain[iter[slot]] the declared slot map — relation rows are reindexed only through it
        picks = tuple(canonical.index(v) for v in variables)
        order = None if picks == tuple(range(len(canonical))) else picks  # repro-lint: domain[iter[slot]] same slot map, or None for the identity projection

    def project(rows: list) -> list:
        if order is None:
            return rows
        return [tuple(row[i] for i in order) for row in rows]

    sweep = LanguageSweep(alphabet)
    program = sweep.compile(formula)

    def run() -> Iterator[tuple[str, list[tuple[str, ...]]]]:
        if program is None:
            for word in words:
                rows = [
                    tuple(assignment[v] for v in canonical)
                    for assignment in satisfying_assignments(
                        word, formula, alphabet
                    )
                ]
                yield word, project(rows)
            return
        store_on = store_runtime.active() is not None and scope is not None
        args = None
        if store_on:
            args = {
                "alphabet": alphabet,
                "max_length": scope,
                # Alpha-canonical fingerprint, for the same reason as
                # satisfying_assignments: binder names are gensym'd.
                "formula": store_artifacts.fingerprint_text(
                    repr(alpha_canonical(formula))
                ),
            }
            payload = store_runtime.load(
                store_artifacts.SWEEP_RELATION_KIND,
                store_artifacts.SWEEP_RELATION_VERSION,
                args,
            )
            if payload is not None:
                grid = store_artifacts.decode_relation_rows(payload)
                kernel_stats.record("sweep_relations_hydrated", len(grid))
                for word, rows in grid:
                    yield word, project(rows)
                return
        family = sweep.family
        publish_universe = _sweep_store_scope(family, alphabet, scope)
        texts = family.strings
        grid = [] if store_on else None
        for word in words:
            table = family.table(word)
            rows = [
                tuple(texts[gid] for gid in row)
                for row in program.relation(table)
            ]
            if grid is not None:
                grid.append((word, rows))
            yield word, project(rows)
        if grid is not None:
            # Published only after the full grid was enumerated, same
            # partial-scan discipline as satisfying_assignments.
            store_runtime.publish(
                store_artifacts.SWEEP_RELATION_KIND,
                store_artifacts.SWEEP_RELATION_VERSION,
                args,
                store_artifacts.encode_relation_rows(grid),
            )
        if publish_universe is not None:
            publish_universe()

    return run()


def defines_language_member(word: str, sentence: Formula, alphabet: str) -> bool:
    """Return ``w ∈ L(φ)`` for a sentence φ.  Raises on open formulas."""
    if free_variables(sentence):
        raise ValueError(
            f"L(φ) is only defined for sentences; free vars: "
            f"{sorted(v.name for v in free_variables(sentence))}"
        )
    return models(word, sentence, alphabet)


def _require_sentence(sentence: Formula) -> None:
    if free_variables(sentence):
        raise ValueError(
            f"L(φ) is only defined for sentences; free vars: "
            f"{sorted(v.name for v in free_variables(sentence))}"
        )


def _sweep_store_scope(family, alphabet: str, scope: int | None):
    """Hydrate a sweep family's tables for ``Σ^{≤scope}`` from the store.

    Returns a publish callback to invoke once the grid has been fully
    enumerated (``None`` on a store hit, without a store, or without a
    declared scope).  The artifact is the whole grid in enumeration
    order — per-word records would cost a probe per word, which is more
    than the incremental extension they replace.
    """
    if store_runtime.active() is None or scope is None:
        return None
    args = {"alphabet": alphabet, "max_length": scope}
    payload = store_runtime.load(
        store_artifacts.SWEEP_UNIVERSE_KIND,
        store_artifacts.SWEEP_UNIVERSE_VERSION,
        args,
    )
    if payload is not None:
        for word, factor_texts in payload:
            family.hydrate(word, factor_texts)
        return None

    def publish() -> None:
        rows = [
            [word, family.export(word)]
            for word in words_up_to(alphabet, scope)
        ]
        store_runtime.publish(
            store_artifacts.SWEEP_UNIVERSE_KIND,
            store_artifacts.SWEEP_UNIVERSE_VERSION,
            args,
            rows,
        )

    return publish


def defines_language_members(
    sentence: Formula, alphabet: str, words: Iterable[str],
    scope: int | None = None,
) -> Iterator[tuple[str, bool]]:
    """Batched ``w ∈ L(φ)`` over a word family: yield ``(word, member)``.

    Compiles the sentence once against a :class:`repro.fc.sweep`
    program so interning, candidate pools and pure-atom truth are shared
    across the whole family; enumeration order of ``words`` is preserved
    (enumerate prefixes-first, e.g. via ``words_up_to``, for the
    incremental table extension to pay off).  Sentences outside the
    sweep fragment fall back to per-word :func:`defines_language_member`
    with identical results — the differential suite checks the
    equivalence over full small grids.

    ``scope`` declares that ``words`` is (a prefix of) ``Σ^{≤scope}`` in
    enumeration order; with an active artifact store the family's
    tables then hydrate from (or publish to) the grid's
    ``sweep-universe`` artifact.
    """
    _require_sentence(sentence)
    sweep = LanguageSweep(alphabet)
    program = sweep.compile(sentence)

    def run() -> Iterator[tuple[str, bool]]:
        if program is None:
            for word in words:
                yield word, models(word, sentence, alphabet)
            return
        family = sweep.family
        publish = _sweep_store_scope(family, alphabet, scope)
        for word in words:
            yield word, program.evaluate(family.table(word))
        if publish is not None:
            publish()

    return run()


def shard_words(alphabet: str, max_length: int, shard: dict) -> Iterator[str]:
    """The words one shard descriptor owns, in per-group ``(len, text)``
    order.

    ``shard`` follows the engine's shard-plan grammar
    (:mod:`repro.engine.shards`):

    * ``{"stems": [...], "prefixes": [...]}`` — the listed stem words
      (the below-the-cut layers, owned by shard 0) followed by every
      word of each listed prefix subtree up to ``max_length``;
    * ``{"lengths": [...]}`` — unary length bands: ``alphabet[0] ** l``
      for each listed length.

    A full shard partition yields every word of ``Σ^{≤max_length}``
    exactly once; :func:`merge_shard_rows` restores the global
    enumeration order.
    """
    yield from shard.get("stems", ())
    for prefix in shard.get("prefixes", ()):
        tail = max_length - len(prefix)
        if tail < 0:
            continue
        for suffix in words_up_to(alphabet, tail):
            yield prefix + suffix
    for length in shard.get("lengths", ()):
        yield alphabet[0] * length


def defines_language_members_shard(
    sentence: Formula, alphabet: str, max_length: int, shard: dict
) -> Iterator[tuple[str, bool]]:
    """One shard of the :func:`defines_language_members` grid over
    ``Σ^{≤max_length}``: yield ``(word, member)`` for exactly the words
    of ``shard`` (see :func:`shard_words` for the descriptor grammar).

    Verdicts are bit-identical to the monolithic sweep — the compiled
    program and the per-word factor tables do not depend on which other
    words the family has seen.  Factor tables the shard needs but does
    not own (the stem path below a subtree root, the chain below a
    unary band) are built under
    :func:`repro.kernel.stats.shard_overhead`, so summed across a full
    partition the real sweep counters equal the monolithic run's and
    the duplicated stem work is measured in ``shard_overhead_ops``.
    """
    _require_sentence(sentence)
    sweep = LanguageSweep(alphabet)
    program = sweep.compile(sentence)

    def run() -> Iterator[tuple[str, bool]]:
        if program is None:
            for word in shard_words(alphabet, max_length, shard):
                yield word, models(word, sentence, alphabet)
            return
        family = sweep.family
        for word in shard.get("stems", ()):
            yield word, program.evaluate(family.table(word))
        for prefix in shard.get("prefixes", ()):
            view = sweep.subtree(prefix)
            for word in view.words(max_length):
                yield word, program.evaluate(view.table(word))
        previous = None
        for length in shard.get("lengths", ()):
            word = alphabet[0] * length
            if length and previous != length - 1:
                # The band's below-the-floor chain belongs to another
                # shard; build it as attributed overhead, then extend.
                with kernel_stats.shard_overhead():
                    family.table(word[:-1])
            yield word, program.evaluate(family.table(word))
            previous = length

    return run()


def merge_shard_rows(parts: "Iterable[Iterable]") -> list:
    """Merge per-shard result rows back into the global ``(len, text)``
    enumeration order (the ``words_up_to`` order).

    Rows are either plain words or ``(word, payload)`` sequences with
    the word first.  A shard part is a concatenation of sorted *runs*
    (the stems, then one run per prefix subtree), not a globally sorted
    sequence, so this is a full sort on ``(len, word)`` — a total order
    over any exact partition, hence deterministic: the committed result
    of a sharded task is bit-identical to the monolithic enumeration.
    """

    def key(row):
        word = row if isinstance(row, str) else row[0]
        return (len(word), word)

    return sorted((row for part in parts for row in part), key=key)


def language_signatures(
    sentences: Iterable[Formula], alphabet: str, words: Iterable[str],
    scope: int | None = None,
) -> Iterator[tuple[str, tuple[bool, ...]]]:
    """Membership signatures over a sentence pool: yield
    ``(word, (w ∈ L(φ_1), …, w ∈ L(φ_k)))``.

    All sentences share one sweep family (one id space, one table per
    word), so the E02-style signature computation interns each word's
    factors once instead of once per sentence.  ``scope`` is as in
    :func:`defines_language_members`.
    """
    pool = tuple(sentences)
    for sentence in pool:
        _require_sentence(sentence)
    sweep = LanguageSweep(alphabet)
    programs = tuple(sweep.compile(sentence) for sentence in pool)

    def run() -> Iterator[tuple[str, tuple[bool, ...]]]:
        family = sweep.family
        publish = None
        if any(program is not None for program in programs):
            publish = _sweep_store_scope(family, alphabet, scope)
        for word in words:
            table = None
            signature = []
            for sentence, program in zip(pool, programs):
                if program is None:
                    signature.append(models(word, sentence, alphabet))
                    continue
                if table is None:
                    table = family.table(word)
                signature.append(program.evaluate(table))
            yield word, tuple(signature)
        if publish is not None:
            publish()

    return run()


def language_slice(
    sentence: Formula, alphabet: str, max_length: int
) -> frozenset[str]:
    """Return ``L(φ) ∩ Σ^{≤max_length}`` by brute-force enumeration."""
    return frozenset(
        word
        for word, member in defines_language_members(
            sentence, alphabet, words_up_to(alphabet, max_length),
            scope=max_length,
        )
        if member
    )


def languages_agree(
    sentence_a: Formula,
    sentence_b: Formula,
    alphabet: str,
    max_length: int,
) -> bool:
    """Check ``L(φ_a) ∩ Σ^{≤n} == L(φ_b) ∩ Σ^{≤n}``.

    The finite agreement check used by the Lemma 5.4 rewriting experiments.
    """
    pair = language_signatures(
        (sentence_a, sentence_b), alphabet, words_up_to(alphabet, max_length),
        scope=max_length,
    )
    for _word, (in_a, in_b) in pair:
        if in_a != in_b:
            return False
    return True


class FCLanguage:
    """The language of an FC sentence, with convenience comparisons.

    Wraps a sentence and its alphabet; supports membership, finite slices,
    and agreement checks against oracles (ground-truth predicates).
    """

    def __init__(self, sentence: Formula, alphabet: str, name: str = "L(φ)"):
        if free_variables(sentence):
            raise ValueError("FCLanguage requires a sentence (no free vars)")
        self.sentence = sentence
        self.alphabet = alphabet
        self.name = name

    def __contains__(self, word: str) -> bool:
        return defines_language_member(word, self.sentence, self.alphabet)

    def slice(self, max_length: int) -> frozenset[str]:
        """``L(φ) ∩ Σ^{≤max_length}``."""
        return language_slice(self.sentence, self.alphabet, max_length)

    def agrees_with(
        self, oracle: Iterable[str] | object, max_length: int
    ) -> bool:
        """Check agreement with an oracle supporting ``in`` up to length n."""
        members = defines_language_members(
            self.sentence, self.alphabet,
            words_up_to(self.alphabet, max_length), scope=max_length,
        )
        for word, member in members:
            if member != (word in oracle):  # type: ignore[operator]
                return False
        return True

    def first_disagreement(
        self, oracle: object, max_length: int
    ) -> str | None:
        """Return the shortest word on which the language and oracle differ,
        or ``None`` if they agree up to ``max_length``."""
        members = defines_language_members(
            self.sentence, self.alphabet,
            words_up_to(self.alphabet, max_length), scope=max_length,
        )
        for word, member in members:
            if member != (word in oracle):  # type: ignore[operator]
                return word
        return None

    def __repr__(self) -> str:
        return f"FCLanguage({self.name}, Σ={self.alphabet!r})"
