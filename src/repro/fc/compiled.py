"""Projection-cached FC evaluation over interned factor ids.

:class:`CompiledEvaluator` is the kernel-backed fast path behind
:func:`repro.fc.semantics.models` and
:func:`~repro.fc.semantics.satisfying_assignments`.  One evaluator per
:class:`~repro.fc.structures.WordStructure` (shared process-wide via a
``repro.cachestats``-registered lru cache) holds:

* the structure's :class:`~repro.kernel.interning.InternTable` — so the
  ``Concat`` atom becomes a single ``cat[y][z] == x`` integer compare,
  and ``ConcatChain`` folds through ``cat`` (sound early exit: every
  prefix of a factor is a factor, so a ``-1`` intermediate already
  refutes the chain);
* a *projection cache* mapping ``(subformula, free-variable id
  projection) → bool``.  Quantifier nodes are the expensive re-entry
  points — under assignment enumeration or an enclosing quantifier scan
  the same inner subformula is re-evaluated for every combination of
  *irrelevant* outer bindings — and the projection key collapses all of
  those to one entry.  Subformulas are keyed by **object identity**, not
  structural equality: the frozen syntax dataclasses recompute their
  recursive hash on every dict probe, which profiling showed dominating
  evaluation on deep formulas (the φ_fib sweep spent ~70% of its time in
  ``hash``).  Identity keying still captures the sharing that matters —
  re-entry always sees the same node object, and the enumeration pools
  reuse body objects across quantifier prefixes — at O(1) per probe.
  (Keyed nodes are pinned in the evaluator so ids cannot be recycled.)

Quantifiers scan ascending ids, i.e. the length-sorted universe, keeping
the naive short-circuit behaviour, and still consult the sideways-
information-passing pools of :mod:`repro.fc.optimizer` — a parallel
string-valued assignment is maintained precisely so pool computation and
extension atoms see the vocabulary they expect.  Extension atoms
(FC[REG] constraints) are evaluated through their ``_evaluate`` hook and
poison caching for every node containing one: their semantics is opaque,
so no projection-purity assumption is made.

Semantics are identical to :func:`repro.fc.semantics.evaluate_naive`;
``tests/kernel/`` asserts agreement over enumerated formula/word grids.
"""

from __future__ import annotations

from functools import lru_cache

from repro import cachestats
from repro.fc.optimizer import formula_pool
from repro.fc.structures import WordStructure
from repro.fc.syntax import (
    And,
    Concat,
    ConcatChain,
    Const,
    Exists,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    Var,
    free_variables,
)
from repro.kernel.interning import intern_table

__all__ = ["CompiledEvaluator", "compiled_evaluator", "evaluate_compiled"]


class CompiledEvaluator:
    """Evaluator for one word structure, reusable across formulas."""

    def __init__(self, structure: WordStructure) -> None:
        self.structure = structure
        self.table = intern_table(structure.word, tuple(structure.alphabet))
        self._cat = self.table.cat
        self._epsilon_id = self.table.id_of[""]
        #: id(node) → {sorted free-var id projection → bool}
        self._cache: dict = {}
        #: id(node) → sorted free-variable tuple (projection domain)
        self._free: dict = {}
        #: id(node) → is it free of extension atoms (hence cacheable)?
        self._pure: dict = {}
        #: id(node) → node: keeps every keyed node alive so CPython can
        #: never recycle an id that the maps above still reference.
        self._pin: dict = {}

    # -- helpers -------------------------------------------------------------

    def _free_of(self, node: Formula) -> tuple:
        key = id(node)
        cached = self._free.get(key)
        if cached is None:
            # The id-keyed memos below are grow-only with values that are
            # pure functions of the pinned node: concurrent daemon threads
            # write identical entries, and each dict item assignment is
            # atomic under the GIL.  Pin before value so a reader never
            # sees a key whose node could have been recycled.
            # repro-lint: allow[concurrency.shared-state-race] idempotent memo
            self._pin[key] = node
            cached = tuple(
                sorted(free_variables(node), key=lambda v: v.name)
            )
            # repro-lint: allow[concurrency.shared-state-race] idempotent memo
            self._free[key] = cached
        return cached

    def _pure_of(self, node: Formula) -> bool:
        key = id(node)
        cached = self._pure.get(key)
        if cached is None:
            # Same grow-only idempotent-memo discipline as _free_of.
            # repro-lint: allow[concurrency.shared-state-race] idempotent memo
            self._pin[key] = node
            if isinstance(node, (Concat, ConcatChain)):
                cached = True
            elif isinstance(node, (Not, Exists, Forall)):
                cached = self._pure_of(node.inner)
            elif isinstance(node, (And, Or, Implies)):
                cached = self._pure_of(node.left) and self._pure_of(node.right)
            else:
                cached = False  # extension atom: opaque semantics
            # repro-lint: allow[concurrency.shared-state-race] idempotent memo
            self._pure[key] = cached
        return cached

    def _term_id(self, ids: dict, term) -> int:
        """Term value as an id (constants may be ⊥ → 0)."""
        if isinstance(term, Const):
            symbol = term.symbol
            if symbol == "":
                return self._epsilon_id
            return self.table.id_of.get(symbol, 0)
        try:
            return ids[term]
        except KeyError:
            raise ValueError(
                f"free variable {term!r} has no value in the assignment"
            ) from None

    # -- evaluation ----------------------------------------------------------

    def evaluate(self, formula: Formula, assignment: dict) -> bool:
        """Decide ``(𝔄, σ) ⊨ φ`` for a string-valued assignment σ.

        ``assignment`` is not mutated; values must be factors of the word.
        """
        ids = {}
        strings = {}
        for variable, value in assignment.items():
            ids[variable] = self.table.id_of[value]
            strings[variable] = value
        return self._eval(formula, ids, strings)

    def _eval(self, formula: Formula, ids: dict, strings: dict) -> bool:
        if isinstance(formula, Concat):
            x = self._term_id(ids, formula.x)
            y = self._term_id(ids, formula.y)
            z = self._term_id(ids, formula.z)
            return self._cat[y][z] == x  # cat never yields 0 or hits ⊥ rows
        if isinstance(formula, ConcatChain):
            head = self._term_id(ids, formula.x)
            if head == 0:
                return False
            joined = self._epsilon_id
            for part in formula.parts:
                value = self._term_id(ids, part)
                if value == 0:
                    return False
                joined = self._cat[joined][value]
                if joined == -1:
                    return False  # not a factor ⟹ not a prefix of head
            return joined == head
        if isinstance(formula, Not):
            return not self._eval(formula.inner, ids, strings)
        if isinstance(formula, And):
            return self._eval(formula.left, ids, strings) and self._eval(
                formula.right, ids, strings
            )
        if isinstance(formula, Or):
            return self._eval(formula.left, ids, strings) or self._eval(
                formula.right, ids, strings
            )
        if isinstance(formula, Implies):
            return (not self._eval(formula.left, ids, strings)) or self._eval(
                formula.right, ids, strings
            )
        if isinstance(formula, (Exists, Forall)):
            return self._quantifier(formula, ids, strings)
        custom = getattr(formula, "_evaluate", None)
        if custom is not None:
            return custom(self.structure, strings)
        raise TypeError(f"unknown formula node: {formula!r}")

    def _quantifier(self, formula: Formula, ids: dict, strings: dict) -> bool:
        variable = formula.var
        shadowed_id = ids.pop(variable, None)
        shadowed_string = strings.pop(variable, None)
        want = isinstance(formula, Exists)

        pure = self._pure_of(formula)
        projections = None
        projection = None
        result = None
        if pure:
            node_key = id(formula)
            projections = self._cache.get(node_key)
            if projections is None:
                # Two threads may both install a fresh projection dict; the
                # loser's entries are recomputed later with equal values.
                # repro-lint: allow[concurrency.shared-state-race] idempotent memo
                self._pin[node_key] = formula
                # repro-lint: allow[concurrency.shared-state-race] idempotent memo
                projections = self._cache[node_key] = {}
            projection = tuple(ids[v] for v in self._free_of(formula))
            result = projections.get(projection)

        if result is None:
            pool = formula_pool(
                self.structure, strings, variable, formula.inner, want
            )
            if pool is None:
                scan = range(1, self.table.n_factors + 1)
            else:
                # Sorting ids restores the length-sorted scan order.
                scan = sorted(self.table.id_of[f] for f in pool)
            elements = self.table.elements
            result = not want
            for factor_id in scan:
                ids[variable] = factor_id
                strings[variable] = elements[factor_id]
                if self._eval(formula.inner, ids, strings) == want:
                    result = want
                    break
            ids.pop(variable, None)
            strings.pop(variable, None)
            if pure:
                projections[projection] = result

        if shadowed_id is not None:
            ids[variable] = shadowed_id
            strings[variable] = shadowed_string
        return result


@lru_cache(maxsize=256)
def compiled_evaluator(structure: WordStructure) -> CompiledEvaluator:
    """The shared evaluator for ``structure`` (projection cache included)."""
    return CompiledEvaluator(structure)


cachestats.register("fc.compiled.evaluator", compiled_evaluator)


def evaluate_compiled(
    structure: WordStructure, formula: Formula, assignment: dict
) -> bool:
    """Kernel-path twin of :func:`repro.fc.semantics.evaluate`.

    Unlike ``evaluate`` the caller's ``assignment`` dict is never
    mutated.  Only plain :class:`WordStructure` instances are supported
    (restrictions are an EF-game construct and never model-checked).
    """
    return compiled_evaluator(structure).evaluate(formula, assignment)
