"""Closure operations on FC languages, including the Conclusions trick.

FC is closed under the Boolean operations (trivially — the connectives are
in the syntax), and FC[REG] is closed under intersection with regular
languages.  The paper's conclusion uses the latter to push
inexpressibility beyond bounded languages:

    L ∈ L(FC[REG])  ⟹  L ∩ R ∈ L(FC[REG])   for regular R,

so if ``L ∩ R`` is a known non-FC[REG] language (e.g. {w : |w|_a = |w|_b}
∩ a*b* = aⁿbⁿ), then L itself is not FC[REG]-definable.  This module
provides the closure constructions on sentences and the contrapositive
helper that packages the trick.
"""

from __future__ import annotations

from repro.fc.builders import phi_whole_word
from repro.fc.syntax import And, Exists, Formula, Not, Or, Var, free_variables
from repro.fcreg.constraints import in_regex
from repro.words.generators import words_up_to

__all__ = [
    "sentence_and",
    "sentence_or",
    "sentence_not",
    "intersect_with_regex",
    "RegularIntersectionArgument",
]


def _require_sentence(formula: Formula) -> None:
    stray = free_variables(formula)
    if stray:
        raise ValueError(
            f"expected a sentence; free variables {sorted(v.name for v in stray)}"
        )


def sentence_and(left: Formula, right: Formula) -> Formula:
    """L(φ∧ψ) = L(φ) ∩ L(ψ)."""
    _require_sentence(left)
    _require_sentence(right)
    return And(left, right)


def sentence_or(left: Formula, right: Formula) -> Formula:
    """L(φ∨ψ) = L(φ) ∪ L(ψ)."""
    _require_sentence(left)
    _require_sentence(right)
    return Or(left, right)


def sentence_not(sentence: Formula) -> Formula:
    """L(¬φ) = Σ* \\ L(φ) — the complementation closure Theorem 5.8's
    complement remark relies on."""
    _require_sentence(sentence)
    return Not(sentence)


def intersect_with_regex(sentence: Formula, pattern: str) -> Formula:
    """The FC[REG] sentence for ``L(φ) ∩ L(γ)``.

    Adds ``∃u: φ_w(u) ∧ (u ∈̇ γ)`` — the whole input word lies in L(γ) —
    conjunctively.  The result is FC[REG] even when φ is plain FC.
    """
    _require_sentence(sentence)
    u = Var("𝔲∩")
    membership = Exists(u, And(phi_whole_word(u), in_regex(u, pattern)))
    return And(sentence, membership)


class RegularIntersectionArgument:
    """The Conclusions-section inexpressibility argument, packaged.

    Given a candidate language L (as a membership oracle), a regular
    filter γ, and a *known non-FC[REG]* target T: if ``L ∩ L(γ) = T`` on
    arbitrarily large finite slices, then L ∉ L(FC[REG]) — because
    FC[REG] is closed under ∩ with regular languages and T is outside.

    ``check(max_length)`` verifies the slice identity; the logical step is
    recorded as the argument's conclusion string.
    """

    def __init__(
        self,
        language_name: str,
        language_oracle,
        regex_pattern: str,
        target_name: str,
        target_oracle,
        alphabet: str = "ab",
    ):
        self.language_name = language_name
        self.language_oracle = language_oracle
        self.regex_pattern = regex_pattern
        self.target_name = target_name
        self.target_oracle = target_oracle
        self.alphabet = alphabet
        from repro.fcreg.automata import compile_regex
        from repro.fcreg.regex import parse_regex

        self._dfa = compile_regex(parse_regex(regex_pattern))

    def check(self, max_length: int) -> tuple[bool, str | None]:
        """Verify ``L ∩ L(γ) = T`` on Σ^{≤max_length}."""
        for word in words_up_to(self.alphabet, max_length):
            in_intersection = (
                word in self.language_oracle and self._dfa.accepts(word)
            )
            if in_intersection != (word in self.target_oracle):
                return False, word
        return True, None

    @property
    def conclusion(self) -> str:
        return (
            f"{self.language_name} ∩ {self.regex_pattern} = "
            f"{self.target_name}; {self.target_name} ∉ L(FC[REG]) and "
            f"FC[REG] is closed under regular intersection, hence "
            f"{self.language_name} ∉ L(FC[REG])"
        )
