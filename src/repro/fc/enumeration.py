"""Structured pools of FC(k) sentences.

Ehrenfeucht's theorem for FC (Theorem 3.4) says ``𝔄_w ≡_k 𝔅_v`` iff the two
structures agree on *all* sentences of quantifier rank ≤ k.  Enumerating all
of FC(k) (even up to logical equivalence) is infeasible, but a large
*structured pool* of FC(k) sentences provides a strong necessary condition:
whenever the exact game solver reports ``w ≡_k v``, the two words must agree
on every pool sentence; whenever it reports ``w ≢_k v``, a pool sentence
often witnesses the difference.  Experiment E02 runs exactly this
cross-validation.

The pool for rank k consists of all prenex sentences ``Q₁x₁ … Q_kx_k θ``
where each ``Qᵢ ∈ {∃, ∀}`` and θ is drawn from a curated family of
quantifier-free bodies over the variables and the constants of the
alphabet (single atoms, their negations, and two-atom conjunctions /
disjunctions, deduplicated).
"""

from __future__ import annotations

from itertools import combinations, product
from typing import Iterator

from repro.fc.syntax import (
    And,
    Concat,
    Const,
    EPSILON,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
    Term,
    Var,
)

__all__ = ["atom_pool", "body_pool", "sentence_pool", "pool_size"]


def _terms(variables: list[Var], alphabet: str) -> list[Term]:
    terms: list[Term] = list(variables)
    terms.extend(Const(letter) for letter in alphabet)
    terms.append(EPSILON)
    return terms


def atom_pool(variables: list[Var], alphabet: str) -> list[Concat]:
    """All atoms ``(x ≐ y·z)`` over the given variables and constants,
    filtered to those that mention at least one variable (constant-only
    atoms have the same truth value in every structure that realises all
    constants, so they add nothing) and deduplicated."""
    terms = _terms(variables, alphabet)
    seen: set[Concat] = set()
    atoms: list[Concat] = []
    for x, y, z in product(terms, repeat=3):
        if not any(isinstance(t, Var) for t in (x, y, z)):
            continue
        atom = Concat(x, y, z)
        if atom not in seen:
            seen.add(atom)
            atoms.append(atom)
    return atoms


def body_pool(
    variables: list[Var], alphabet: str, max_atoms: int = 2
) -> Iterator[Formula]:
    """Yield quantifier-free bodies: literals, plus pairwise ∧ / ∨ of atoms.

    ``max_atoms`` currently supports 1 or 2; rank-k sentences built from
    these bodies already distinguish all the word pairs the experiments
    need, while keeping the pool around a thousand sentences.
    """
    atoms = atom_pool(variables, alphabet)
    for atom in atoms:
        yield atom
        yield Not(atom)
    if max_atoms >= 2:
        for left, right in combinations(atoms, 2):
            yield And(left, right)
            yield Or(left, Not(right))


def sentence_pool(
    k: int, alphabet: str, max_atoms: int = 2
) -> Iterator[Formula]:
    """Yield a structured pool of FC(k) sentences (quantifier rank exactly
    ``k`` for k ≥ 1; for ``k = 0`` only constant-free bodies would be
    closed, so the pool is empty).

    Bodies that do not use every quantified variable are skipped: they are
    equivalent to lower-rank sentences already covered by smaller k.
    """
    if k < 0:
        raise ValueError(f"negative rank: {k}")
    if k == 0:
        return
    variables = [Var(f"p{i}") for i in range(k)]
    needed = frozenset(variables)
    for body in body_pool(variables, alphabet, max_atoms):
        from repro.fc.syntax import free_variables

        if free_variables(body) != needed:
            continue
        for quantifier_choice in product((Exists, Forall), repeat=k):
            sentence: Formula = body
            for variable, quantifier in zip(
                reversed(variables), reversed(quantifier_choice)
            ):
                sentence = quantifier(variable, sentence)
            yield sentence


def pool_size(k: int, alphabet: str, max_atoms: int = 2) -> int:
    """Return the number of sentences :func:`sentence_pool` yields."""
    return sum(1 for _ in sentence_pool(k, alphabet, max_atoms))
