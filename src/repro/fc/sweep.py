"""Batched FC sentence evaluation over a word family (the sweep layer).

Membership sweeps — ``L(φ) ∩ Σ^{≤n}`` in E05, the E02 signature pools,
the Theorem 5.8 agreement checks — evaluate one *fixed* sentence on
thousands of words.  The per-word evaluator
(:class:`repro.fc.compiled.CompiledEvaluator`) re-derives everything per
word: free-variable sets, purity, candidate pools, regex/oracle atom
truth.  Profiling the E05 grid put ~65% of the wall time in
re-computing :func:`repro.fc.optimizer.formula_pool` from scratch at
every quantifier entry of every word.

:class:`SweepProgram` compiles the sentence **once per family** into a
plan tree and shares everything that is word-independent:

* **Pool plans** — which atoms constrain each quantified variable, with
  which terms known/masked, is static; only the known *values* vary.
  The ``formula_pool`` recursion is compiled away into a small
  intersection/union tree over per-atom candidate generators.
* **Global candidate memos** — candidates derived from a known head
  value are substrings of that value, hence factors of *any* word the
  value occurs in: chain decompositions, prefix/suffix cuts and halves
  are memoised per value across the whole family (gid-keyed via
  :class:`repro.kernel.sweep.SweepFamily`).  Only whole-word scans
  (``factors with prefix p``) stay per-word.
* **Assignment-pure extension atoms** — atoms declaring
  ``_assignment_pure`` (their truth depends only on the values of their
  free variables: regex constraints on variables, the Theorem 5.8
  oracle atoms) are memoised per value tuple across the family, so a
  DFA runs once per distinct factor instead of once per enumerated
  tuple.  A sentence with any *non*-pure extension atom makes
  ``compile`` return ``None`` and the caller falls back to the exact
  per-word path.
* **Conjunct ordering** — flattened ∧/∨ chains are evaluated cheapest
  subformula first (evaluation is total, so the boolean result is
  order-independent); φ_fib's ``φ_w(u) ∧ chain ∧ …`` blocks stop
  paying the quantified whole-word check on every candidate that a
  one-probe chain atom already refutes.

Truth of a quantifier-free pure subformula depends only on the gid
assignment, not the word: values are factors, so ``x = y·z`` over
factors holds in the structure iff it holds as a string equation.
Quantified subformulas *do* depend on the word (scans range over its
factors), so projection caches stay per word, exactly as in the
compiled evaluator.

Candidate pools, span/chain/scan memo entries and quantifier
restrictions are all **dense bitsets over the family's id space**
(big-int masks, :mod:`repro.kernel.bitset`): pool ∧/∨ chains are
single C-level ``&``/``|`` operations, and the PR-4 soundness
restriction "quantifiers range over the word's factors" is one
``pool & table.mask``.  The ``sweep_bitset_ops`` counter measures the
mask algebra per word.

Beyond membership, a compiled program with free variables emits the
full satisfying-assignment **relation** per word
(:meth:`SweepProgram.relation`): free variables are scanned outermost,
in sorted-name order, each restricted by a statically compiled pool
(later free variables masked, exactly like a quantifier prefix), and
rows are slot-indexed gid tuples in the family's deterministic
``(len, text)`` enumeration order — the same order the per-word
oracle (:func:`repro.fc.semantics.satisfying_assignments`) yields, so
the two paths are comparable row-for-row, not just as sets.

Differential tests (``tests/fc/test_sweep_differential.py``,
``tests/fc/test_relation_sweep.py``) prove the batched results equal
per-word ``defines_language_member`` / ``satisfying_assignments`` over
full small grids and seeded longer samples, including regex- and
oracle-bearing sentences.
"""

from __future__ import annotations

from repro.fc.syntax import (
    And,
    Concat,
    ConcatChain,
    Const,
    Exists,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    Var,
    free_variables,
)
from repro.kernel import stats
from repro.kernel.bitset import iter_ids
from repro.kernel.sweep import SweepFamily, SweepTable

__all__ = ["LanguageSweep", "SweepProgram"]


class _Unsupported(Exception):
    """Sentence outside the sweep fragment (non-pure extension atom)."""


class _WordView:
    """Minimal structure stand-in passed to assignment-pure extension
    atoms.

    A pure atom's truth is a function of its assigned values alone —
    that is exactly what makes the family-wide ``_filter_memo`` /
    ``_ext_memo`` sound.  ``constant`` is word-dependent (⊥ when the
    letter is absent), so an atom consulting it violates the purity
    contract and would silently poison cross-word memo entries; it
    raises instead, turning the contract violation into a loud failure.
    """

    __slots__ = ("word", "alphabet")

    def __init__(self, word: str, alphabet: str) -> None:
        self.word = word
        self.alphabet = alphabet

    def constant(self, symbol: str):
        raise TypeError(
            f"assignment-pure extension atoms must not read structure "
            f"constants (constant({symbol!r}) is word-dependent, but the "
            f"atom's result is memoised family-wide)"
        )


# Plan-node kinds.
_CONCAT, _CHAIN, _NOT, _AND, _OR, _IMPLIES, _QUANT, _EXT = range(8)


class _Plan:
    """One compiled formula node (a parallel tree over the sentence)."""

    __slots__ = (
        "kind",
        "node",
        "children",
        "cost",
        "codes",
        "var_slot",
        "want",
        "free",
        "pool",
        "cache_index",
        "ext_index",
        "ext_free",
    )

    def __init__(self, kind: int, node: Formula) -> None:
        self.kind = kind
        self.node = node
        self.children: tuple = ()
        self.cost = 1
        #: term codes: gid for a Const (≥ 0), ``-(slot + 1)`` for a Var.
        self.codes: tuple = ()
        self.var_slot = -1  # repro-lint: domain[slot] the quantified variable's environment slot
        self.want = True
        #: environment slots of the node's free variables (projection).
        self.free: tuple = ()  # repro-lint: domain[iter[slot]]
        self.pool = None
        self.cache_index = -1
        self.ext_index = -1
        self.ext_free: tuple = ()


# Pool-expression nodes.  A pool expression evaluates to a bitset of
# gids (a big-int mask, :mod:`repro.kernel.bitset`) that is guaranteed
# to contain every value of the pooled variable under which the guarded
# subformula can reach the decisive truth value (the formula_pool
# soundness invariant); ``None`` pool plans mean "unconstrained — scan
# the word's universe".


class _PoolAtom:
    """Candidate generator from one Concat/ConcatChain atom.

    ``case`` selects the specialised generator (which terms are known is
    static); ``refs`` holds per-term value sources: an int gid ≥ 0 for
    constants (resolved globally, *without* the per-word ⊥ check — the
    quantifier scan intersects the pool with the word's factor universe,
    which subsumes it), ``-(slot + 1)`` for outer-bound variables,
    ``None`` for the pooled/masked unknowns.
    """

    __slots__ = ("case", "refs", "atom", "var", "index")

    def __init__(self, case: str, refs: tuple, atom, var, index: int) -> None:
        self.case = case
        self.refs = refs
        self.atom = atom
        self.var = var
        self.index = index


class _PoolFilter:
    """An assignment-pure unary extension atom used as a membership
    filter (memoised per gid family-wide)."""

    __slots__ = ("atom", "var", "index")

    def __init__(self, atom, var, index: int) -> None:
        self.atom = atom
        self.var = var
        self.index = index


class _PoolInter:
    __slots__ = ("sets", "filters")

    def __init__(self, sets: tuple, filters: tuple) -> None:
        self.sets = sets
        self.filters = filters


class _PoolUnion:
    __slots__ = ("children",)

    def __init__(self, children: tuple) -> None:
        self.children = children


class _Ctx:
    """Per-word evaluation state."""

    __slots__ = ("table", "env", "caches", "scan_memo", "view", "bitops")

    def __init__(
        self, table: SweepTable, n_slots: int, n_caches: int, view
    ) -> None:
        self.table = table
        #: slot → gid of the current (partial) assignment.
        self.env: list = [None] * n_slots  # repro-lint: domain[map[slot, intern:sweep]]
        #: per-quantifier projection caches (projection tuple → bool).
        self.caches = [dict() for _ in range(n_caches)]
        #: per-word memo for word-dependent candidate scans.
        self.scan_memo: dict = {}
        self.view = view
        #: mask operations spent on this word (flushed to
        #: ``sweep_bitset_ops`` once per evaluate/relation call — one
        #: locked counter update per word, not per op).
        self.bitops = 0


class SweepProgram:
    """One formula compiled against one :class:`SweepFamily`.

    Sentences answer membership via :meth:`evaluate`; open formulas
    emit their satisfying-assignment relation via :meth:`relation`.
    """

    def __init__(
        self, sentence: Formula, family: SweepFamily, alphabet: str
    ) -> None:
        self.family = family
        self.alphabet = alphabet
        self._quant_count = 0
        self._pool_index = 0
        self._ext_count = 0
        #: Var → environment-slot index.  Rebinding a variable reuses
        #: its slot; the quantifier's save/restore gives shadowing the
        #: same semantics the assignment dict had.
        self._slot_of: dict = {}  # repro-lint: domain[map[plain, slot]]
        #: family-global memos (all gid-keyed, hence word-independent).
        self._span_memo: dict = {}
        self._chain_memo: dict = {}
        self._filter_memo: dict = {}
        self._ext_memo: dict = {}
        self.root = self._compile(sentence)
        #: free variables in sorted-name order — the relation's column
        #: order, matching ``satisfying_assignments``' enumeration.
        self.free_vars = tuple(
            sorted(free_variables(sentence), key=lambda v: v.name)
        )
        self._free_slots = tuple(self._slot(v) for v in self.free_vars)  # repro-lint: domain[iter[slot]]
        #: per-free-var candidate pools for the relation scan: variable
        #: i is scanned with variables i+1.. still unknown, so they are
        #: masked — the same known/masked discipline as a quantifier
        #: prefix, reusing the formula_pool soundness invariant with
        #: target=True (the pool contains every value under which the
        #: formula can still be satisfied).
        self._free_pools = tuple(
            self._compile_pool(
                sentence, var, True, frozenset(self.free_vars[i + 1 :])
            )
            for i, var in enumerate(self.free_vars)
        )
        self._n_slots = len(self._slot_of)
        self._eps = family.epsilon_id  # repro-lint: domain[intern:sweep]

    # -- compilation ---------------------------------------------------------

    # repro-lint: domain[returns=slot] the slot mint: every environment index originates here
    def _slot(self, var: Var) -> int:
        return self._slot_of.setdefault(var, len(self._slot_of))

    def _code(self, term) -> int:
        """Term code: Const → its gid (≥ 0), Var → ``-(slot + 1)``."""
        if isinstance(term, Const):
            return self.family.intern(term.symbol)
        return -1 - self._slot(term)

    def _compile(self, node: Formula) -> _Plan:
        if isinstance(node, Concat):
            plan = _Plan(_CONCAT, node)
            terms = (node.x, node.y, node.z)
            self._intern_consts(terms)
            plan.codes = tuple(self._code(t) for t in terms)
            plan.cost = 1
            return plan
        if isinstance(node, ConcatChain):
            plan = _Plan(_CHAIN, node)
            terms = (node.x, *node.parts)
            self._intern_consts(terms)
            plan.codes = tuple(self._code(t) for t in terms)
            plan.cost = len(node.parts)
            return plan
        if isinstance(node, Not):
            plan = _Plan(_NOT, node)
            child = self._compile(node.inner)
            plan.children = (child,)
            plan.cost = child.cost
            return plan
        if isinstance(node, (And, Or)):
            plan = _Plan(_AND if isinstance(node, And) else _OR, node)
            flat: list[_Plan] = []
            self._flatten(node, type(node), flat)
            # Cheapest conjunct/disjunct first: evaluation is total, so
            # short-circuit order cannot change the boolean result, and
            # stable sort keeps the source order among equals.
            flat.sort(key=lambda p: p.cost)
            plan.children = tuple(flat)
            plan.cost = sum(p.cost for p in flat)
            return plan
        if isinstance(node, Implies):
            plan = _Plan(_IMPLIES, node)
            plan.children = (
                self._compile(node.left),
                self._compile(node.right),
            )
            plan.cost = plan.children[0].cost + plan.children[1].cost
            return plan
        if isinstance(node, (Exists, Forall)):
            plan = _Plan(_QUANT, node)
            inner = self._compile(node.inner)
            plan.children = (inner,)
            plan.var_slot = self._slot(node.var)
            plan.want = isinstance(node, Exists)
            plan.free = tuple(
                self._slot(v)
                for v in sorted(free_variables(node), key=lambda v: v.name)
            )
            plan.cache_index = self._quant_count
            self._quant_count += 1
            plan.pool = self._compile_pool(
                node.inner, node.var, plan.want, frozenset()
            )
            plan.cost = 10 + 20 * inner.cost
            return plan
        # Extension atom: admitted only when assignment-pure, i.e. its
        # truth is a function of its free-variable values alone — the
        # family-wide value-tuple memo is sound exactly then.
        if getattr(node, "_evaluate", None) is not None:
            if not getattr(node, "_assignment_pure", False):
                raise _Unsupported(f"extension atom {node!r} is not pure")
            plan = _Plan(_EXT, node)
            plan.ext_free = tuple(
                sorted(free_variables(node), key=lambda v: v.name)
            )
            plan.free = tuple(self._slot(v) for v in plan.ext_free)
            plan.ext_index = self._ext_count
            self._ext_count += 1
            plan.cost = 5
            return plan
        raise _Unsupported(f"unknown formula node: {node!r}")

    def _flatten(self, node: Formula, op: type, out: list) -> None:
        if isinstance(node, op):
            self._flatten(node.left, op, out)
            self._flatten(node.right, op, out)
        else:
            out.append(self._compile(node))

    def _intern_consts(self, terms: tuple) -> None:
        for term in terms:
            if isinstance(term, Const):
                if term.symbol != "" and term.symbol not in self.alphabet:
                    # Fall back so the per-word path raises the same
                    # ValueError the structure would.
                    raise _Unsupported(f"constant {term.symbol!r} ∉ Σ")
                self.family.intern(term.symbol)

    # -- pool compilation (static formula_pool) ------------------------------

    def _compile_pool(
        self, node: Formula, var: Var, target: bool, masked: frozenset
    ):
        """Static twin of :func:`repro.fc.optimizer.formula_pool`: the
        recursion over the formula happens here, once; what remains for
        runtime is per-atom candidate generation."""
        if isinstance(node, (Concat, ConcatChain)):
            if not target:
                return None
            return self._compile_pool_atom(node, var, masked)
        if isinstance(node, Not):
            return self._compile_pool(node.inner, var, not target, masked)
        if isinstance(node, (And, Or, Implies)):
            if isinstance(node, And):
                pairs = ((node.left, target), (node.right, target))
                want_inter = target
            elif isinstance(node, Or):
                pairs = ((node.left, target), (node.right, target))
                want_inter = not target
            else:  # (P → Q) ≡ ¬P ∨ Q
                pairs = ((node.left, not target), (node.right, target))
                want_inter = not target
            children = [
                self._compile_pool(sub, var, sub_target, masked)
                for sub, sub_target in pairs
            ]
            if want_inter:
                kept = [c for c in children if c is not None]
                return self._make_inter(kept)
            if any(c is None for c in children):
                return None
            return _PoolUnion(tuple(children))
        if isinstance(node, (Exists, Forall)):
            if node.var == var:
                # Rebinding: every atom below sees var as masked, so the
                # whole subtree is unconstraining.
                return None
            return self._compile_pool(
                node.inner, var, target, masked | {node.var}
            )
        # Extension atom: contributes only as a truth filter, mirroring
        # the _candidates hook (unary on the pooled variable, positive
        # polarity).
        if (
            target
            and getattr(node, "_candidates", None) is not None
            and getattr(node, "_assignment_pure", False)
        ):
            free = free_variables(node)
            if free == frozenset((var,)):
                index = self._pool_index
                self._pool_index += 1
                return _PoolFilter(node, var, index)
        return None

    def _make_inter(self, children: list):
        if not children:
            return None
        if len(children) == 1:
            return children[0]
        sets = tuple(c for c in children if not isinstance(c, _PoolFilter))
        filters = tuple(c for c in children if isinstance(c, _PoolFilter))
        return _PoolInter(sets, filters)

    def _compile_pool_atom(self, atom, var: Var, masked: frozenset):
        """Pick the specialised candidate case for one atom; ``None``
        when the atom cannot constrain ``var`` (matching the dynamic
        logic of ``_atom_candidates``/``_chain_candidates``)."""

        def ref(term):
            """Value source for a term: gid ≥ 0 (Const), ``-(slot+1)``
            (outer-bound Var), or None (the pooled variable / a masked
            inner variable)."""
            if isinstance(term, Const):
                return self.family.intern(term.symbol)
            if term == var or term in masked:
                return None
            return -1 - self._slot(term)

        index = self._pool_index
        self._pool_index += 1
        if isinstance(atom, Concat):
            terms = (atom.x, atom.y, atom.z)
            if var not in terms:
                return None
            in_x, in_y, in_z = (t == var for t in terms)
            x_ref, y_ref, z_ref = (ref(t) for t in terms)
            if in_x and not in_y and not in_z:
                if y_ref is not None and z_ref is not None:
                    return _PoolAtom("xc", (y_ref, z_ref), atom, var, index)
                if y_ref is not None:
                    return _PoolAtom("xp", (y_ref,), atom, var, index)
                if z_ref is not None:
                    return _PoolAtom("xs", (z_ref,), atom, var, index)
                return None
            if in_y or in_z:
                if x_ref is None:
                    return None  # includes the in_x-and-in_y/z mixes
                if in_y and in_z:
                    return _PoolAtom("half", (x_ref,), atom, var, index)
                if in_y:
                    if z_ref is not None:
                        return _PoolAtom(
                            "ycut", (x_ref, z_ref), atom, var, index
                        )
                    return _PoolAtom("yall", (x_ref,), atom, var, index)
                if y_ref is not None:
                    return _PoolAtom("zcut", (x_ref, y_ref), atom, var, index)
                return _PoolAtom("zall", (x_ref,), atom, var, index)
            return None
        # ConcatChain.
        if var == atom.x:
            refs = tuple(ref(part) for part in atom.parts)
            if any(r is None for r in refs):
                return None
            return _PoolAtom("fold", refs, atom, var, index)
        if var not in atom.parts:
            return None
        head_ref = ref(atom.x)
        if head_ref is None:
            return None
        part_refs = tuple(
            None if part == var else ref(part) for part in atom.parts
        )
        return _PoolAtom("bt", (head_ref, *part_refs), atom, var, index)

    # -- pool evaluation -----------------------------------------------------

    # repro-lint: domain[returns=intern:sweep] the declared term-code → gid translator
    def _resolve(self, ref: int, ctx: _Ctx) -> int:
        """Runtime value of a compiled ref (gid or outer-bound slot)."""
        if ref >= 0:
            return ref
        # repro-lint: allow[domains.slot-discipline] term codes encode Var slots as -(slot+1); this is the declared decoding
        return ctx.env[-1 - ref]

    # repro-lint: domain[returns=bitset-pool:sweep] pools may contain gids that are not factors of the current word — intersect with ctx.table.mask before witnessing
    def _pool_eval(self, expr, ctx: _Ctx) -> int:
        """Evaluate a pool expression to a gid bitset (big-int mask)."""
        if isinstance(expr, _PoolAtom):
            return self._pool_atom_eval(expr, ctx)
        if isinstance(expr, _PoolInter):
            pool = None
            for child in expr.sets:
                candidates = self._pool_eval(child, ctx)
                if pool is None:
                    pool = candidates
                else:
                    pool &= candidates
                    ctx.bitops += 1
                if pool is not None and not pool:
                    return 0
            for flt in expr.filters:
                if pool is None:
                    source = ctx.table.universe
                else:
                    # repro-lint: allow[domains.universe-escape] filter refinement inside the pool evaluator: the result stays a pool, and every caller intersects with the member mask before witnessing
                    source = iter_ids(pool)
                acc = 0
                for gid in source:
                    if self._filter_ok(flt, gid, ctx):
                        acc |= 1 << gid
                ctx.bitops += 1
                pool = acc
                if not pool:
                    return 0
            return pool
        if isinstance(expr, _PoolUnion):
            merged = 0
            for child in expr.children:
                merged |= self._pool_eval(child, ctx)
                ctx.bitops += 1
            return merged
        # _PoolFilter standing alone: filter the word's universe.
        acc = 0
        for gid in ctx.table.universe:
            if self._filter_ok(expr, gid, ctx):
                acc |= 1 << gid
        ctx.bitops += 1
        return acc

    # repro-lint: domain[gid=intern:sweep] filters test one candidate gid at a time
    def _filter_ok(self, flt: _PoolFilter, gid: int, ctx: _Ctx) -> bool:
        key = (flt.index, gid)
        cached = self._filter_memo.get(key)
        if cached is None:
            cached = flt.atom._evaluate(
                # repro-lint: allow[effects.memo-key-completeness] ctx.view only reaches _assignment_pure atoms, whose results do not depend on it (enforced by effects.assignment-purity)
                ctx.view, {flt.var: self.family.strings[gid]}
            )
            self._filter_memo[key] = cached
        return cached

    # repro-lint: domain[returns=bitset-pool:sweep] atom pools are minted over the family's id space, unrestricted by the current word
    def _pool_atom_eval(self, pa: _PoolAtom, ctx: _Ctx) -> int:
        family = self.family
        texts = family.strings
        case = pa.case
        if case == "xc":
            combined = family.cat(
                self._resolve(pa.refs[0], ctx), self._resolve(pa.refs[1], ctx)
            )
            if combined in ctx.table.members:
                return 1 << combined
            return 0
        if case == "fold":
            joined = family.epsilon_id
            for ref in pa.refs:
                joined = family.cat(joined, self._resolve(ref, ctx))
            if joined in ctx.table.members:
                return 1 << joined
            return 0
        if case in ("xp", "xs"):
            # Whole-word scans are the only word-dependent candidates:
            # memoised per word (ctx), keyed by the known value.
            value = self._resolve(pa.refs[0], ctx)
            key = (case, value)
            cached = ctx.scan_memo.get(key)
            if cached is None:
                cached = self._word_scan(case, texts[value], ctx)
                ctx.scan_memo[key] = cached
            return cached
        if case == "bt":
            env = ctx.env
            head = self._resolve(pa.refs[0], ctx)
            knowns = tuple(
                # repro-lint: allow[domains.slot-discipline] inlined term-code decoding (see _resolve), kept local to preserve the memo-key fast path
                ref if ref is None or ref >= 0 else env[-1 - ref]
                for ref in pa.refs[1:]
            )
            key = (pa.index, head, knowns)
            cached = self._chain_memo.get(key)
            if cached is None:
                cached = self._chain_backtrack(pa, head, knowns)
                self._chain_memo[key] = cached
            return cached
        # Span cases: substrings of one known value — word-independent.
        values = tuple(self._resolve(ref, ctx) for ref in pa.refs)
        key = (case, *values)
        cached = self._span_memo.get(key)
        if cached is None:
            cached = self._span_candidates(case, values)
            self._span_memo[key] = cached
        return cached

    # repro-lint: domain[returns=bitset-pool:sweep] every candidate here IS a factor of the word, but the pool contract stays uniform: callers intersect before witnessing
    def _word_scan(self, case: str, value: str, ctx: _Ctx) -> int:
        """Factors of the current word with a given prefix/suffix."""
        word = ctx.table.word
        intern = self.family.intern
        found = 0
        start = word.find(value)
        if case == "xp":
            while start != -1:
                for end in range(start + len(value), len(word) + 1):
                    found |= 1 << intern(word[start:end])
                start = word.find(value, start + 1)
        else:
            while start != -1:
                end = start + len(value)
                for begin in range(0, start + 1):
                    found |= 1 << intern(word[begin:end])
                start = word.find(value, start + 1)
        return found

    # repro-lint: domain[returns=bitset-pool:sweep, values=iter[intern:sweep]] substring candidates of a known value may be absent from the current word's factor set
    def _span_candidates(self, case: str, values: tuple) -> int:
        """Candidates that are substrings of the known head value —
        factors of every word the value occurs in, hence family-global."""
        texts = self.family.strings
        intern = self.family.intern
        x_val = texts[values[0]]
        if case == "half":
            half, rem = divmod(len(x_val), 2)
            if rem == 0 and x_val[:half] == x_val[half:]:
                return 1 << intern(x_val[:half])
            return 0
        if case == "ycut":
            z_val = texts[values[1]]
            if x_val.endswith(z_val):
                return 1 << intern(x_val[: len(x_val) - len(z_val)])
            return 0
        if case == "zcut":
            y_val = texts[values[1]]
            if x_val.startswith(y_val):
                return 1 << intern(x_val[len(y_val) :])
            return 0
        mask = 0
        if case == "yall":
            for i in range(len(x_val) + 1):
                mask |= 1 << intern(x_val[:i])
            return mask
        # "zall"
        for i in range(len(x_val) + 1):
            mask |= 1 << intern(x_val[i:])
        return mask

    # repro-lint: domain[returns=bitset-pool:sweep, head_gid=intern:sweep, knowns=iter[intern:sweep]] chain projections intern fresh decomposition parts on demand
    def _chain_backtrack(
        self, pa: _PoolAtom, head_gid: int, knowns: tuple
    ) -> int:
        """Project the head's chain decompositions onto the pooled
        variable (the port of ``_chain_candidates``, on the global id
        space)."""
        family = self.family
        head = family.strings[head_gid]
        parts = pa.atom.parts
        var = pa.var
        texts = family.strings
        values = [None if g is None else texts[g] for g in knowns]
        total = len(head)
        results: set[str] = set()

        def backtrack(index: int, pos: int, local: dict) -> None:
            if index == len(parts):
                if pos == total:
                    results.add(local[var])
                return
            value = values[index]
            t = parts[index]
            if value is None:
                value = local.get(t)
            if value is not None:
                if head.startswith(value, pos):
                    backtrack(index + 1, pos + len(value), local)
                return
            owned = t not in local
            for end in range(pos, total + 1):
                local[t] = head[pos:end]
                backtrack(index + 1, end, local)
            if owned:
                del local[t]

        backtrack(0, 0, {})
        mask = 0
        for s in results:
            mask |= 1 << family.intern(s)
        return mask

    # -- evaluation ----------------------------------------------------------

    def evaluate(self, table: SweepTable) -> bool:
        """Truth of the sentence on ``table``'s word."""
        if self.free_vars:
            raise ValueError(
                "evaluate() requires a sentence; open formulas emit "
                "their relation via relation()"
            )
        ctx = _Ctx(
            table,
            self._n_slots,
            self._quant_count,
            _WordView(table.word, self.alphabet),
        )
        result = self._eval(self.root, ctx)
        if ctx.bitops:
            stats.record("sweep_bitset_ops", ctx.bitops)
        return result

    # repro-lint: domain[returns=iter[map[slot, intern:sweep]]] rows are slot-indexed gid tuples; reindex them only through declared slot maps
    def relation(self, table: SweepTable) -> list:
        """The satisfying-assignment relation of the formula on
        ``table``'s word: slot-indexed gid tuples, one column per free
        variable in sorted-name order (``self.free_vars``).

        Rows come out in the deterministic nested ``(len, text)``
        enumeration order — variable 1 outermost — which is exactly the
        order the per-word oracle enumerates its (pool-sorted) factor
        candidates, so a sound pool makes the sweep's row sequence a
        pointwise match of the oracle's, enabling bit-identical
        artifact persistence.
        """
        ctx = _Ctx(
            table,
            self._n_slots,
            self._quant_count,
            _WordView(table.word, self.alphabet),
        )
        rows: list = []
        if not self.free_vars:
            if self._eval(self.root, ctx):
                rows.append(())
        else:
            self._relation_scan(0, ctx, rows)
        if ctx.bitops:
            stats.record("sweep_bitset_ops", ctx.bitops)
        if rows:
            stats.record("sweep_relation_rows", len(rows))
        return rows

    def _relation_scan(self, level: int, ctx: _Ctx, rows: list) -> None:
        """Scan free variable ``level`` over its pool ∩ factor universe,
        recursing to deeper columns; leaves evaluate the matrix."""
        slots = self._free_slots
        env = ctx.env
        if level == len(slots):
            if self._eval(self.root, ctx):
                rows.append(tuple(env[s] for s in slots))
            return
        table = ctx.table
        pool = self._free_pools[level]
        if pool is None:
            scan = table.universe
        else:
            # Same domain restriction as _quantifier: pools may contain
            # globally-resolved non-factors (absent-letter Consts).
            mask = self._pool_eval(pool, ctx) & table.mask
            ctx.bitops += 1
            if mask == table.mask:
                scan = table.universe
            else:
                scan = sorted(iter_ids(mask), key=self.family.sort_key)
        slot = slots[level]
        next_level = level + 1
        for gid in scan:
            env[slot] = gid
            self._relation_scan(next_level, ctx, rows)
        env[slot] = None

    # repro-lint: domain[returns=intern:sweep] term-code → gid translator for truth evaluation (None for ⊥)
    def _term_gid(self, code: int, ctx: _Ctx):
        """Truth-evaluation term value: gid, or ``None`` for a ⊥
        constant (a letter absent from the word).  Out-of-alphabet
        constants never compile, so every gid code here is ε or a
        letter of Σ."""
        if code < 0:
            # repro-lint: allow[domains.slot-discipline] term codes encode Var slots as -(slot+1); this is the declared decoding
            return ctx.env[-1 - code]
        if code == self._eps:
            return code
        return code if code in ctx.table.members else None

    def _eval(self, plan: _Plan, ctx: _Ctx) -> bool:
        kind = plan.kind
        if kind == _CONCAT:
            codes = plan.codes
            x = self._term_gid(codes[0], ctx)
            y = self._term_gid(codes[1], ctx)
            z = self._term_gid(codes[2], ctx)
            if x is None or y is None or z is None:
                return False
            # Values are factors of the word, so the string equation
            # x = y·z is exactly R∘ membership.
            return self.family.cat(y, z) == x
        if kind == _CHAIN:
            head = self._term_gid(plan.codes[0], ctx)
            if head is None:
                return False
            members = ctx.table.members
            cat = self.family.cat
            joined = self._eps
            for code in plan.codes[1:]:
                value = self._term_gid(code, ctx)
                if value is None:
                    return False
                joined = cat(joined, value)
                if joined not in members:
                    # A true chain's partial concatenations are prefixes
                    # of the (factor) head, hence factors: fail early.
                    return False
            return joined == head
        if kind == _AND:
            for child in plan.children:
                if not self._eval(child, ctx):
                    return False
            return True
        if kind == _OR:
            for child in plan.children:
                if self._eval(child, ctx):
                    return True
            return False
        if kind == _NOT:
            return not self._eval(plan.children[0], ctx)
        if kind == _IMPLIES:
            return (not self._eval(plan.children[0], ctx)) or self._eval(
                plan.children[1], ctx
            )
        if kind == _QUANT:
            return self._quantifier(plan, ctx)
        # _EXT: assignment-pure — memoised on the value projection.
        env = ctx.env
        projection = tuple(env[s] for s in plan.free)
        key = (plan.ext_index, projection)
        cached = self._ext_memo.get(key)
        if cached is None:
            texts = self.family.strings
            assignment = {
                v: texts[g] for v, g in zip(plan.ext_free, projection)
            }
            cached = plan.node._evaluate(ctx.view, assignment)
            self._ext_memo[key] = cached
        return cached

    def _quantifier(self, plan: _Plan, ctx: _Ctx) -> bool:
        env = ctx.env
        slot = plan.var_slot
        shadow = env[slot]

        cache = ctx.caches[plan.cache_index]
        projection = tuple(env[s] for s in plan.free)
        result = cache.get(projection)
        if result is None:
            env[slot] = None
            if plan.pool is None:
                scan = ctx.table.universe
            else:
                # Pool candidates are derived from *globally* resolved
                # values (Const gids, substrings of outer bindings) and
                # may fall outside this word's factor universe — e.g. a
                # Const head whose letter the word lacks (⊥ in the
                # per-word structure).  Quantifiers range over the
                # word's factors, so restrict to the domain here;
                # without this, assignment-pure extension atoms
                # (regex/oracle) can hold at non-domain values and flip
                # the verdict.
                mask = self._pool_eval(plan.pool, ctx) & ctx.table.mask
                ctx.bitops += 1
                if mask == ctx.table.mask:
                    # Unconstraining pool: the universe is already in
                    # (len, text) order — skip extraction and sort.
                    scan = ctx.table.universe
                else:
                    scan = sorted(iter_ids(mask), key=self.family.sort_key)
            want = plan.want
            inner = plan.children[0]
            result = not want
            for gid in scan:
                env[slot] = gid
                if self._eval(inner, ctx) == want:
                    result = want
                    break
            cache[projection] = result

        env[slot] = shadow
        return result


class LanguageSweep:
    """A shared id space for evaluating sentences over one alphabet's
    word family (one instance per sweep; multiple sentences may share
    it, as the E02 signature pool does)."""

    def __init__(self, alphabet: str) -> None:
        self.alphabet = alphabet
        self.family = SweepFamily(tuple(alphabet))

    def compile(self, sentence: Formula) -> "SweepProgram | None":
        """Compile a formula (closed for :meth:`SweepProgram.evaluate`,
        open for :meth:`SweepProgram.relation`), or ``None`` when it
        falls outside the sweep fragment (the caller then uses the
        per-word path)."""
        try:
            return SweepProgram(sentence, self.family, self.alphabet)
        except _Unsupported:
            return None

    def subtree(self, prefix: str):
        """A shard view over one prefix subtree of the enumeration tree.

        Compiled programs evaluate subtree tables exactly as whole-grid
        tables — the candidate pools, chain decompositions and filter
        memos all key on family-global ids, so shards of the same
        family share them (see :class:`repro.kernel.sweep.SweepSubtree`).
        """
        return self.family.subtree(prefix)
