"""The paper's concrete FC formulas, as reusable builders.

Every explicit formula appearing in the paper is constructed here:

* ``phi_whole_word(x)`` — Example 2.4's φ_w(x): σ(x) must be the input word
  (this also simulates the universe variable 𝔲 of the original FC);
* ``phi_ww`` — Example 2.4's sentence for {ww | w ∈ Σ*};
* ``phi_copy`` / ``phi_k_copies`` — R_copy and R_{k-copies};
* ``phi_no_cube`` — the introduction's cube-freeness sentence;
* ``phi_vbv`` — the quantifier-rank-5 sentence for {v·b·v} from the proof of
  Proposition 3.7 (≡_k is not a congruence);
* ``phi_fib`` — Proposition 4.1's sentence for L_fib (with the two short
  members added: the paper's φ_struc only captures n ≥ 2, see the
  docstring);
* ``phi_w_star`` — Lemma 5.4's commutation trick for ``w*``;
* assorted small helpers (equality to a fixed word, finite languages,
  prefix/suffix/factor predicates).
"""

from __future__ import annotations

from typing import Callable

from repro.fc.sugar import chain
from repro.fc.syntax import (
    And,
    Concat,
    Const,
    EPSILON,
    Exists,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    Term,
    Var,
    conjunction,
    disjunction,
    exists_many,
)

__all__ = [
    "PAPER_FORMULAS",
    "paper_formula",
    "phi_whole_word",
    "phi_ww",
    "phi_copy",
    "phi_k_copies",
    "phi_no_cube",
    "phi_vbv",
    "phi_fib",
    "phi_w_star",
    "phi_equals_word",
    "phi_in_finite_language",
    "phi_is_prefix",
    "phi_is_suffix",
    "phi_contains_letter",
    "phi_epsilon",
]


def phi_epsilon(x: Term) -> Formula:
    """``(x ≐ ε)`` — shorthand for ``(x ≐ ε·ε)`` as in the paper."""
    return Concat(x, EPSILON, EPSILON)


def phi_whole_word(x: Var) -> Formula:
    """Example 2.4's φ_w(x): holds iff σ(x) is the entire input word.

    ``¬∃z₁,z₂: ((z₁ ≐ z₂·x) ∨ (z₁ ≐ x·z₂)) ∧ ¬(z₂ ≐ ε)`` — no factor
    strictly extends σ(x) on either side, which over Facs(w) pins σ(x) = w.
    """
    z1, z2 = Var(f"_z1[{x.name}]"), Var(f"_z2[{x.name}]")
    extension = Or(Concat(z1, z2, x), Concat(z1, x, z2))
    return Not(
        Exists(z1, Exists(z2, And(extension, Not(phi_epsilon(z2)))))
    )


def phi_ww() -> Formula:
    """Example 2.4's φ_ww: the input word is a square ``w·w``."""
    x, y = Var("x"), Var("y")
    return Exists(x, Exists(y, And(phi_whole_word(x), Concat(x, y, y))))


def phi_copy(x: Var, y: Var) -> Formula:
    """``(x ≐ y·y)`` — defines R_copy = {(u,v) | u = vv} (Example 2.4)."""
    return Concat(x, y, y)


def phi_k_copies(x: Var, y: Var, k: int) -> Formula:
    """Defines R_{k-copies} = {(u,v) | u = v^k} (Example 2.4).

    ``k = 0`` gives ``(x ≐ ε)``; ``k = 1`` gives ``x ≐ y·ε``; larger ``k``
    chains fresh intermediates ``x ≐ y·t₁, t₁ ≐ y·t₂, …``.
    """
    if k < 0:
        raise ValueError(f"negative k: {k}")
    if k == 0:
        # x = ε and y arbitrary; (y ≐ y·ε) keeps y a free variable so the
        # formula's signature matches the binary relation it defines.
        return And(phi_epsilon(x), Concat(y, y, EPSILON))
    return chain(x, [y] * k)


def phi_no_cube() -> Formula:
    """The introduction's sentence: the input contains no cube ``u·u·u``.

    ``∀z: (¬(z ≐ ε) → ¬∃x,y: (x ≐ z·y) ∧ (y ≐ z·z))``.
    """
    x, y, z = Var("x"), Var("y"), Var("z")
    cube = Exists(x, Exists(y, And(Concat(x, z, y), Concat(y, z, z))))
    return Forall(z, Implies(Not(phi_epsilon(z)), Not(cube)))


def phi_vbv(separator: str = "b") -> Formula:
    """Proposition 3.7's sentence for ``{ v·b·v | v ∈ Σ* }`` (qr = 5).

    ``∃x,y,z: (y ≐ x·z) ∧ (z ≐ b·x) ∧ "y is the whole word"``.  This is the
    sentence witnessing that ≡_k is **not** a congruence: it separates
    ``aᵖ·b·aᵖ`` from ``a^q·b·aᵖ`` whenever p ≠ q.
    """
    x, y, z = Var("x"), Var("y"), Var("z")
    body = And(
        Concat(y, x, z),
        And(Concat(z, Const(separator), x), phi_whole_word(y)),
    )
    return exists_many([x, y, z], body)


def phi_equals_word(x: "Term | Var", word: str) -> Formula:
    """``σ(x) = word`` for a fixed word: desugars into binary atoms."""
    if word == "":
        return phi_epsilon(x if isinstance(x, (Var, Const)) else Var(str(x)))
    if len(word) == 1:
        return Concat(x, Const(word), EPSILON)
    return chain(x, [word])


def phi_in_finite_language(x: Var, words: list[str]) -> Formula:
    """``σ(x) ∈ words`` for a finite set of fixed words."""
    if not words:
        raise ValueError("finite language must be non-empty; use ¬(x ≐ x) instead")
    return disjunction([phi_equals_word(x, word) for word in words])


def phi_is_prefix(x: Var, of: Var) -> Formula:
    """``σ(x)`` is a prefix of ``σ(of)``: ``∃s: of ≐ x·s``."""
    s = Var(f"_pre[{x.name},{of.name}]")
    return Exists(s, Concat(of, x, s))


def phi_is_suffix(x: Var, of: Var) -> Formula:
    """``σ(x)`` is a suffix of ``σ(of)``: ``∃p: of ≐ p·x``."""
    p = Var(f"_suf[{x.name},{of.name}]")
    return Exists(p, Concat(of, p, x))


def phi_contains_letter(x: Var, letter: str) -> Formula:
    """φ_c(x) from the φ_fib proof: ``∃y,z: x ≐ y·c·z`` — σ(x) contains c."""
    y = Var(f"_cl[{x.name}]")
    z = Var(f"_cr[{x.name}]")
    return Exists(y, Exists(z, chain(x, [y, letter, z])))


def phi_w_star(x: Var, word: str) -> Formula:
    """Lemma 5.4's FC definition of ``σ(x) ∈ word*`` via commutation.

    ``(x ≐ ε) ∨ ∃z: (x ≐ word·z) ∧ (x ≐ z·word)``.  By Lothaire 1.3.2,
    ``word·z = z·word`` forces ``x`` to be a power of a common root, hence a
    power of ``word`` (by the length argument in the claim's proof).
    """
    if word == "":
        return phi_epsilon(x)
    z = Var(f"_star[{x.name}]")
    left = chain(x, [word, z])
    right = chain(x, [z, word])
    return Or(phi_epsilon(x), Exists(z, And(left, right)))


def phi_fib(separator: str = "c") -> Formula:
    """Proposition 4.1's sentence φ_fib with ``L(φ_fib) = L_fib``.

    L_fib = { c F₀ c F₁ c ⋯ c Fₙ c | n ∈ ℕ } over Σ = {a, b, c}.  Following
    the appendix proof:

    * φ_struc forces the shape ``c·a·c·ab·c·({a,b}⁺ c)⁺`` (whole word starts
      ``cacabc``, ends with c, and ``cc`` never occurs);
    * the ∀-part forces every factor ``c y₁ c y₂ c y₃ c`` with c-free yᵢ to
      satisfy ``y₃ ≐ y₂·y₁`` — the Fibonacci recursion, with the universal
      quantifier simulating recursion.

    The appendix's φ_struc only matches members with n ≥ 2 blocks after
    ``cacabc``; the two shortest members ``cac`` (n = 0) and ``cacabc``
    (n = 1) are added as explicit disjuncts so that L(φ_fib) equals L_fib
    exactly (a small completion of the paper's construction, validated by
    experiment E05).
    """
    c = separator
    u, x1, x2 = Var("𝔲"), Var("x1"), Var("x2")

    base_n0 = Exists(u, And(phi_whole_word(u), phi_equals_word(u, f"{c}a{c}")))
    base_n1 = Exists(
        u, And(phi_whole_word(u), phi_equals_word(u, f"{c}a{c}ab{c}"))
    )

    no_cc = Not(Exists(x2, chain(x2, [c, c])))
    shape = chain(u, [f"{c}a{c}ab{c}", x1, c])
    phi_struc = Exists(u, Exists(x1, And(phi_whole_word(u), And(shape, no_cc))))

    x = Var("x")
    y1, y2, y3 = Var("y1"), Var("y2"), Var("y3")
    window = chain(x, [c, y1, c, y2, c, y3, c])
    consequent = disjunction(
        [
            phi_contains_letter(y1, c),
            phi_contains_letter(y2, c),
            phi_contains_letter(y3, c),
            Concat(y3, y2, y1),
        ]
    )
    recursion = Forall(
        x,
        Forall(
            y1,
            Forall(y2, Forall(y3, Implies(window, consequent))),
        ),
    )

    return Or(base_n0, Or(base_n1, And(phi_struc, recursion)))


#: The named closed formulas the CLI and the serve daemon expose for
#: membership queries: name → (builder, alphabet).
PAPER_FORMULAS: dict[str, tuple[Callable[[], Formula], str]] = {
    "ww": (phi_ww, "ab"),
    "no-cube": (phi_no_cube, "ab"),
    "vbv": (phi_vbv, "ab"),
    "fib": (phi_fib, "abc"),
}


def paper_formula(name: str) -> tuple[Formula, str]:
    """The named paper sentence and its alphabet.

    Raises ``KeyError`` listing the valid names so CLI/daemon callers can
    surface it verbatim.
    """
    try:
        builder, alphabet = PAPER_FORMULAS[name]
    except KeyError:
        raise KeyError(
            f"unknown paper formula {name!r}; choose from "
            f"{sorted(PAPER_FORMULAS)}"
        ) from None
    return builder(), alphabet
