"""Constraint-guided quantifier evaluation (the model checker's planner).

FC model checking is query evaluation: quantifiers are joins over the
factor universe, and concatenation atoms are join conditions.  The naive
evaluator instantiates each quantified variable over the *entire* factor
set — O(|Facs|) per quantifier, so Proposition 4.1's sentence φ_fib (a
∀-block of four variables) costs O(|Facs|⁴) per word, which is hopeless
beyond toy words.

This module implements the standard database remedy — *sideways
information passing*: before scanning a quantifier, extract the atoms that
**must** hold for the quantified subformula to matter, and use those atoms
to derive a small candidate pool for the variable.

Soundness argument (why skipping non-candidates is correct):

* ``∃x: φ`` — we collect atoms that are *necessary for φ to be true*
  (:func:`necessary_atoms` with ``target=True``).  A value of ``x``
  violating any of them cannot make φ true, so it can be skipped.
* ``∀x: φ`` — we collect atoms necessary for φ to be **false**.  A value of
  ``x`` violating them makes φ true automatically, so it can be skipped.

``necessary_atoms`` is deliberately conservative (it returns a *subset* of
the truly necessary atoms), so the optimisation can only shrink the scan,
never change the result.  ``tests/fc/test_optimizer.py`` cross-validates the
optimised evaluator against the naive one on randomized formulas.
"""

from __future__ import annotations

from typing import Iterable

from repro.fc.structures import BOTTOM, WordStructure
from repro.fc.syntax import (
    And,
    Concat,
    ConcatChain,
    Const,
    Exists,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    Term,
    Var,
)

__all__ = ["necessary_atoms", "candidate_pool"]

#: Atom types usable as join constraints.
ConstraintAtom = "Concat | ConcatChain"


def necessary_atoms(
    formula: Formula, target: bool, bound: frozenset[Var] = frozenset()
) -> frozenset[Concat]:
    """Return concat atoms that must be TRUE whenever ``formula`` evaluates
    to ``target`` (under any assignment extending the current one).

    Atoms mentioning a variable bound *inside* ``formula`` are excluded —
    their truth depends on the inner quantifier's witness, so they say
    nothing about the outer assignment.
    """
    if isinstance(formula, (Concat, ConcatChain)):
        if not target:
            return frozenset()
        terms = (
            (formula.x, formula.y, formula.z)
            if isinstance(formula, Concat)
            else (formula.x, *formula.parts)
        )
        mentions_bound = any(
            isinstance(t, Var) and t in bound for t in terms
        )
        return frozenset() if mentions_bound else frozenset([formula])
    if isinstance(formula, Not):
        return necessary_atoms(formula.inner, not target, bound)
    if isinstance(formula, And):
        if target:
            return necessary_atoms(formula.left, True, bound) | necessary_atoms(
                formula.right, True, bound
            )
        return frozenset()
    if isinstance(formula, Or):
        if not target:
            return necessary_atoms(formula.left, False, bound) | necessary_atoms(
                formula.right, False, bound
            )
        return frozenset()
    if isinstance(formula, Implies):
        if not target:
            # (P → Q) false requires P true and Q false.
            return necessary_atoms(formula.left, True, bound) | necessary_atoms(
                formula.right, False, bound
            )
        return frozenset()
    if isinstance(formula, Exists):
        # ∃y: φ true requires φ true for some y — atoms of φ (not using y)
        # are necessary.  ∃y: φ false requires φ false for ALL y, in
        # particular some y, so φ-false atoms not using y are necessary too.
        return necessary_atoms(formula.inner, target, bound | {formula.var})
    if isinstance(formula, Forall):
        return necessary_atoms(formula.inner, target, bound | {formula.var})
    # Extension atoms (FC[REG] constraints): no concat information.
    return frozenset()


def _factors_with_prefix(word: str, prefix: str) -> frozenset[str]:
    """All factors of ``word`` that start with ``prefix``."""
    result: set[str] = set()
    start = word.find(prefix)
    while start != -1:
        for end in range(start + len(prefix), len(word) + 1):
            result.add(word[start:end])
        start = word.find(prefix, start + 1)
    return frozenset(result)


def _factors_with_suffix(word: str, suffix: str) -> frozenset[str]:
    """All factors of ``word`` that end with ``suffix``."""
    result: set[str] = set()
    start = word.find(suffix)
    while start != -1:
        end = start + len(suffix)
        for begin in range(0, start + 1):
            result.add(word[begin:end])
        start = word.find(suffix, start + 1)
    return frozenset(result)


def _known(structure: WordStructure, assignment: dict, t: Term):
    """Return the value of ``t`` if determined, else ``None``.

    Constants are always determined (possibly ⊥); variables only when
    already assigned.
    """
    if isinstance(t, Const):
        return structure.constant(t.symbol)
    return assignment.get(t)


def _atom_candidates(
    structure: WordStructure,
    assignment: dict,
    atom: Concat,
    var: Var,
) -> frozenset[str] | None:
    """Candidate values for ``var`` so that ``atom`` can still be true.

    Returns ``None`` when the atom does not constrain ``var`` usefully
    (e.g. the whole-word side is unknown).  Returned values are guaranteed
    to be factors of the word.
    """
    x_val = _known(structure, assignment, atom.x) if atom.x != var else None
    y_val = _known(structure, assignment, atom.y) if atom.y != var else None
    z_val = _known(structure, assignment, atom.z) if atom.z != var else None
    positions = [t == var for t in (atom.x, atom.y, atom.z)]
    if not any(positions):
        return None
    if any(v is BOTTOM for v in (x_val, y_val, z_val) if v is not None):
        return frozenset()  # an argument is ⊥: the atom can never hold

    in_x, in_y, in_z = positions
    word = structure.word

    if in_x and not in_y and not in_z:
        if y_val is not None and z_val is not None:
            combined = y_val + z_val
            return frozenset([combined]) if combined in word else frozenset()
        if y_val is not None:
            return _factors_with_prefix(word, y_val)
        if z_val is not None:
            return _factors_with_suffix(word, z_val)
        return None
    if in_y or in_z:
        if x_val is None:
            # x unknown: only the double-occurrence case x ≐ var·var is
            # still not derivable without x; give up.
            return None
        result: set[str] = set()
        if in_y and in_z:
            # x ≐ var·var: var must be the half of x.
            half, rem = divmod(len(x_val), 2)
            if rem == 0 and x_val[:half] == x_val[half:]:
                result.add(x_val[:half])
            return frozenset(result)
        if in_y:
            if in_x:
                # x and y are both var: var ≐ var·z forces z = ε... handled
                # by generic scan; bail out.
                return None
            if z_val is not None:
                if x_val.endswith(z_val):
                    result.add(x_val[: len(x_val) - len(z_val)])
                return frozenset(result)
            return frozenset(x_val[:i] for i in range(len(x_val) + 1))
        # in_z only
        if in_x:
            return None
        if y_val is not None:
            if x_val.startswith(y_val):
                result.add(x_val[len(y_val) :])
            return frozenset(result)
        return frozenset(x_val[i:] for i in range(len(x_val) + 1))
    return None


def _chain_candidates(
    structure: WordStructure,
    assignment: dict,
    atom: ConcatChain,
    var: Var,
) -> frozenset[str] | None:
    """Candidate values for ``var`` so that the chain atom can still hold.

    When the head value is known, candidates are produced by enumerating
    every decomposition of the head into the chain's parts that is
    consistent with constants and already-assigned variables, and
    projecting onto ``var``.  Backtracking over split points; constants
    and known values prune hard, so real chains (letter-separated windows
    like ``x ≐ c·y₁·c·y₂·c·y₃·c``) stay tiny.
    """
    if var == atom.x:
        values = []
        for part in atom.parts:
            value = _known(structure, assignment, part)
            if value is None:
                return None
            if value is BOTTOM:
                return frozenset()
            values.append(value)
        combined = "".join(values)
        return (
            frozenset([combined])
            if combined in structure.word
            else frozenset()
        )
    if var not in atom.parts:
        return None
    head = _known(structure, assignment, atom.x)
    if head is None:
        return None
    if head is BOTTOM:
        return frozenset()
    results: set[str] = set()
    parts = atom.parts
    total = len(head)

    def backtrack(index: int, pos: int, local: dict) -> None:
        if index == len(parts):
            if pos == total:
                results.add(local[var])
            return
        t = parts[index]
        if isinstance(t, Const):
            value = structure.constant(t.symbol)
            if value is BOTTOM:
                return
        else:
            value = assignment.get(t)
            if value is None:
                value = local.get(t)
        if value is not None:
            if head.startswith(value, pos):
                backtrack(index + 1, pos + len(value), local)
            return
        owned = t not in local
        for end in range(pos, total + 1):
            local[t] = head[pos:end]
            backtrack(index + 1, end, local)
        if owned:
            del local[t]

    backtrack(0, 0, {})
    return frozenset(results)


def candidate_pool(
    structure: WordStructure,
    assignment: dict,
    var: Var,
    atoms: Iterable["Concat | ConcatChain"],
) -> frozenset[str] | None:
    """Intersect the candidate sets contributed by ``atoms`` for ``var``.

    Returns ``None`` when no atom constrains ``var`` — the caller must then
    scan the whole universe.  Otherwise returns a (possibly empty) set of
    factors that is guaranteed to contain every value of ``var`` that can
    satisfy all the atoms simultaneously.
    """
    pool: frozenset[str] | None = None
    for atom in atoms:
        if isinstance(atom, ConcatChain):
            candidates = _chain_candidates(structure, assignment, atom, var)
        else:
            candidates = _atom_candidates(structure, assignment, atom, var)
        if candidates is None:
            continue
        pool = candidates if pool is None else (pool & candidates)
        if pool is not None and not pool:
            return pool
    return pool


def _union(
    a: frozenset[str] | None, b: frozenset[str] | None
) -> frozenset[str] | None:
    """Union where ``None`` means "the whole universe"."""
    if a is None or b is None:
        return None
    return a | b


def _intersect(
    a: frozenset[str] | None, b: frozenset[str] | None
) -> frozenset[str] | None:
    """Intersection where ``None`` means "the whole universe"."""
    if a is None:
        return b
    if b is None:
        return a
    return a & b


def formula_pool(
    structure: WordStructure,
    assignment: dict,
    var: Var,
    formula: Formula,
    target: bool,
    bound: frozenset[Var] = frozenset(),
) -> frozenset[str] | None:
    """Candidate values of ``var`` for which ``formula`` *can* evaluate to
    ``target`` (under the current partial ``assignment``).

    This is the polarity-aware generalisation of
    :func:`necessary_atoms` + :func:`candidate_pool`: it propagates pools
    through disjunctions (union), conjunctions (intersection) and
    implications, which the atom-set view cannot.  ``None`` means
    "unconstrained — scan the whole universe".

    Soundness invariant (checked by the randomized tests): for every factor
    ``f`` **outside** the returned pool, evaluating ``formula`` with
    ``var ↦ f`` yields ``not target``.
    """
    if isinstance(formula, (Concat, ConcatChain)):
        if not target:
            return None
        terms = (
            (formula.x, formula.y, formula.z)
            if isinstance(formula, Concat)
            else (formula.x, *formula.parts)
        )
        if var in bound or var not in terms:
            return None
        # Variables bound by quantifiers *inside* the current scope must be
        # treated as unknowns, not as their (shadowed) outer values: mask
        # them out of the assignment.  Candidates computed with unknowns are
        # "the atom can hold for SOME inner binding", which is exactly the
        # sound necessary condition at every polarity/quantifier mix.
        if bound and any(isinstance(t, Var) and t in bound for t in terms):
            assignment = {
                key: value for key, value in assignment.items() if key not in bound
            }
        if isinstance(formula, Concat):
            return _atom_candidates(structure, assignment, formula, var)
        return _chain_candidates(structure, assignment, formula, var)
    if isinstance(formula, Not):
        return formula_pool(
            structure, assignment, var, formula.inner, not target, bound
        )
    if isinstance(formula, And):
        left = formula_pool(structure, assignment, var, formula.left, target, bound)
        right = formula_pool(
            structure, assignment, var, formula.right, target, bound
        )
        # And-true: var must satisfy both sides.  And-false: either side may
        # fail, so only the union of can-be-false pools is safe.
        return _intersect(left, right) if target else _union(left, right)
    if isinstance(formula, Or):
        left = formula_pool(structure, assignment, var, formula.left, target, bound)
        right = formula_pool(
            structure, assignment, var, formula.right, target, bound
        )
        return _union(left, right) if target else _intersect(left, right)
    if isinstance(formula, Implies):
        # (P → Q) ≡ ¬P ∨ Q.
        left = formula_pool(
            structure, assignment, var, formula.left, not target, bound
        )
        right = formula_pool(
            structure, assignment, var, formula.right, target, bound
        )
        return _union(left, right) if target else _intersect(left, right)
    if isinstance(formula, (Exists, Forall)):
        # The quantifier's truth at any inner witness/counterexample imposes
        # the inner pool on var (atoms touching the freshly-bound variable
        # contribute None via the bound set); the factor universe is never
        # empty, so the condition is necessary for both quantifiers and
        # both targets.
        return formula_pool(
            structure,
            assignment,
            var,
            formula.inner,
            target,
            bound | {formula.var},
        )
    # Extension atoms (e.g. FC[REG] regular constraints) may provide their
    # own candidate generator.
    custom = getattr(formula, "_candidates", None)
    if custom is not None and target:
        return custom(structure, assignment, var, bound)
    return None
