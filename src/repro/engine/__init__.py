"""repro.engine — the shared experiment-execution engine.

The repo machine-checks the paper's lemmas through 23 experiments plus a
handful of solver primitives.  This package turns each of them into a
declarative, pure *task* and provides the machinery to run the whole
collection efficiently:

* :mod:`repro.engine.spec`       — :class:`TaskSpec` (name, dotted
  function path, JSON-hashable args, dependency wiring) and the
  :class:`TaskRegistry`;
* :mod:`repro.engine.dag`        — dependency-graph validation and
  deterministic topological ordering;
* :mod:`repro.engine.cache`      — the content-addressed on-disk result
  cache under ``.repro-cache/`` (key = SHA-256 of task name +
  canonicalised args + code-version salt + dependency keys);
* :mod:`repro.engine.executor`   — the scheduler: inline execution for
  ``jobs=1``, a multiprocessing worker pool otherwise, with per-task
  wall-time metrics, single-task failure isolation and deterministic
  result ordering;
* :mod:`repro.engine.cachestats` — facade over :mod:`repro.cachestats`,
  the registry that routes the in-process ``lru_cache`` statistics of
  the solver-adjacent modules into engine reports;
* :mod:`repro.engine.primitives` — pure, picklable entry points around
  ``ef.solver`` / ``ef.equivalence`` / ``ef.synthesis`` /
  ``core.witnesses``;
* :mod:`repro.engine.experiments` — ``run_e01`` … ``run_e23`` plus
  :func:`build_default_registry`, the full task DAG;
* :mod:`repro.engine.cli`        — the ``python -m repro run`` command.

``experiments``, ``primitives`` and ``cli`` import the whole solver
stack, so they are *not* imported here — this module must stay light.
The instrumented solver modules import the layer-free
:mod:`repro.cachestats` leaf directly at import time.
"""

from __future__ import annotations

from repro.engine.cache import ENGINE_SALT, CacheStats, ResultCache
from repro.engine.dag import (
    DependencyCycleError,
    MissingDependencyError,
    topological_order,
    validate_dag,
)
from repro.engine.executor import EngineReport, run_tasks
from repro.engine.spec import TaskRegistry, TaskSpec

__all__ = [
    "ENGINE_SALT",
    "CacheStats",
    "DependencyCycleError",
    "EngineReport",
    "MissingDependencyError",
    "ResultCache",
    "TaskRegistry",
    "TaskSpec",
    "run_tasks",
    "topological_order",
    "validate_dag",
]
