"""Backward-compatible facade for :mod:`repro.cachestats`.

The lru_cache statistics registry used to live inside the engine
package, which forced the instrumented low-layer modules (``words``,
``fc``, ``ef``, ``spanners``) to import *upward* into ``engine`` — an
inversion of the import layering that ``python -m repro lint`` now
enforces.  The registry proper moved to the layer-free leaf module
:mod:`repro.cachestats`; this facade keeps the historical import path
working for the engine and external callers.

``_REGISTRY`` is re-exported too (same shared dict, not a copy): tests
reach into it to unregister scoped fixtures.
"""

from __future__ import annotations

from repro.cachestats import (  # noqa: F401 — re-exports
    _REGISTRY,
    aggregate,
    clear_all,
    diff,
    register,
    registered_names,
    snapshot,
)

__all__ = [
    "aggregate",
    "clear_all",
    "diff",
    "register",
    "registered_names",
    "snapshot",
]
