"""Pure, picklable entry points around the solver stack.

Every function here takes JSON-representable arguments, returns a
JSON-representable value, and touches no global state — the contract
that lets the engine hash their inputs into cache keys and run them in
worker processes.  They wrap the four solver-adjacent module families
named in DESIGN.md: ``ef.solver``, ``ef.equivalence``, ``ef.synthesis``
and ``core.witnesses`` (plus the ``core.pow2`` unary search the witness
chain builds on).
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "equivalence",
    "distinguishing_rank",
    "plan_relation",
    "solver_openings",
    "synthesize",
    "unary_minimal_pairs",
    "witness_report",
    "relation_agreement",
    "relation_agreement_shard",
    "relation_agreement_merge",
    "serialize_language_report",
]


def unary_minimal_pairs(
    max_rank: int = 2, max_exponent: int = 20
) -> dict[str, Any]:
    """Lemma 3.6 minimal pairs: rank → least (p, q) with aᵖ ≡_k a^q.

    JSON object keys are strings, so ranks are stringified.
    """
    from repro.ef.unary import minimal_equivalent_pair

    pairs = {
        str(k): list(minimal_equivalent_pair(k, max_exponent=max_exponent))
        for k in range(max_rank + 1)
    }
    return {"max_exponent": max_exponent, "pairs": pairs}


def equivalence(
    w: str, v: str, k: int, alphabet: str | None = None
) -> dict[str, Any]:
    """Exact ``w ≡_k v`` decision (``ef.equivalence`` as a task)."""
    from repro.ef.equivalence import equiv_k

    return {
        "w": w,
        "v": v,
        "k": k,
        "equivalent": equiv_k(w, v, k, alphabet),
    }


def distinguishing_rank(
    w: str, v: str, max_k: int = 3, alphabet: str | None = None
) -> dict[str, Any]:
    """Least separating rank up to ``max_k`` (None if equivalent)."""
    from repro.ef.equivalence import distinguishing_rank as _rank

    return {
        "w": w,
        "v": v,
        "max_k": max_k,
        "rank": _rank(w, v, max_k, alphabet),
    }


def solver_openings(
    w: str, v: str, alphabet: str, k: int, side: str = "A"
) -> dict[str, Any]:
    """``ef.solver`` as a task: Duplicator's winning responses to every
    opening Spoiler move on the given side (None = the move wins for
    Spoiler)."""
    from repro.ef.equivalence import solver_for
    from repro.ef.game import Move

    solver = solver_for(w, v, alphabet)
    structure = solver.structure_a if side == "A" else solver.structure_b
    responses = {}
    for factor in sorted(structure.universe_factors):
        response = solver.winning_response(k, frozenset(), Move(side, factor))
        responses[factor] = response
    return {"w": w, "v": v, "k": k, "side": side, "responses": responses}


def synthesize(w: str, v: str, k: int, alphabet: str) -> dict[str, Any]:
    """``ef.synthesis`` as a task: a verified separating FC(k) sentence."""
    from repro.ef.synthesis import (
        SynthesisFailure,
        synthesize_distinguishing_sentence,
    )
    from repro.fc.display import to_text
    from repro.fc.semantics import defines_language_member
    from repro.fc.syntax import quantifier_rank

    try:
        phi = synthesize_distinguishing_sentence(w, v, k, alphabet)
    except SynthesisFailure as failure:
        return {"w": w, "v": v, "k": k, "synthesized": False,
                "reason": str(failure)}
    return {
        "w": w,
        "v": v,
        "k": k,
        "synthesized": True,
        "formula": to_text(phi),
        "quantifier_rank": quantifier_rank(phi),
        "verified": (
            defines_language_member(w, phi, alphabet)
            and not defines_language_member(v, phi, alphabet)
        ),
    }


def serialize_language_report(report: Any) -> dict[str, Any]:
    """JSON image of a :class:`repro.core.inexpressibility.LanguageReport`."""
    return {
        "language": report.language,
        "paper_ref": report.paper_ref,
        "memberships_ok": report.memberships_ok,
        "bounded": report.bounded,
        "verdict": report.verdict,
        "equivalences": {str(k): v for k, v in report.equivalences.items()},
        "pairs": [
            {
                "k": pair.k,
                "member": pair.member,
                "foil": pair.foil,
                "p": pair.p,
                "q": pair.q,
                "required_unary_rank": pair.required_unary_rank,
                "certified_unary_rank": pair.certified_unary_rank,
            }
            for pair in report.pairs
        ],
    }


def witness_report(
    name: str,
    ranks: list[int] | None = None,
    verify_equivalence_up_to: int = 1,
) -> dict[str, Any]:
    """``core.witnesses`` as a task: the full Lemma 4.14 evidence chain
    for one language family."""
    from repro.core.inexpressibility import language_report

    report = language_report(
        name,
        ranks=tuple(ranks) if ranks is not None else (0, 1),
        verify_equivalence_up_to=verify_equivalence_up_to,
    )
    return serialize_language_report(report)


def relation_agreement(name: str, max_length: int = 7) -> dict[str, Any]:
    """Theorem 5.8 reduction check for one relation."""
    from repro.core.inexpressibility import relation_report

    report = relation_report(name, max_length=max_length)
    return {
        "relation": report.relation,
        "target_language": report.target_language,
        "reduction_agrees": report.reduction_agrees,
        "first_disagreement": report.first_disagreement,
        "note": report.note,
        "max_length": max_length,
    }


def plan_relation(
    name: str, max_length: int = 7, *, width: int
) -> list[dict[str, Any]]:
    """Shard plan for a ψ-reduction check: subtrees of the target grid."""
    from repro.core.relations import PSI_REDUCTIONS
    from repro.engine.shards import subtree_plan
    from repro.words.generators import PAPER_LANGUAGES

    language = PAPER_LANGUAGES[PSI_REDUCTIONS[name].target_language]
    return subtree_plan(language.alphabet, max_length, width)


def relation_agreement_shard(
    name: str, max_length: int = 7, *, shard: dict[str, Any]
) -> dict[str, Any]:
    """One shard of the ψ-reduction grid: the (len, text)-least
    disagreement among the shard's words, or None.

    Two deliberate departures from the monolithic
    :func:`repro.core.inexpressibility.relation_report` path, neither
    observable on the committed data (every reduction agrees):

    * the shard scans its full slice instead of breaking at the first
      disagreement — the least disagreement over a subtree chunk is not
      the first in shard-local order, and the merged minimum must equal
      the monolithic first hit;
    * no ``scope`` is declared, so shards never hydrate or publish the
      grid's ``sweep-universe`` artifact (a per-subtree slice is not the
      grid the artifact describes).

    When every shard agrees — the committed case — work and counters
    match the monolithic full scan exactly.
    """
    from repro.core.relations import PSI_REDUCTIONS, oracle_for
    from repro.fc.semantics import defines_language_members_shard
    from repro.words.generators import PAPER_LANGUAGES

    reduction = PSI_REDUCTIONS[name]
    oracle_language = PAPER_LANGUAGES[reduction.target_language]
    psi = reduction.build(oracle_for(name))
    first_bad: str | None = None
    memberships = defines_language_members_shard(
        psi, oracle_language.alphabet, max_length, shard
    )
    for word, in_psi in memberships:
        if in_psi != (word in oracle_language):
            if first_bad is None or (len(word), word) < (
                len(first_bad),
                first_bad,
            ):
                first_bad = word
    return {"first_disagreement": first_bad}


def relation_agreement_merge(
    name: str, max_length: int = 7, *, shards: list[dict[str, Any]]
) -> dict[str, Any]:
    from repro.core.relations import PSI_REDUCTIONS

    disagreements = [
        part["first_disagreement"]
        for part in shards
        if part["first_disagreement"] is not None
    ]
    first_bad = (
        min(disagreements, key=lambda word: (len(word), word))
        if disagreements
        else None
    )
    reduction = PSI_REDUCTIONS[name]
    return {
        "relation": name,
        "target_language": reduction.target_language,
        "reduction_agrees": first_bad is None,
        "first_disagreement": first_bad,
        "note": reduction.note,
        "max_length": max_length,
    }
