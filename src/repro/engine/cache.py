"""Content-addressed on-disk result cache.

Records live under ``.repro-cache/`` (or any directory handed to
:class:`ResultCache`), one JSON file per key, sharded by the first two
hex digits.  The key of a task is

    SHA-256(engine salt ‖ task name ‖ task version ‖ canonical args ‖
            sorted (param, dependency-key) pairs)

so it changes whenever the task's inputs change, whenever the code
version salt is bumped, and — Merkle-style — whenever any transitive
dependency's key changes.  There is no TTL: invalidation is purely by
salt/version, and ``--no-cache`` bypasses the cache wholesale.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.engine.spec import TaskSpec

__all__ = ["ENGINE_SALT", "CacheStats", "ResultCache", "DEFAULT_CACHE_DIR"]

#: Global code-version salt.  Bumping it invalidates every cached record
#: at once (e.g. after a solver-semantics change).
ENGINE_SALT = "repro-engine-v1"

#: Default cache location, overridable via ``$REPRO_CACHE_DIR``.
DEFAULT_CACHE_DIR = ".repro-cache"


def default_cache_dir() -> Path:
    # The value only picks where records live on disk; it never flows into
    # cache keys or task payloads, so it cannot make results irreproducible.
    # repro-lint: allow[determinism] config-only env read at the cache boundary
    return Path(os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR))


@dataclass
class CacheStats:
    """Hit/miss bookkeeping for one engine run."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    bypassed: int = 0
    errors: int = 0

    def as_dict(self) -> dict[str, int | float]:
        probes = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "bypassed": self.bypassed,
            "errors": self.errors,
            "hit_rate": round(self.hits / probes, 4) if probes else 0.0,
        }


@dataclass
class ResultCache:
    """The content-addressed store.

    ``enabled=False`` turns every probe into a bypass (the ``--no-cache``
    escape hatch) while still tracking statistics, so reports always
    carry a cache section.
    """

    root: Path = field(default_factory=default_cache_dir)
    salt: str = ENGINE_SALT
    enabled: bool = True
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    # -- keys ----------------------------------------------------------

    def key_for(
        self,
        spec: TaskSpec,
        dep_keys: Mapping[str, str] | None = None,
        *,
        extra: str | None = None,
    ) -> str:
        """The content key for ``spec`` given its dependencies' keys.

        ``extra`` salts additional execution shape into the key — the
        executor passes the canonical shard-plan fingerprint for shard
        and merge *storage* keys, while dependents keep hashing the
        plain (``extra=None``) key because a sharded task's committed
        result is bit-identical to the monolithic one by contract.
        """
        hasher = hashlib.sha256()
        for part in (self.salt, spec.name, spec.version, spec.canonical_args()):
            hasher.update(part.encode("utf-8"))
            hasher.update(b"\x00")
        for param, dep_key in sorted((dep_keys or {}).items()):
            hasher.update(f"{param}={dep_key}".encode("utf-8"))
            hasher.update(b"\x00")
        if extra is not None:
            # \x01 domain-separates salted keys from the unsalted form —
            # no choice of ``extra`` can collide with a plain key.
            hasher.update(b"\x01")
            hasher.update(extra.encode("utf-8"))
            hasher.update(b"\x00")
        return hasher.hexdigest()

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    # -- record IO -----------------------------------------------------

    def load(self, key: str) -> dict[str, Any] | None:
        """Return the cached record for ``key``, counting hit/miss."""
        if not self.enabled:
            self.stats.bypassed += 1
            return None
        path = self.path_for(key)
        try:
            with path.open(encoding="utf-8") as handle:
                record = json.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (json.JSONDecodeError, OSError):
            # A torn or corrupted record is a miss; it will be rewritten.
            self.stats.errors += 1
            self.stats.misses += 1
            return None
        if not isinstance(record, dict) or record.get("key") != key:
            self.stats.errors += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return record

    def store(self, key: str, record: Mapping[str, Any]) -> None:
        """Atomically persist ``record`` under ``key``."""
        if not self.enabled:
            return
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = dict(record)
        payload["key"] = key
        encoded = json.dumps(payload, sort_keys=True, ensure_ascii=False)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(encoded)
            os.replace(tmp_name, path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.stores += 1

    def clear(self) -> int:
        """Delete every cached record; return how many were removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir():
                continue
            for entry in sorted(shard.glob("*.json")):
                entry.unlink()
                removed += 1
            try:
                shard.rmdir()
            except OSError:
                pass
        return removed

    def describe(self) -> dict[str, Any]:
        info = self.stats.as_dict()
        info["dir"] = str(self.root)
        info["enabled"] = self.enabled
        info["salt"] = self.salt
        return info
