"""The engine scheduler: topological fan-out over a worker pool.

``run_tasks`` takes a registry (or a plain spec mapping), resolves the
dependency closure of the requested tasks, and executes them:

* in-process, in topological order, when ``jobs == 1`` (deterministic
  and debugger-friendly);
* on a ``multiprocessing`` pool otherwise — every task whose
  dependencies are satisfied is in flight simultaneously, up to
  ``jobs`` workers.

Single-task failure isolation: a task that raises produces an ``error``
record (type, message, traceback) instead of aborting the run, and its
transitive dependents complete as ``skipped`` records.  Results are
JSON-roundtripped before caching so cold and warm runs return
bit-identical payloads, and the final record list is sorted by task
name regardless of completion order.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

from repro.engine import cachestats
from repro.engine.cache import ResultCache
from repro.kernel import stats as solver_stats
from repro.store import ArtifactStore
from repro.store import runtime as store_runtime
from repro.store import stats as store_stats
from repro.engine.dag import dependents_of, topological_order, validate_dag
from repro.engine.spec import (
    TaskRegistry,
    TaskSpec,
    canonical_json,
    resolve_function,
)

__all__ = ["EngineReport", "run_tasks"]

#: Seconds between completion polls of the worker pool.
_POLL_INTERVAL = 0.005


@dataclass
class EngineReport:
    """The outcome of one engine run."""

    jobs: int
    elapsed_s: float
    records: list[dict[str, Any]]
    cache: dict[str, Any]
    lru_caches: dict[str, Any] = field(default_factory=dict)
    solver: dict[str, Any] = field(default_factory=dict)
    store: dict[str, Any] = field(default_factory=dict)
    #: The pre-cap ``--jobs`` request; equals ``jobs`` unless the run
    #: was capped at the host's CPU count.
    jobs_requested: int = 0

    def __post_init__(self) -> None:
        if not self.jobs_requested:
            self.jobs_requested = self.jobs

    @property
    def ok(self) -> bool:
        return all(record["status"] == "ok" for record in self.records)

    def record_for(self, name: str) -> dict[str, Any]:
        for record in self.records:
            if record["task"] == name:
                return record
        raise KeyError(f"no record for task {name!r}")

    def counts(self) -> dict[str, int]:
        counts = {"ok": 0, "error": 0, "skipped": 0}
        for record in self.records:
            counts[record["status"]] = counts.get(record["status"], 0) + 1
        return counts

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "engine": {
                "jobs": self.jobs,
                "jobs_requested": self.jobs_requested,
                "elapsed_s": round(self.elapsed_s, 6),
                "tasks_total": len(self.records),
                "tasks": self.counts(),
            },
            "cache": self.cache,
            "lru_caches": self.lru_caches,
            "solver": self.solver,
            "store": self.store,
            "tasks": self.records,
        }


def _json_roundtrip(value: Any) -> Any:
    """Normalise a task result to its JSON image.

    Guarantees warm-cache payloads (read back from disk) are identical
    to cold-run payloads, and rejects non-serialisable results early.
    """
    import json

    return json.loads(canonical_json(value))


def _execute_payload(payload: dict[str, Any]) -> dict[str, Any]:
    """Run one task; always returns a record, never raises.

    Top-level so it is picklable for the worker pool.  ``payload``
    carries only plain data: the function is re-resolved from its dotted
    path inside the worker.
    """
    name = payload["task"]
    before = cachestats.snapshot()
    solver_before = solver_stats.snapshot()
    store_before = store_stats.snapshot()
    start = time.perf_counter()
    try:
        fn = resolve_function(payload["fn"])
        result = fn(**payload["args"], **payload["dep_results"])
        result = _json_roundtrip(result)
        status, error = "ok", None
    except Exception as exc:  # noqa: BLE001 — isolation is the point
        status, result = "error", None
        error = {
            "type": type(exc).__name__,
            "message": str(exc),
            "traceback": traceback.format_exc(),
        }
    wall = time.perf_counter() - start
    record = {
        "task": name,
        "status": status,
        "result": result,
        "error": error,
        "wall_time_s": round(wall, 6),
        "args_bytes": len(canonical_json(payload["args"])),
        "result_bytes": len(canonical_json(result)) if result is not None else 0,
        "lru_delta": cachestats.diff(before, cachestats.snapshot()),
        # Names registered *in the executing process* — with lazy task
        # imports and a worker pool, the parent process may never see
        # these sites, so the record is the only place they surface.
        "lru_registered": cachestats.registered_names(),
        "solver_delta": solver_stats.diff(solver_before, solver_stats.snapshot()),
        "store_delta": store_stats.diff(store_before, store_stats.snapshot()),
    }
    return record


def _skipped_record(name: str, failed_deps: list[str]) -> dict[str, Any]:
    return {
        "task": name,
        "status": "skipped",
        "result": None,
        "error": {
            "type": "SkippedDependency",
            "message": f"dependency failed or was skipped: {failed_deps}",
            "traceback": None,
        },
        "wall_time_s": 0.0,
        "args_bytes": 0,
        "result_bytes": 0,
        "cache": "none",
        "lru_delta": {},
        "lru_registered": [],
        "solver_delta": {},
        "store_delta": {},
    }


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork (cheap, inherits the imported solver stack)."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover — non-POSIX fallback
        return multiprocessing.get_context()


def run_tasks(
    registry: TaskRegistry | Mapping[str, TaskSpec],
    *,
    jobs: int = 1,
    cache: ResultCache | None = None,
    store: ArtifactStore | None = None,
    only: Iterable[str] | None = None,
    on_record: Callable[[dict[str, Any]], None] | None = None,
) -> EngineReport:
    """Execute a task set and return the :class:`EngineReport`.

    ``only`` restricts the run to the named tasks plus their transitive
    dependencies.  ``cache`` defaults to a fresh :class:`ResultCache`
    over ``.repro-cache/``; pass ``ResultCache(enabled=False)`` for
    ``--no-cache`` semantics.  ``store``, when given, is activated as
    the process-global artifact store for the duration of the run —
    *before* any worker pool forks, so workers inherit it and
    warm-start from the same backend (the previous global store is
    restored on exit).  ``on_record`` is invoked once per finished
    task, in completion order (progress reporting).
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    jobs_requested = jobs
    # More workers than cores just adds fork cost and scheduler churn;
    # cap silently here, report the cap in the run summary.
    jobs = min(jobs, os.cpu_count() or 1)
    if isinstance(registry, TaskRegistry):
        specs = (
            registry.closure(list(only)) if only is not None else registry.specs()
        )
    else:
        specs = dict(registry)
        if only is not None:
            specs = TaskRegistry(iter(specs.values())).closure(list(only))
    validate_dag(specs)
    order = topological_order(specs)
    cache = cache if cache is not None else ResultCache()

    records: dict[str, dict[str, Any]] = {}
    keys: dict[str, str] = {}
    started = time.perf_counter()

    # Run-wide accumulators.  With a worker pool, executed records are the
    # *only* channel for worker-process cache/solver activity (lazy task
    # imports mean the parent process typically registers nothing), so the
    # per-record deltas are merged here in the parent.
    worker_lru_totals: dict[str, dict[str, int]] = {}
    seen_registered: set[str] = set()
    solver_totals: dict[str, int] = {}
    pooled = jobs > 1

    store_totals: dict[str, int] = {}

    def absorb(record: dict[str, Any]) -> None:
        """Fold one executed record's deltas into the run accumulators."""
        seen_registered.update(record.get("lru_registered", ()))
        for counter, amount in record.get("solver_delta", {}).items():
            solver_totals[counter] = solver_totals.get(counter, 0) + amount
        for counter, amount in record.get("store_delta", {}).items():
            store_totals[counter] = store_totals.get(counter, 0) + amount
        if not pooled:
            # Sequential execution happened in *this* process: the main
            # snapshot already contains these deltas; merging them again
            # would double-count.
            return
        for cache_name, counters in record.get("lru_delta", {}).items():
            bucket = worker_lru_totals.setdefault(
                cache_name, {"hits": 0, "misses": 0, "currsize": 0}
            )
            for fieldname in ("hits", "misses", "currsize"):
                bucket[fieldname] += counters.get(fieldname, 0)

    def finish(name: str, record: dict[str, Any]) -> None:
        records[name] = record
        if on_record is not None:
            on_record(record)

    def prepare(name: str) -> dict[str, Any] | None:
        """Cache-probe a ready task; return a payload if it must run."""
        spec = specs[name]
        failed = [
            dep
            for dep in spec.dep_tasks
            if records[dep]["status"] != "ok"
        ]
        if failed:
            finish(name, _skipped_record(name, failed))
            return None
        dep_keys = {
            param: keys[dep] for param, dep in sorted(spec.deps.items())
        }
        key = cache.key_for(spec, dep_keys)
        keys[name] = key
        cached = cache.load(key)
        if cached is not None and cached.get("status") == "ok":
            record = dict(cached)
            record["cache"] = "hit"
            # Stale execution-process details must not leak into this
            # run's report: a hit did no cache or solver work.
            record["lru_delta"] = {}
            record["lru_registered"] = []
            record["solver_delta"] = {}
            record["store_delta"] = {}
            finish(name, record)
            return None
        return {
            "task": name,
            "fn": spec.fn,
            "args": dict(spec.args),
            "dep_results": {
                param: records[dep]["result"]
                for param, dep in spec.deps.items()
            },
        }

    def seal(name: str, record: dict[str, Any]) -> None:
        record["cache"] = "miss" if cache.enabled else "bypass"
        record["key"] = keys[name]
        absorb(record)
        if record["status"] == "ok":
            cache.store(keys[name], record)
        finish(name, record)

    # Activate the artifact store in the parent *before* the pool
    # forks: workers inherit the global and hydrate from the shared
    # backend (sqlite connections re-open lazily per pid).
    previous_store = store_runtime.activate(store) if store is not None else None
    try:
        if jobs == 1:
            for name in order:
                payload = prepare(name)
                if payload is not None:
                    seal(name, _execute_payload(payload))
        else:
            ctx = _pool_context()
            with ctx.Pool(processes=jobs) as pool:
                in_flight: dict[str, Any] = {}
                submitted: set[str] = set()
                while len(records) < len(specs):
                    for name in order:
                        if name in records or name in submitted:
                            continue
                        if any(dep not in records for dep in specs[name].dep_tasks):
                            continue
                        payload = prepare(name)
                        if payload is None:
                            continue
                        submitted.add(name)
                        in_flight[name] = pool.apply_async(
                            _execute_payload, (payload,)
                        )
                    done_now = [n for n, a in in_flight.items() if a.ready()]
                    if not done_now:
                        if in_flight:
                            time.sleep(_POLL_INTERVAL)
                        continue
                    for name in sorted(done_now):
                        seal(name, in_flight.pop(name).get())
    finally:
        if store is not None:
            store_runtime.deactivate(previous_store)

    elapsed = time.perf_counter() - started
    ordered = [records[name] for name in sorted(records)]
    main_snapshot = cachestats.snapshot()
    totals = cachestats.aggregate(main_snapshot)
    for counters in worker_lru_totals.values():
        for fieldname in ("hits", "misses", "currsize"):
            totals[fieldname] += counters[fieldname]
    return EngineReport(
        jobs=jobs,
        jobs_requested=jobs_requested,
        elapsed_s=elapsed,
        records=ordered,
        cache=cache.describe(),
        lru_caches={
            "registered": sorted(
                set(cachestats.registered_names()) | seen_registered
            ),
            "main_process": main_snapshot,
            "workers": {
                name: worker_lru_totals[name]
                for name in sorted(worker_lru_totals)
            },
            "totals": totals,
        },
        solver={
            "totals": {
                name: solver_totals[name] for name in sorted(solver_totals)
            },
        },
        store={
            "enabled": store is not None,
            "backend": store.describe() if store is not None else None,
            "totals": {
                name: store_totals[name] for name in sorted(store_totals)
            },
        },
    )
