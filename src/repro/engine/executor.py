"""The engine scheduler: topological fan-out over a worker pool.

``run_tasks`` takes a registry (or a plain spec mapping), resolves the
dependency closure of the requested tasks, and executes them:

* in-process, in topological order, when ``jobs == 1`` (deterministic
  and debugger-friendly);
* on a ``multiprocessing`` pool otherwise — every task whose
  dependencies are satisfied is in flight simultaneously, up to
  ``jobs`` workers.

Intra-task sharding: a spec that declares a :class:`~repro.engine.spec.
ShardPlan` is expanded at schedule time into N *shard units* plus one
*merge unit* (when the plan's planner, run in the parent, yields at
least two shard descriptors for the effective ``shards`` width).  Shard
units execute like ordinary tasks — same payload shape, same worker
pool, same per-unit delta sampling — and cache independently under
descriptor-salted keys; the merge unit combines the partials in
descriptor order into a result that is bit-identical to the monolithic
one, which is why *dependents* keep hashing the plain (unsalted) task
key: changing the shard width re-runs only the shards and the merge,
never the downstream tasks.

Single-task failure isolation: a task that raises produces an ``error``
record (type, message, traceback) instead of aborting the run, and its
transitive dependents complete as ``skipped`` records.  A failed shard
fails its task the same way.  Results are JSON-roundtripped before
caching so cold and warm runs return bit-identical payloads, and the
final record list is sorted by task name regardless of completion
order.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

from repro.engine import cachestats
from repro.engine.cache import ResultCache
from repro.kernel import stats as solver_stats
from repro.store import ArtifactStore
from repro.store import runtime as store_runtime
from repro.store import stats as store_stats
from repro.engine.dag import topological_order, validate_dag
from repro.engine.spec import (
    TaskRegistry,
    TaskSpec,
    canonical_json,
    resolve_function,
)

__all__ = ["EngineReport", "run_tasks"]

#: Seconds between completion polls of the worker pool.
_POLL_INTERVAL = 0.005

_DELTA_FIELDS = ("lru_delta", "solver_delta", "store_delta")


@dataclass
class EngineReport:
    """The outcome of one engine run."""

    jobs: int
    elapsed_s: float
    records: list[dict[str, Any]]
    cache: dict[str, Any]
    lru_caches: dict[str, Any] = field(default_factory=dict)
    solver: dict[str, Any] = field(default_factory=dict)
    store: dict[str, Any] = field(default_factory=dict)
    #: The pre-cap ``--jobs`` request; equals ``jobs`` unless the run
    #: was capped at the host's CPU count.
    jobs_requested: int = 0
    #: Shard execution summary: ``{"width": N, "tasks": {name: {...}}}``
    #: with per-task shard count, per-shard walls and the merge wall.
    shards: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.jobs_requested:
            self.jobs_requested = self.jobs

    @property
    def ok(self) -> bool:
        return all(record["status"] == "ok" for record in self.records)

    def record_for(self, name: str) -> dict[str, Any]:
        for record in self.records:
            if record["task"] == name:
                return record
        raise KeyError(f"no record for task {name!r}")

    def counts(self) -> dict[str, int]:
        counts = {"ok": 0, "error": 0, "skipped": 0}
        for record in self.records:
            counts[record["status"]] = counts.get(record["status"], 0) + 1
        return counts

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "engine": {
                "jobs": self.jobs,
                "jobs_requested": self.jobs_requested,
                "elapsed_s": round(self.elapsed_s, 6),
                "tasks_total": len(self.records),
                "tasks": self.counts(),
            },
            "cache": self.cache,
            "lru_caches": self.lru_caches,
            "solver": self.solver,
            "store": self.store,
            "shards": self.shards,
            "tasks": self.records,
        }


def _json_roundtrip(value: Any) -> Any:
    """Normalise a task result to its JSON image.

    Guarantees warm-cache payloads (read back from disk) are identical
    to cold-run payloads, and rejects non-serialisable results early.
    """
    import json

    return json.loads(canonical_json(value))


def _execute_payload(payload: dict[str, Any]) -> dict[str, Any]:
    """Run one unit (task, shard or merge); always returns a record,
    never raises.

    Top-level so it is picklable for the worker pool.  ``payload``
    carries only plain data: the function is re-resolved from its dotted
    path inside the worker.
    """
    name = payload["task"]
    before = cachestats.snapshot()
    solver_before = solver_stats.snapshot()
    store_before = store_stats.snapshot()
    start = time.perf_counter()
    try:
        fn = resolve_function(payload["fn"])
        result = fn(**payload["args"], **payload["dep_results"])
        result = _json_roundtrip(result)
        status, error = "ok", None
    except Exception as exc:  # noqa: BLE001 — isolation is the point
        status, result = "error", None
        error = {
            "type": type(exc).__name__,
            "message": str(exc),
            "traceback": traceback.format_exc(),
        }
    wall = time.perf_counter() - start
    record = {
        "task": name,
        "status": status,
        "result": result,
        "error": error,
        "wall_time_s": round(wall, 6),
        "args_bytes": len(canonical_json(payload["args"])),
        "result_bytes": len(canonical_json(result)) if result is not None else 0,
        "lru_delta": cachestats.diff(before, cachestats.snapshot()),
        # Names registered *in the executing process* — with lazy task
        # imports and a worker pool, the parent process may never see
        # these sites, so the record is the only place they surface.
        "lru_registered": cachestats.registered_names(),
        "solver_delta": solver_stats.diff(solver_before, solver_stats.snapshot()),
        "store_delta": store_stats.diff(store_before, store_stats.snapshot()),
    }
    return record


def _skipped_record(name: str, failed_deps: list[str]) -> dict[str, Any]:
    return {
        "task": name,
        "status": "skipped",
        "result": None,
        "error": {
            "type": "SkippedDependency",
            "message": f"dependency failed or was skipped: {failed_deps}",
            "traceback": None,
        },
        "wall_time_s": 0.0,
        "args_bytes": 0,
        "result_bytes": 0,
        "cache": "none",
        "lru_delta": {},
        "lru_registered": [],
        "solver_delta": {},
        "store_delta": {},
    }


def _zeroed_hit(cached: dict[str, Any]) -> dict[str, Any]:
    """A cache-hit view of a stored record.

    Stale execution-process details must not leak into this run's
    report: a hit did no cache or solver work.
    """
    record = dict(cached)
    record["cache"] = "hit"
    record["lru_delta"] = {}
    record["lru_registered"] = []
    record["solver_delta"] = {}
    record["store_delta"] = {}
    return record


def _merge_delta(total: dict[str, Any], delta: Mapping[str, Any]) -> None:
    """Fold one flat or one-level-nested counter delta into ``total``."""
    for name, value in delta.items():
        if isinstance(value, Mapping):
            bucket = total.setdefault(name, {})
            for inner, amount in value.items():
                bucket[inner] = bucket.get(inner, 0) + amount
        else:
            total[name] = total.get(name, 0) + value


class _ShardState:
    """Bookkeeping for one sharded task between expansion and merge."""

    __slots__ = (
        "descriptors",
        "dep_results",
        "storage_key",
        "shard_keys",
        "partials",
        "shard_records",
        "pending",
        "failed",
    )

    def __init__(
        self,
        descriptors: list[Any],
        dep_results: dict[str, Any],
        storage_key: str,
        shard_keys: list[str],
    ) -> None:
        self.descriptors = descriptors
        self.dep_results = dep_results
        self.storage_key = storage_key
        self.shard_keys = shard_keys
        self.partials: list[Any] = [None] * len(descriptors)
        self.shard_records: dict[int, dict[str, Any]] = {}
        self.pending: set[int] = set()
        self.failed = False

    def attribution(self) -> list[dict[str, Any]]:
        """Per-shard summary rows for the merge record / run report."""
        rows = []
        for index in sorted(self.shard_records):
            record = self.shard_records[index]
            rows.append(
                {
                    "index": index,
                    "status": record["status"],
                    "cache": record.get("cache", "none"),
                    "wall_time_s": record["wall_time_s"],
                    "solver_delta": record.get("solver_delta", {}),
                    "store_delta": record.get("store_delta", {}),
                }
            )
        return rows

    def fold_into(self, record: dict[str, Any]) -> None:
        """Aggregate the shard deltas into ``record`` (the merge record).

        After folding, the record's counter deltas are Σ(shard deltas) +
        the merge's own deltas — for pure-enumeration counters that sum
        equals the monolithic task's deltas exactly (duplicated shard
        work is attributed to ``shard_overhead_ops``), so run totals and
        the bench_smoke gates see one task, not N.
        """
        registered = set(record.get("lru_registered", ()))
        for fieldname in _DELTA_FIELDS:
            total: dict[str, Any] = {}
            for index in sorted(self.shard_records):
                _merge_delta(total, self.shard_records[index].get(fieldname, {}))
            _merge_delta(total, record.get(fieldname, {}))
            record[fieldname] = total
        for shard_record in self.shard_records.values():
            registered.update(shard_record.get("lru_registered", ()))
        record["lru_registered"] = sorted(registered)


def _worker_init(store: ArtifactStore | None) -> None:
    """Pool initializer: arm process-global state in every worker.

    Under ``fork`` this is belt-and-braces (workers inherit the parent's
    activated store; the stats locks re-arm themselves via their pid
    guards).  Under ``spawn`` it is load-bearing: the worker is a fresh
    interpreter, so the artifact store must be re-activated from the
    pickled backend for warm-starts to work at all.
    """
    if store is not None:
        store_runtime.activate(store)


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork (cheap, inherits the imported solver stack).

    ``REPRO_MP_CONTEXT`` overrides the start method (``spawn`` /
    ``forkserver``), for platforms where fork is unavailable or unsafe
    and for the spawn-mode test suite.  The value only picks how worker
    processes start; payloads, results and cache keys are identical
    under every method, so it cannot make results irreproducible.
    """
    # repro-lint: allow[determinism] config-only env read at the pool boundary
    override = os.environ.get("REPRO_MP_CONTEXT")
    if override:
        return multiprocessing.get_context(override)
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover — non-POSIX fallback
        return multiprocessing.get_context()


def run_tasks(
    registry: TaskRegistry | Mapping[str, TaskSpec],
    *,
    jobs: int = 1,
    shards: int | None = None,
    cache: ResultCache | None = None,
    store: ArtifactStore | None = None,
    only: Iterable[str] | None = None,
    on_record: Callable[[dict[str, Any]], None] | None = None,
) -> EngineReport:
    """Execute a task set and return the :class:`EngineReport`.

    ``only`` restricts the run to the named tasks plus their transitive
    dependencies.  ``shards`` caps the width of intra-task shard plans;
    ``None`` defaults to the effective (post-cap) ``jobs``, so a
    sequential run stays monolithic unless sharding is requested
    explicitly.  ``cache`` defaults to a fresh :class:`ResultCache`
    over ``.repro-cache/``; pass ``ResultCache(enabled=False)`` for
    ``--no-cache`` semantics.  ``store``, when given, is activated as
    the process-global artifact store for the duration of the run —
    *before* any worker pool forks, so workers inherit it and
    warm-start from the same backend (the previous global store is
    restored on exit).  ``on_record`` is invoked once per finished
    task, in completion order (progress reporting).
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if shards is not None and shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    jobs_requested = jobs
    # More workers than cores just adds fork cost and scheduler churn;
    # cap silently here, report the cap in the run summary.  The shard
    # width is *not* capped: explicit narrow-machine sharding is how the
    # differential tests exercise merge determinism.
    jobs = min(jobs, os.cpu_count() or 1)
    shard_width = shards if shards is not None else jobs
    if isinstance(registry, TaskRegistry):
        specs = (
            registry.closure(list(only)) if only is not None else registry.specs()
        )
    else:
        specs = dict(registry)
        if only is not None:
            specs = TaskRegistry(iter(specs.values())).closure(list(only))
    validate_dag(specs)
    order = topological_order(specs)
    cache = cache if cache is not None else ResultCache()

    records: dict[str, dict[str, Any]] = {}
    keys: dict[str, str] = {}
    shard_states: dict[str, _ShardState] = {}
    #: unit id → ("task" | "shard" | "merge", task name, shard index).
    unit_info: dict[str, tuple[str, str, int]] = {}
    shard_summary: dict[str, dict[str, Any]] = {}
    started = time.perf_counter()

    # Run-wide accumulators.  With a worker pool, executed records are the
    # *only* channel for worker-process cache/solver activity (lazy task
    # imports mean the parent process typically registers nothing), so the
    # per-record deltas are merged here in the parent.  Sharded tasks
    # contribute exactly once: their shard deltas are folded into the
    # merge record before it is absorbed.
    worker_lru_totals: dict[str, dict[str, int]] = {}
    seen_registered: set[str] = set()
    solver_totals: dict[str, int] = {}
    pooled = jobs > 1

    store_totals: dict[str, int] = {}

    def absorb(record: dict[str, Any]) -> None:
        """Fold one executed record's deltas into the run accumulators."""
        seen_registered.update(record.get("lru_registered", ()))
        for counter, amount in record.get("solver_delta", {}).items():
            solver_totals[counter] = solver_totals.get(counter, 0) + amount
        for counter, amount in record.get("store_delta", {}).items():
            store_totals[counter] = store_totals.get(counter, 0) + amount
        if not pooled:
            # Sequential execution happened in *this* process: the main
            # snapshot already contains these deltas; merging them again
            # would double-count.
            return
        for cache_name, counters in record.get("lru_delta", {}).items():
            bucket = worker_lru_totals.setdefault(
                cache_name, {"hits": 0, "misses": 0, "currsize": 0}
            )
            for fieldname in ("hits", "misses", "currsize"):
                bucket[fieldname] += counters.get(fieldname, 0)

    def finish(name: str, record: dict[str, Any]) -> None:
        records[name] = record
        if on_record is not None:
            on_record(record)

    def plan_shards(
        spec: TaskSpec, dep_keys: dict[str, str]
    ) -> tuple[list[Any], str, list[str]] | None:
        """Run the planner in the parent; None keeps the task monolithic."""
        planner = resolve_function(spec.shards.planner, task=spec.name)
        descriptors = _json_roundtrip(
            list(planner(**spec.args, width=shard_width))
        )
        if len(descriptors) < 2:
            return None
        # The canonical plan (descriptors in order) fingerprints the
        # execution shape: merge and shard records are stored under
        # plan-salted keys, so a width change re-runs shards + merge
        # while dependents — which hash the unsalted key — stay cached.
        plan_extra = canonical_json({"plan": descriptors})
        storage_key = cache.key_for(spec, dep_keys, extra=plan_extra)
        shard_keys = [
            cache.key_for(
                spec,
                dep_keys,
                extra=canonical_json(
                    {"of": len(descriptors), "shard": [index, descriptor]}
                ),
            )
            for index, descriptor in enumerate(descriptors)
        ]
        return descriptors, storage_key, shard_keys

    def merge_unit(name: str) -> tuple[str, dict[str, Any]]:
        spec = specs[name]
        state = shard_states[name]
        unit = f"{name}#merge"
        unit_info[unit] = ("merge", name, -1)
        return unit, {
            "task": name,
            "fn": spec.shards.merge_fn,
            "args": dict(spec.args),
            "dep_results": {
                **state.dep_results,
                "shards": list(state.partials),
            },
        }

    def prepare(name: str) -> list[tuple[str, dict[str, Any]]]:
        """Cache-probe a ready task; return the units that must run."""
        spec = specs[name]
        failed = [
            dep
            for dep in spec.dep_tasks
            if records[dep]["status"] != "ok"
        ]
        if failed:
            finish(name, _skipped_record(name, failed))
            return []
        dep_keys = {
            param: keys[dep] for param, dep in sorted(spec.deps.items())
        }
        # Dependents always hash the plain key — the sharded commit is
        # bit-identical to the monolithic result by contract.
        key = cache.key_for(spec, dep_keys)
        keys[name] = key
        dep_results = {
            param: records[dep]["result"] for param, dep in spec.deps.items()
        }
        plan = None
        if spec.shards is not None and shard_width > 1:
            try:
                plan = plan_shards(spec, dep_keys)
            except Exception as exc:  # noqa: BLE001 — isolation, as for tasks
                record = _skipped_record(name, [])
                record["status"] = "error"
                record["error"] = {
                    "type": type(exc).__name__,
                    "message": f"shard planner failed: {exc}",
                    "traceback": traceback.format_exc(),
                }
                finish(name, record)
                return []
        if plan is None:
            cached = cache.load(key)
            if cached is not None and cached.get("status") == "ok":
                finish(name, _zeroed_hit(cached))
                return []
            unit_info[name] = ("task", name, -1)
            return [
                (
                    name,
                    {
                        "task": name,
                        "fn": spec.fn,
                        "args": dict(spec.args),
                        "dep_results": dep_results,
                    },
                )
            ]
        descriptors, storage_key, shard_keys = plan
        cached = cache.load(storage_key)
        if cached is not None and cached.get("status") == "ok":
            finish(name, _zeroed_hit(cached))
            shard_summary[name] = {
                "count": len(descriptors),
                "cache": "hit",
                "effective_width": len(descriptors),
                "clamped": len(descriptors) < shard_width,
            }
            return []
        state = _ShardState(descriptors, dep_results, storage_key, shard_keys)
        shard_states[name] = state
        units = []
        total = len(descriptors)
        for index, descriptor in enumerate(descriptors):
            shard_cached = cache.load(shard_keys[index])
            if shard_cached is not None and shard_cached.get("status") == "ok":
                hit = _zeroed_hit(shard_cached)
                state.shard_records[index] = hit
                state.partials[index] = hit["result"]
                continue
            unit = f"{name}#{index}/{total}"
            unit_info[unit] = ("shard", name, index)
            state.pending.add(index)
            units.append(
                (
                    unit,
                    {
                        "task": unit,
                        "fn": spec.shards.shard_fn,
                        "args": {**spec.args, "shard": descriptor},
                        "dep_results": dep_results,
                    },
                )
            )
        if not state.pending:
            # Every shard was a cache hit; go straight to the merge.
            return [merge_unit(name)]
        return units

    def seal_task(name: str, record: dict[str, Any]) -> None:
        record["cache"] = "miss" if cache.enabled else "bypass"
        record["key"] = keys[name]
        absorb(record)
        if record["status"] == "ok":
            cache.store(keys[name], record)
        finish(name, record)

    def seal_merge(name: str, record: dict[str, Any]) -> None:
        state = shard_states[name]
        state.fold_into(record)
        record["cache"] = "miss" if cache.enabled else "bypass"
        record["key"] = state.storage_key
        record["shards"] = state.attribution()
        shard_summary[name] = {
            "count": len(state.descriptors),
            "effective_width": len(state.descriptors),
            "clamped": len(state.descriptors) < shard_width,
            "merge_wall_s": record["wall_time_s"],
            "shard_walls_s": [row["wall_time_s"] for row in record["shards"]],
            "shard_cache": [row["cache"] for row in record["shards"]],
        }
        absorb(record)
        if record["status"] == "ok":
            cache.store(state.storage_key, record)
        finish(name, record)

    def fail_shards(name: str) -> None:
        """Commit an error record for a task whose shard(s) failed."""
        state = shard_states[name]
        failed = [
            index
            for index in sorted(state.shard_records)
            if state.shard_records[index]["status"] != "ok"
        ]
        first = state.shard_records[failed[0]]["error"]
        record = {
            "task": name,
            "status": "error",
            "result": None,
            "error": {
                "type": "ShardFailure",
                "message": (
                    f"shard(s) {failed} of {len(state.descriptors)} failed: "
                    f"{first['type']}: {first['message']}"
                ),
                "traceback": first["traceback"],
            },
            "wall_time_s": 0.0,
            "args_bytes": 0,
            "result_bytes": 0,
            "cache": "none",
            "lru_delta": {},
            "lru_registered": [],
            "solver_delta": {},
            "store_delta": {},
        }
        state.fold_into(record)
        record["shards"] = state.attribution()
        shard_summary[name] = {
            "count": len(state.descriptors),
            "effective_width": len(state.descriptors),
            "clamped": len(state.descriptors) < shard_width,
            "failed": failed,
            "shard_walls_s": [row["wall_time_s"] for row in record["shards"]],
        }
        absorb(record)
        finish(name, record)

    def complete(
        unit: str, record: dict[str, Any]
    ) -> list[tuple[str, dict[str, Any]]]:
        """Commit one executed unit; return follow-up units to run."""
        kind, name, index = unit_info.pop(unit)
        if kind == "task":
            seal_task(name, record)
            return []
        if kind == "merge":
            seal_merge(name, record)
            return []
        state = shard_states[name]
        record["cache"] = "miss" if cache.enabled else "bypass"
        record["key"] = state.shard_keys[index]
        if record["status"] == "ok":
            cache.store(state.shard_keys[index], record)
            state.partials[index] = record["result"]
        else:
            state.failed = True
        state.shard_records[index] = record
        state.pending.discard(index)
        if state.pending:
            return []
        if state.failed:
            fail_shards(name)
            return []
        return [merge_unit(name)]

    # Activate the artifact store in the parent *before* the pool
    # forks: workers inherit the global and hydrate from the shared
    # backend (sqlite connections re-open lazily per pid).
    previous_store = store_runtime.activate(store) if store is not None else None
    try:
        if jobs == 1:
            for name in order:
                queue = prepare(name)
                while queue:
                    unit, payload = queue.pop(0)
                    queue.extend(complete(unit, _execute_payload(payload)))
        else:
            ctx = _pool_context()
            with ctx.Pool(
                processes=jobs, initializer=_worker_init, initargs=(store,)
            ) as pool:
                in_flight: dict[str, Any] = {}
                submitted: set[str] = set()
                while len(records) < len(specs):
                    for name in order:
                        if name in records or name in submitted:
                            continue
                        if any(dep not in records for dep in specs[name].dep_tasks):
                            continue
                        submitted.add(name)
                        for unit, payload in prepare(name):
                            in_flight[unit] = pool.apply_async(
                                _execute_payload, (payload,)
                            )
                    done_now = [u for u, a in in_flight.items() if a.ready()]
                    if not done_now:
                        if in_flight:
                            time.sleep(_POLL_INTERVAL)
                        continue
                    for unit in sorted(done_now):
                        for follow_up, payload in complete(
                            unit, in_flight.pop(unit).get()
                        ):
                            in_flight[follow_up] = pool.apply_async(
                                _execute_payload, (payload,)
                            )
    finally:
        if store is not None:
            store_runtime.deactivate(previous_store)

    elapsed = time.perf_counter() - started
    ordered = [records[name] for name in sorted(records)]
    main_snapshot = cachestats.snapshot()
    totals = cachestats.aggregate(main_snapshot)
    for counters in worker_lru_totals.values():
        for fieldname in ("hits", "misses", "currsize"):
            totals[fieldname] += counters[fieldname]
    return EngineReport(
        jobs=jobs,
        jobs_requested=jobs_requested,
        elapsed_s=elapsed,
        records=ordered,
        cache=cache.describe(),
        lru_caches={
            "registered": sorted(
                set(cachestats.registered_names()) | seen_registered
            ),
            "main_process": main_snapshot,
            "workers": {
                name: worker_lru_totals[name]
                for name in sorted(worker_lru_totals)
            },
            "totals": totals,
        },
        solver={
            "totals": {
                name: solver_totals[name] for name in sorted(solver_totals)
            },
        },
        store={
            "enabled": store is not None,
            "backend": store.describe() if store is not None else None,
            "totals": {
                name: store_totals[name] for name in sorted(store_totals)
            },
        },
        shards={
            "width": shard_width,
            "requested": shards,
            "tasks": {
                name: shard_summary[name] for name in sorted(shard_summary)
            },
        },
    )
