"""The 23 experiments E01–E23 as pure engine tasks, plus the default DAG.

Each ``run_eXX`` function reproduces the row-set of the corresponding
benchmark module (see EXPERIMENTS.md) and returns a JSON-serialisable
record with the measured facts *and* a ``"passed"`` verdict mirroring
the benchmark's assertions.  The benchmark modules call these functions
directly; the CLI (``python -m repro run``) executes them through the
scheduler with caching and parallelism.

Functions whose experiment consumes another task's result take that
result as a parameter (e.g. ``run_e03(pow2_pairs)``); the registry built
by :func:`build_default_registry` wires those parameters to the
primitive tasks of :mod:`repro.engine.primitives`.
"""

from __future__ import annotations

from typing import Any

from repro.engine.spec import ShardPlan, TaskRegistry

__all__ = ["build_default_registry", "EXPERIMENT_NAMES"]

_HEAVY_P, _HEAVY_Q = 12, 14

#: Version salt shared by every task in the default registry.  Bumped to
#: "2" when the interned-factor kernel replaced the naive solver and
#: evaluator underneath the task functions: results are bit-identical,
#: but records gained solver_delta/lru_registered fields and several
#: grids grew (E01 max_i 5→6, E02 max_length 4→5), so pre-kernel cache
#: entries must not satisfy post-kernel runs.
_ENGINE_VERSION = "2"

#: Per-task overrides for tasks whose semantics path changed after the
#: shared salt last moved.  "3" marked the batched-sweep generation:
#: E02/E05 membership loops route through repro.fc.sweep, E20 runs on
#: the kernel-backed FO[EQ] solver + compiled position programs (and
#: now consumes prim/equiv/anbn-k2 instead of recomputing it), and
#: prim/relation/* evaluates ψ via the sweep.  The following bump
#: marked the sweep soundness fix (quantifier scans restricted to the
#: word's factor universe).  The latest bump marks the relational-sweep
#: generation: sweep pools/scans run on dense bitsets
#: (repro.kernel.bitset), E16 routes ⟦φ⟧(d) through
#: satisfying_tuples/SweepProgram.relation, E18/E23 evaluate extractors
#: through the cross-call match_spans memo, and records gain the
#: sweep_relation_* counter deltas — results are bit-identical, but
#: entries from the frozenset-era paths must not satisfy bitset runs.
#: The latest E01/E02/E05 (and relation-task) bumps mark the sharding
#: generation: those tasks declare shard plans, so their records can
#: now carry per-shard attribution and live under plan-salted keys —
#: results stay bit-identical, but pre-shard entries must not satisfy
#: post-shard monolithic runs whose task functions were refactored
#: around the shared shard helpers.
_TASK_VERSIONS = {
    "E01": "3",
    "E02": "6",
    "E05": "7",
    "E16": "3",
    "E18": "3",
    "E20": "5",
    "E23": "3",
}
_RELATION_TASK_VERSION = "6"


# ---------------------------------------------------------------------------
# E01 — Example 3.3: Spoiler wins the 2-round game on a^{2i} vs a^{2i-1}.


def _e01_row(i: int) -> dict[str, Any]:
    """One grid row of E01; pairs for distinct ``i`` share no solver
    state, so any ``i``-partition reproduces the monolithic counters."""
    from repro.ef.equivalence import distinguishing_rank, equiv_k
    from repro.ef.game import Move
    from repro.ef.solver import GameSolver
    from repro.fc.structures import word_structure

    w, v = "a" * (2 * i), "a" * (2 * i - 1)
    not_equiv_2 = not equiv_k(w, v, 2, alphabet="a")
    rank = distinguishing_rank(w, v, 2, alphabet="a")
    solver = GameSolver(word_structure(w, "a"), word_structure(v, "a"))
    opening_kills = (
        solver.winning_response(2, frozenset(), Move("A", w)) is None
    )
    return {
        "pair": f"a^{2 * i} vs a^{2 * i - 1}",
        "not_equiv_2": not_equiv_2,
        "rank": rank,
        "opening_wins": opening_kills,
    }


def run_e01(max_i: int = 6) -> dict[str, Any]:
    rows = [_e01_row(i) for i in range(1, max_i + 1)]
    return {
        "rows": rows,
        "passed": all(r["not_equiv_2"] and r["opening_wins"] for r in rows),
    }


def plan_e01(max_i: int = 6, *, width: int) -> list[dict[str, Any]]:
    """Shard plan for E01: round-robin the exponent grid.

    Solver cost grows with ``i``, so dealing (rather than chunking)
    balances the lanes; see :func:`repro.engine.shards.round_robin`.
    """
    from repro.engine.shards import round_robin

    return [
        {"i_values": lane}
        for lane in round_robin(list(range(1, max_i + 1)), width)
    ]


def run_e01_shard(max_i: int = 6, *, shard: dict[str, Any]) -> dict[str, Any]:
    return {"rows": [[i, _e01_row(i)] for i in shard["i_values"]]}


def run_e01_merge(
    max_i: int = 6, *, shards: list[dict[str, Any]]
) -> dict[str, Any]:
    indexed = sorted(
        (pair for part in shards for pair in part["rows"]),
        key=lambda pair: pair[0],
    )
    rows = [row for _i, row in indexed]
    return {
        "rows": rows,
        "passed": all(r["not_equiv_2"] and r["opening_wins"] for r in rows),
    }


# ---------------------------------------------------------------------------
# E02 — Theorem 3.4: ≡_k ⟺ agreement on an FC(k) sentence pool.


def _e02_pool_words(max_length: int, pool_rank: int):
    from repro.fc.enumeration import sentence_pool
    from repro.words.generators import words_up_to

    pool = list(sentence_pool(pool_rank, "ab", max_atoms=1))
    words = list(words_up_to("ab", max_length))
    return pool, words


def _e02_scan(words, signatures, pool_rank, outer_indices):
    """The ≡_k-vs-signature pair loop over the given outer rows.

    Pairs for distinct outer words share no solver state (``solver_for``
    memoises per pair), so any partition of the outer indices reproduces
    the monolithic counters exactly.
    """
    from repro.ef.equivalence import equiv_k

    pairs = consistent = separated_confirmed = 0
    violations = []
    for i in outer_indices:
        w = words[i]
        for v in words[i + 1 :]:
            pairs += 1
            same_sig = signatures[w] == signatures[v]
            if equiv_k(w, v, pool_rank, alphabet="ab"):
                if same_sig:
                    consistent += 1
                else:
                    violations.append([w, v])
            elif not same_sig:
                separated_confirmed += 1
    return pairs, consistent, separated_confirmed, violations


def run_e02(max_length: int = 5, pool_rank: int = 1) -> dict[str, Any]:
    from repro.fc.semantics import language_signatures

    pool, words = _e02_pool_words(max_length, pool_rank)
    # One sweep family for the whole pool: every sentence shares the
    # word tables and the global candidate/atom memos (repro.fc.sweep).
    signatures = dict(language_signatures(pool, "ab", words))
    pairs, consistent, separated_confirmed, violations = _e02_scan(
        words, signatures, pool_rank, range(len(words))
    )
    return {
        "pool_size": len(pool),
        "words": len(words),
        "pairs": pairs,
        "consistent": consistent,
        "separated_confirmed": separated_confirmed,
        "violations": violations,
        "passed": not violations,
    }


def plan_e02(
    max_length: int = 5, pool_rank: int = 1, *, width: int
) -> list[dict[str, Any]]:
    """Shard plan for E02: deal the pair loop's outer rows into lanes.

    The ≡_k pair loop dominates E02's wall (the signature sweep is an
    order of magnitude cheaper), so the lanes partition the pairs and
    every lane repeats the sweep — lane 0 as real work, the others
    attributed to ``shard_overhead_ops``.  Capped at 8 lanes: each
    extra lane duplicates one full sweep.
    """
    words = 2 ** (max_length + 1) - 1  # |{a,b}^{≤max_length}|
    lanes = max(1, min(width, 8, words))
    return [{"lane": lane, "lanes": lanes} for lane in range(lanes)]


def run_e02_shard(
    max_length: int = 5, pool_rank: int = 1, *, shard: dict[str, Any]
) -> dict[str, Any]:
    from repro.fc.semantics import language_signatures
    from repro.kernel import stats as kernel_stats

    pool, words = _e02_pool_words(max_length, pool_rank)
    if shard["lane"] == 0:
        signatures = dict(language_signatures(pool, "ab", words))
    else:
        # Every lane needs the full signature table; only lane 0 owns
        # it, so the other lanes' sweeps are attributed as duplication.
        with kernel_stats.shard_overhead():
            signatures = dict(language_signatures(pool, "ab", words))
    pairs, consistent, separated_confirmed, violations = _e02_scan(
        words,
        signatures,
        pool_rank,
        range(shard["lane"], len(words), shard["lanes"]),
    )
    return {
        "pool_size": len(pool),
        "words": len(words),
        "pairs": pairs,
        "consistent": consistent,
        "separated_confirmed": separated_confirmed,
        "violations": violations,
    }


def run_e02_merge(
    max_length: int = 5, pool_rank: int = 1, *, shards: list[dict[str, Any]]
) -> dict[str, Any]:
    from repro.fc.semantics import merge_shard_rows

    # Each outer word lives in exactly one lane, so merging violation
    # rows on the outer word restores the monolithic (i, j) order.
    violations = merge_shard_rows([part["violations"] for part in shards])
    return {
        "pool_size": shards[0]["pool_size"],
        "words": shards[0]["words"],
        "pairs": sum(part["pairs"] for part in shards),
        "consistent": sum(part["consistent"] for part in shards),
        "separated_confirmed": sum(
            part["separated_confirmed"] for part in shards
        ),
        "violations": violations,
        "passed": not violations,
    }


# ---------------------------------------------------------------------------
# E03 — Lemma 3.6: minimal unary pairs + {2ⁿ} non-semi-linearity.


def run_e03(pow2_pairs: dict[str, Any], probe_bound: int = 512) -> dict[str, Any]:
    from repro.core.pow2 import pow2_semilinearity_evidence

    evidence = pow2_semilinearity_evidence(probe_bound)
    pairs = {k: tuple(v) for k, v in pow2_pairs["pairs"].items()}
    return {
        "minimal_pairs": pow2_pairs["pairs"],
        "semilinearity": {
            "bound": evidence["bound"],
            "members": evidence["members"],
            "eventually_periodic": evidence["eventually_periodic"],
            "gaps_strictly_increasing": evidence["gaps_strictly_increasing"],
        },
        "passed": (
            pairs == {"0": (1, 2), "1": (3, 4), "2": (12, 14)}
            and evidence["eventually_periodic"] is None
        ),
    }


# ---------------------------------------------------------------------------
# E04 — Proposition 3.7: ≡_k is not a congruence.


def run_e04(pow2_pairs: dict[str, Any]) -> dict[str, Any]:
    from repro.ef.equivalence import equiv_k
    from repro.fc.builders import phi_vbv
    from repro.fc.semantics import defines_language_member
    from repro.fc.syntax import quantifier_rank

    p, q = pow2_pairs["pairs"]["2"]
    u, v = "a" * p, "a" * q
    tail = "b" + u
    phi = phi_vbv()
    facts = {
        "u_equiv_v": equiv_k(u, v, 2, "ab"),
        "tail_equiv_tail": equiv_k(tail, tail, 2, "ab"),
        "u_tail_models_phi": defines_language_member(u + tail, phi, "ab"),
        "v_tail_models_phi": defines_language_member(v + tail, phi, "ab"),
        "quantifier_rank": quantifier_rank(phi),
    }
    facts["passed"] = (
        facts["u_equiv_v"]
        and facts["tail_equiv_tail"]
        and facts["u_tail_models_phi"]
        and not facts["v_tail_models_phi"]
        and facts["quantifier_rank"] == 5
    )
    facts["p"], facts["q"] = p, q
    return facts


# ---------------------------------------------------------------------------
# E05 — Proposition 4.1: L_fib ∈ L(FC).


def run_e05(
    max_length: int = 8, long_members_up_to: int = 8, power_free_up_to: int = 14
) -> dict[str, Any]:
    from repro.fc.builders import phi_fib
    from repro.fc.semantics import defines_language_members
    from repro.words.fibonacci import (
        fibonacci_word,
        is_fourth_power_free,
        is_l_fib,
        l_fib_word,
    )
    from repro.words.generators import words_up_to

    phi = phi_fib()
    mismatches = []
    total = members = 0
    # Batched sweep over the grid: φ_fib is compiled once and the
    # prefix-tree tables/candidate memos are shared across all 9 841
    # words (repro.fc.sweep) — this loop was the bench's critical path.
    memberships = defines_language_members(
        phi, "abc", words_up_to("abc", max_length)
    )
    for word, predicted in memberships:
        total += 1
        actual = is_l_fib(word)
        members += actual
        if predicted != actual:
            mismatches.append(word)
    # Each L_fib word is a prefix of the next, so one batched sweep
    # shares every factor table along the chain.
    long_words = [l_fib_word(n) for n in range(long_members_up_to)]
    long_members = [
        {"n": n, "length": len(word), "accepted": accepted}
        for n, (word, accepted) in enumerate(
            defines_language_members(phi, "abc", long_words)
        )
    ]
    power_free = [
        {"n": n, "fourth_power_free": is_fourth_power_free(fibonacci_word(n))}
        for n in range(power_free_up_to)
    ]
    return {
        "words_checked": total,
        "members": members,
        "mismatches": mismatches,
        "long_members": long_members,
        "fourth_power_free": power_free,
        "passed": (
            not mismatches
            and members >= 2
            and all(row["accepted"] for row in long_members)
            and all(row["fourth_power_free"] for row in power_free)
        ),
    }


def plan_e05(
    max_length: int = 8,
    long_members_up_to: int = 8,
    power_free_up_to: int = 14,
    *,
    width: int,
) -> list[dict[str, Any]]:
    """Shard plan for E05: prefix-tree subtrees of the {a,b,c} grid.

    The 9 841-word membership sweep is the task's critical path; the
    long-member chain and the power-free probes ride on the merge.
    """
    from repro.engine.shards import subtree_plan

    return subtree_plan("abc", max_length, width)


def run_e05_shard(
    max_length: int = 8,
    long_members_up_to: int = 8,
    power_free_up_to: int = 14,
    *,
    shard: dict[str, Any],
) -> dict[str, Any]:
    from repro.fc.builders import phi_fib
    from repro.fc.semantics import defines_language_members_shard
    from repro.words.fibonacci import is_l_fib

    mismatches = []
    total = members = 0
    memberships = defines_language_members_shard(
        phi_fib(), "abc", max_length, shard
    )
    for word, predicted in memberships:
        total += 1
        actual = is_l_fib(word)
        members += actual
        if predicted != actual:
            mismatches.append(word)
    return {
        "words_checked": total,
        "members": members,
        "mismatches": mismatches,
    }


def run_e05_merge(
    max_length: int = 8,
    long_members_up_to: int = 8,
    power_free_up_to: int = 14,
    *,
    shards: list[dict[str, Any]],
) -> dict[str, Any]:
    from repro.fc.builders import phi_fib
    from repro.fc.semantics import defines_language_members, merge_shard_rows
    from repro.words.fibonacci import (
        fibonacci_word,
        is_fourth_power_free,
        l_fib_word,
    )

    total = sum(part["words_checked"] for part in shards)
    members = sum(part["members"] for part in shards)
    mismatches = merge_shard_rows([part["mismatches"] for part in shards])
    # The long-member chain and power-free probes run here exactly as in
    # the monolithic task (a separate sweep family in both cases), so
    # the merge's real counters match the monolithic tail's.
    phi = phi_fib()
    long_words = [l_fib_word(n) for n in range(long_members_up_to)]
    long_members = [
        {"n": n, "length": len(word), "accepted": accepted}
        for n, (word, accepted) in enumerate(
            defines_language_members(phi, "abc", long_words)
        )
    ]
    power_free = [
        {"n": n, "fourth_power_free": is_fourth_power_free(fibonacci_word(n))}
        for n in range(power_free_up_to)
    ]
    return {
        "words_checked": total,
        "members": members,
        "mismatches": mismatches,
        "long_members": long_members,
        "fourth_power_free": power_free,
        "passed": (
            not mismatches
            and members >= 2
            and all(row["accepted"] for row in long_members)
            and all(row["fourth_power_free"] for row in power_free)
        ),
    }


# ---------------------------------------------------------------------------
# E06 / E07 — Lemmas 4.2 / 4.3: structural constraints on Duplicator.

_STRATEGY_PAIRS = [
    ["a" * 12, "a" * 14, "a", 2],
    ["a" * 12 + "b", "a" * 14 + "b", "ab", 1],
    ["abab", "abab", "ab", 3],
    ["aabba", "aabba", "ab", 3],
]


def run_e06() -> dict[str, Any]:
    from repro.ef.equivalence import solver_for
    from repro.ef.game import Move

    rows = []
    for w, v, alphabet, k in _STRATEGY_PAIRS:
        solver = solver_for(w, v, alphabet)
        checked = forced = 0
        for factor in sorted(solver.structure_a.universe_factors):
            # round r = 1: condition 1 + |a_1| - 1 < k  ⟺  |a_1| < k.
            if len(factor) >= k:
                continue
            response = solver.winning_response(k, frozenset(), Move("A", factor))
            if response is None:
                continue
            checked += 1
            forced += response == factor
        rows.append(
            {
                "pair": f"{w[:6]}…({len(w)}) vs …({len(v)})",
                "k": k,
                "checked": checked,
                "forced": forced,
            }
        )
    return {
        "rows": rows,
        "passed": all(r["checked"] == r["forced"] for r in rows),
    }


def run_e07() -> dict[str, Any]:
    from repro.ef.equivalence import solver_for
    from repro.ef.game import Move

    rows = []
    for w, v, alphabet, k in _STRATEGY_PAIRS:
        if k < 3:
            continue  # the lemma constrains rounds r ≤ k − 2 only
        solver = solver_for(w, v, alphabet)
        checked = mirrored = 0
        for factor in sorted(solver.structure_a.universe_factors):
            is_prefix = w.startswith(factor)
            is_suffix = w.endswith(factor)
            if not (is_prefix or is_suffix):
                continue
            response = solver.winning_response(k, frozenset(), Move("A", factor))
            if response is None:
                continue
            checked += 1
            ok = not (is_prefix and not v.startswith(response)) and not (
                is_suffix and not v.endswith(response)
            )
            mirrored += ok
        rows.append(
            {
                "pair": f"{w[:6]}…({len(w)}) vs …({len(v)})",
                "k": k,
                "checked": checked,
                "mirrored": mirrored,
            }
        )
    return {
        "rows": rows,
        "passed": all(r["checked"] == r["mirrored"] for r in rows),
    }


# ---------------------------------------------------------------------------
# E08 — Lemma 4.4 (Pseudo-Congruence).

_E08_INSTANCES = [
    ["full slack, k=0, r=0", "a" * 12, "bb", "a" * 14, "bb", 0, None],
    ["identity, k=2", "ab", "ba", "ab", "ba", 2, None],
    ["Example 4.5 shape, k=1", "a" * 12, "bbb", "a" * 14, "bbb", 1, 2],
    ["Prop 4.6 shape, k=1", "a" * 14, "ba" * 14, "a" * 12, "ba" * 14, 1, 2],
]


def run_e08() -> dict[str, Any]:
    from repro.core.pseudo_congruence import PseudoCongruenceInstance

    rows = []
    for label, w1, w2, v1, v2, k, lookup in _E08_INSTANCES:
        instance = PseudoCongruenceInstance(w1, w2, v1, v2, k, "ab")
        premises = (
            instance.premises_hold()
            if lookup is None
            else instance.premises_hold(lookup)
        )
        verification = instance.verify_strategy(lookup)
        rows.append(
            {
                "instance": label,
                "r": instance.r,
                "premises": premises,
                "strategy_survives": verification.survived,
                "spoiler_lines": verification.lines_checked,
                "conclusion_exact": instance.verify_conclusion(),
            }
        )
    return {
        "rows": rows,
        "passed": all(
            r["premises"] and r["strategy_survives"] and r["conclusion_exact"]
            for r in rows
        ),
    }


# ---------------------------------------------------------------------------
# E09 / E10 — single-language witness families (Example 4.5, Prop 4.6).


def _witness_summary(report: dict[str, Any]) -> dict[str, Any]:
    return {
        "report": report,
        "passed": report["verdict"] == "confirmed",
    }


def run_e09(anbn: dict[str, Any]) -> dict[str, Any]:
    return _witness_summary(anbn)


def run_e10(l1: dict[str, Any]) -> dict[str, Any]:
    return _witness_summary(l1)


# ---------------------------------------------------------------------------
# E11 — primitive-word lemmas 4.7 / A.1 / D.4.


def run_e11(max_base_length: int = 5, power: int = 3) -> dict[str, Any]:
    from repro.words.factors import iter_factors
    from repro.words.generators import words_up_to
    from repro.words.primitivity import (
        exponent,
        exponent_additivity_defect,
        is_primitive,
        power_factorization,
        primitive_occurrences_in_power,
    )

    bases = [
        w for w in words_up_to("ab", max_base_length) if is_primitive(w)
    ]
    occurrence_checks = factorization_checks = additivity_checks = 0
    failures = []
    for base in bases:
        host = base * power
        offsets = primitive_occurrences_in_power(base, power)
        occurrence_checks += 1
        if offsets != [i * len(base) for i in range(power)]:
            failures.append(["A.1", base])
        for factor in iter_factors(host):
            if factor and exponent(base, factor) >= 1:
                factorization_checks += 1
                decomposition = power_factorization(base, factor)
                if decomposition.rebuild() != factor:
                    failures.append(["4.7", base, factor])
        for cut in range(0, len(host) + 1, 2):
            for end in range(cut, min(cut + 6, len(host)) + 1):
                u, v = host[:cut], host[cut:end]
                additivity_checks += 1
                if exponent_additivity_defect(base, u, v) not in (0, 1):
                    failures.append(["D.4", base, u, v])
    return {
        "bases": len(bases),
        "occurrence_checks": occurrence_checks,
        "factorization_checks": factorization_checks,
        "additivity_checks": additivity_checks,
        "failures": failures,
        "passed": not failures,
    }


# ---------------------------------------------------------------------------
# E12 — Lemma 4.8 (Primitive Power).

_E12_BASES = ["ab", "aab", "aba"]


def run_e12(pow2_pairs: dict[str, Any]) -> dict[str, Any]:
    from repro.core.primitive_power import PrimitivePowerInstance
    from repro.ef.composition import (
        FringePreservingUnaryDuplicator,
        PrimitivePowerDuplicator,
    )
    from repro.ef.equivalence import equiv_k, solver_for
    from repro.ef.game import GameArena
    from repro.ef.strategies import (
        SolverDuplicator,
        exhaustively_verify_duplicator,
    )
    from repro.fc.structures import word_structure

    p, q = pow2_pairs["pairs"]["2"]

    identity_rows = []
    for base in _E12_BASES:
        instance = PrimitivePowerInstance(base, 3, 3, 2, "ab")
        result = instance.verify_strategy(lookup_rounds=0)
        identity_rows.append(
            {
                "base": base,
                "survives": result.survived,
                "lines": result.lines_checked,
            }
        )

    fringe_rows = []
    for base in _E12_BASES:
        def factory(base=base):
            return PrimitivePowerDuplicator(
                base, p, q, FringePreservingUnaryDuplicator(p, q)
            )

        arena = GameArena(
            word_structure(base * p, "ab"), word_structure(base * q, "ab"), 1
        )
        result = exhaustively_verify_duplicator(arena, factory)
        fringe_rows.append(
            {
                "base": base,
                "survives": result.survived,
                "lines": result.lines_checked,
                "conclusion_exact": equiv_k(base * p, base * q, 1, "ab"),
            }
        )

    def negative_factory():
        lookup = SolverDuplicator(solver_for("a" * p, "a" * q, "a"), 2)
        return PrimitivePowerDuplicator("ab", p, q, lookup)

    arena = GameArena(
        word_structure("ab" * p, "ab"), word_structure("ab" * q, "ab"), 1
    )
    try:
        negative = exhaustively_verify_duplicator(arena, negative_factory).survived
    except ValueError:
        negative = "broke (illegal response)"

    return {
        "p": p,
        "q": q,
        "identity": identity_rows,
        "fringe": fringe_rows,
        "negative_control": negative,
        "passed": (
            all(r["survives"] for r in identity_rows)
            and all(r["survives"] and r["conclusion_exact"] for r in fringe_rows)
            and negative == "broke (illegal response)"
        ),
    }


# ---------------------------------------------------------------------------
# E13 — Lemma 4.10 + the periodicity lemma.


def run_e13(max_length: int = 4) -> dict[str, Any]:
    from repro.words.conjugacy import (
        are_coprimitive,
        factor_intersection_profile,
        stable_intersection_bound,
    )
    from repro.words.generators import words_up_to
    from repro.words.periodicity import periodicity_lemma_predicts_conjugacy
    from repro.words.primitivity import is_primitive

    primitives = [w for w in words_up_to("ab", max_length) if is_primitive(w)]
    coprimitive_pairs = conjugate_pairs = 0
    equivalence_failures = []
    periodicity_failures = []
    bound_slacks = []
    for i, u in enumerate(primitives):
        for v in primitives[i:]:
            profile = factor_intersection_profile(u, v)
            coprim = are_coprimitive(u, v)
            if coprim:
                coprimitive_pairs += 1
                bound = stable_intersection_bound(u, v)
                bound_slacks.append(bound - (len(u) + len(v) - 2))
            else:
                conjugate_pairs += 1
            if coprim != profile.stabilised:
                equivalence_failures.append([u, v])
            if not periodicity_lemma_predicts_conjugacy(u, v):
                periodicity_failures.append([u, v])
    max_slack = max(bound_slacks)
    return {
        "primitive_words": len(primitives),
        "coprimitive_pairs": coprimitive_pairs,
        "conjugate_pairs": conjugate_pairs,
        "equivalence_failures": equivalence_failures,
        "periodicity_failures": periodicity_failures,
        "max_bound_slack": max_slack,
        "passed": (
            not equivalence_failures
            and not periodicity_failures
            and max_slack <= 0
        ),
    }


# ---------------------------------------------------------------------------
# E14 — Lemma 4.12 (Fooling) + Prop 4.13.


def _fooling_configs():
    return [
        ("L5 blocks, f=id", "", "abaabb", "", "bbaaba", "", lambda p: p),
        ("aba/bba, f=id", "", "aba", "", "bba", "", lambda p: p),
        ("aba/bba, f=2p+1", "", "aba", "", "bba", "", lambda p: 2 * p + 1),
        ("with contexts", "bb", "aba", "b", "bba", "aa", lambda p: p),
    ]


def run_e14() -> dict[str, Any]:
    from repro.core.fooling import fooling_pair

    rows = []
    for label, w1, u, w2, v, w3, f in _fooling_configs():
        pair = fooling_pair(0, w1, u, w2, v, w3, f=f)
        language = {
            w1 + u * p + w2 + v * f(p) + w3 for p in range(pair.q + 2)
        }
        rows.append(
            {
                "configuration": label,
                "p": pair.p,
                "q": pair.q,
                "required_unary_rank": pair.budget.unary_rank,
                "certified_rank": pair.budget.certified_rank,
                "member_in": pair.member in language,
                "foil_out": pair.foil not in language,
                "equiv0_exact": pair.verify_equivalence(0, "ab"),
            }
        )
    return {
        "rows": rows,
        "passed": all(
            r["member_in"] and r["foil_out"] and r["equiv0_exact"] for r in rows
        ),
    }


# ---------------------------------------------------------------------------
# E15 — Lemma 4.14: all witness families + the heavyweight exact
# conclusions (decided premise-free at rank 2 by the game solver).


def run_e15(
    anbn: dict[str, Any],
    l1: dict[str, Any],
    l2: dict[str, Any],
    l3: dict[str, Any],
    l4: dict[str, Any],
    l5: dict[str, Any],
    l6: dict[str, Any],
    heavy_anbn: dict[str, Any],
    heavy_ab: dict[str, Any],
) -> dict[str, Any]:
    reports = {
        report["language"]: report
        for report in (anbn, l1, l2, l3, l4, l5, l6)
    }
    heavy = [
        {
            "pair": "a¹²b¹² vs a¹⁴b¹² (Example 4.5)",
            "equivalent": heavy_anbn["equivalent"],
        },
        {
            "pair": "(ab)¹² vs (ab)¹⁴ (Lemma 4.8)",
            "equivalent": heavy_ab["equivalent"],
        },
    ]
    return {
        "families": reports,
        "heavy_conclusions": heavy,
        "passed": (
            all(r["verdict"] == "confirmed" for r in reports.values())
            and all(row["equivalent"] for row in heavy)
        ),
    }


# ---------------------------------------------------------------------------
# E16 — Lemma 5.4: bounded regular constraints compile into pure FC.

_E16_PATTERNS = [
    "a*", "(ba)*", "a*b*", "(abaabb)*", "(bbaaba)*", "a+", "(ab)*", "b+",
]
_E16_UNBOUNDED = ["(a|b)*", "(ab|ba)*"]


def run_e16(max_doc_length: int = 6) -> dict[str, Any]:
    from repro.fc.semantics import satisfying_tuples
    from repro.fc.syntax import Var
    from repro.fcreg.automata import compile_regex
    from repro.fcreg.bounded import is_bounded_regular
    from repro.fcreg.constraints import in_regex
    from repro.fcreg.regex import parse_regex
    from repro.fcreg.rewriting import constraint_to_fc
    from repro.words.generators import words_up_to

    x = Var("x")
    documents = list(words_up_to("ab", max_doc_length))
    rows = []
    for pattern in _E16_PATTERNS:
        bounded = is_bounded_regular(compile_regex(parse_regex(pattern)))
        constraint = in_regex(x, pattern)
        rewritten = constraint_to_fc(constraint)
        mismatches = 0
        # Relational sweep on both sides: each formula compiles once and
        # emits ⟦φ⟧(d) per document as pool-pruned bitset scans, instead
        # of a per-document satisfying_assignments enumeration.  Both
        # generators are drained fully (zip would leave the second one
        # short of its end-of-scan publish, so its sweep-relation
        # artifact would never persist).
        left_grid = list(
            satisfying_tuples(
                constraint, "ab", iter(documents), scope=max_doc_length
            )
        )
        right_grid = list(
            satisfying_tuples(
                rewritten, "ab", iter(documents), scope=max_doc_length
            )
        )
        for (document, left), (_, right) in zip(left_grid, right_grid):
            mismatches += set(left) != set(right)
        rows.append(
            {
                "pattern": pattern,
                "bounded": bounded,
                "documents": len(documents),
                "mismatches": mismatches,
            }
        )
    unbounded = [
        {
            "pattern": pattern,
            "bounded": is_bounded_regular(compile_regex(parse_regex(pattern))),
        }
        for pattern in _E16_UNBOUNDED
    ]
    return {
        "rows": rows,
        "unbounded": unbounded,
        "passed": (
            all(r["bounded"] and r["mismatches"] == 0 for r in rows)
            and all(not r["bounded"] for r in unbounded)
        ),
    }


# ---------------------------------------------------------------------------
# E17 — Theorem 5.8: the ψ-reductions for all eight relations.

RELATION_NAMES = [
    "Add", "Morph_h", "Mult", "Num_a", "Perm", "Rev", "Scatt", "Shuff",
]


def run_e17(
    add: dict[str, Any],
    morph_h: dict[str, Any],
    mult: dict[str, Any],
    num_a: dict[str, Any],
    perm: dict[str, Any],
    rev: dict[str, Any],
    scatt: dict[str, Any],
    shuff: dict[str, Any],
) -> dict[str, Any]:
    rows = [add, morph_h, mult, num_a, perm, rev, scatt, shuff]
    rows.sort(key=lambda row: row["relation"])
    return {
        "rows": rows,
        "passed": all(row["reduction_agrees"] for row in rows),
    }


# ---------------------------------------------------------------------------
# E18 — the spanner side.


def run_e18(
    gap_max_length: int = 7, trick_max_length: int = 8
) -> dict[str, Any]:
    from repro.core.relations import num_a
    from repro.spanners.selectable import (
        regular_intersection_trick,
        selection_gap_language,
    )
    from repro.spanners.spanner import extract
    from repro.words.generators import PAPER_LANGUAGES, words_up_to

    pipeline_rows = []
    for n in (4, 8, 12, 16):
        document = ("aab" * n)[: n + 6]
        blocks = extract(".*x{a+}.*")
        pairs = blocks.join(extract(".*y{a+}.*"))
        equal = pairs.eq("x", "y")
        unequal = pairs - equal
        pipeline_rows.append(
            {
                "doc_length": len(document),
                "blocks": len(blocks.evaluate(document)),
                "joined": len(pairs.evaluate(document)),
                "kept": len(equal.evaluate(document)),
                "difference": len(unequal.evaluate(document)),
            }
        )

    base = extract("x{a*}y{(ba)*}")
    gap = selection_gap_language(
        base, ("x", "y"), num_a, "ab", gap_max_length
    )
    l1_oracle = PAPER_LANGUAGES["L1"]
    gap_expected = frozenset(
        w for w in words_up_to("ab", gap_max_length) if w in l1_oracle
    )

    balanced = frozenset(
        w
        for w in words_up_to("ab", trick_max_length)
        if w.count("a") == w.count("b")
    )
    intersection = regular_intersection_trick(
        balanced, lambda w: "ba" not in w
    )
    anbn_oracle = PAPER_LANGUAGES["anbn"]
    trick_expected = frozenset(
        w for w in words_up_to("ab", trick_max_length) if w in anbn_oracle
    )

    return {
        "pipeline": pipeline_rows,
        "gap": {
            "recognised": len(gap),
            "expected": len(gap_expected),
            "equal": gap == gap_expected,
        },
        "intersection_trick": {
            "intersection": len(intersection),
            "expected": len(trick_expected),
            "equal": intersection == trick_expected,
        },
        "passed": (
            all(
                r["kept"] + r["difference"] == r["joined"]
                for r in pipeline_rows
            )
            and gap == gap_expected
            and intersection == trick_expected
        ),
    }


# ---------------------------------------------------------------------------
# E19 — unary FC = semi-linear.


def run_e19(pow_bound: int = 384) -> dict[str, Any]:
    from repro.ef.unary import unary_equivalence_classes
    from repro.semilinear.unary import detect_robust_periodicity

    rows = []
    for k, bound in ((0, 8), (1, 10), (2, 18)):
        classes = unary_equivalence_classes(k, bound)
        infinite_class = max(classes, key=len)
        threshold = min(infinite_class)
        gaps = {b - a for a, b in zip(infinite_class, infinite_class[1:])}
        period = min(gaps) if gaps else 0
        rows.append(
            {
                "k": k,
                "classes": len(classes),
                "threshold": threshold,
                "period": period,
            }
        )
    by_rank = {row["k"]: row for row in rows}

    def is_power(n: int) -> bool:
        return n >= 1 and (n & (n - 1)) == 0

    detected = detect_robust_periodicity(is_power, pow_bound)
    return {
        "rows": rows,
        "pow2_periodicity": detected,
        "passed": (
            by_rank[1]["threshold"] == 3
            and by_rank[1]["period"] == 1
            and by_rank[2]["threshold"] == 12
            and by_rank[2]["period"] == 2
            and detected is None
        ),
    }


# ---------------------------------------------------------------------------
# E20 — FC vs FO[EQ].


def run_e20(
    heavy_fc: dict[str, Any], agreement_max_length: int = 6
) -> dict[str, Any]:
    from repro.ef.equivalence import distinguishing_rank
    from repro.fc.builders import phi_ww
    from repro.fc.semantics import defines_language_members
    from repro.foeq.builders import phi_square
    from repro.foeq.games import (
        foeq_distinguishing_rank,
        foeq_equiv_k,
        folt_equiv_k,
    )
    from repro.foeq.semantics import p_models
    from repro.words.generators import words_up_to

    # Both sentences are built once: the FC side runs as a batched sweep
    # and the FO[EQ] side hits one compiled position program.
    square = phi_square()
    fc_members = defines_language_members(
        phi_ww(), "ab", words_up_to("ab", agreement_max_length)
    )
    checked = mismatches = 0
    for w, fc_square in fc_members:
        if not w:
            continue  # FC counts ε as a square; FO[EQ]'s ε has no positions
        checked += 1
        mismatches += p_models(w, square) != fc_square

    w, v = "a" * _HEAVY_P + "b" * _HEAVY_P, "a" * _HEAVY_Q + "b" * _HEAVY_P
    shared = {
        "foeq": foeq_equiv_k(w, v, 2),
        # The FC half of the shared witness is the heavyweight exact
        # ≡₂ decision already computed by prim/equiv/anbn-k2.
        "fc": heavy_fc["equivalent"],
    }

    ranks = []
    for left, right in (("aaaa", "aaa"), ("ab", "ba"), ("abab", "abba")):
        ranks.append(
            {
                "pair": f"{left} vs {right}",
                "fc_rank": distinguishing_rank(left, right, 4, "ab"),
                "foeq_rank": foeq_distinguishing_rank(left, right, 4),
            }
        )

    sq, nonsq = "ab" * 4, "ab" * 5
    eq_essential = {
        "folt_rank2_equivalent": folt_equiv_k(sq, nonsq, 2),
        "foeq_rank3_equivalent": foeq_equiv_k(sq, nonsq, 3),
    }

    return {
        "agreement": {"checked": checked, "mismatches": mismatches},
        "shared_witness": shared,
        "rank_comparison": ranks,
        "eq_essential": eq_essential,
        "passed": (
            mismatches == 0
            and shared["foeq"]
            and shared["fc"]
            and all(r["fc_rank"] <= r["foeq_rank"] for r in ranks)
            and eq_essential["folt_rank2_equivalent"] is True
            and eq_essential["foeq_rank3_equivalent"] is False
        ),
    }


# ---------------------------------------------------------------------------
# E21 — distinguishing-formula synthesis (constructive Theorem 3.4).


def run_e21(spot: dict[str, Any], max_length: int = 3, k: int = 2) -> dict[str, Any]:
    from repro.ef.equivalence import equiv_k
    from repro.ef.synthesis import (
        SynthesisFailure,
        synthesize_distinguishing_sentence,
    )
    from repro.fc.semantics import defines_language_member
    from repro.fc.syntax import quantifier_rank, subformulas
    from repro.words.generators import words_up_to

    words = list(words_up_to("ab", max_length))
    separable = synthesized = verified = 0
    max_size = 0
    for i, w in enumerate(words):
        for v in words[i + 1 :]:
            if equiv_k(w, v, k, alphabet="ab"):
                continue
            separable += 1
            try:
                phi = synthesize_distinguishing_sentence(w, v, k, "ab")
            except SynthesisFailure:
                continue
            synthesized += 1
            max_size = max(max_size, sum(1 for _ in subformulas(phi)))
            verified += (
                quantifier_rank(phi) <= k
                and defines_language_member(w, phi, "ab")
                and not defines_language_member(v, phi, "ab")
            )
    return {
        "k": k,
        "separable": separable,
        "synthesized": synthesized,
        "verified": verified,
        "max_certificate_nodes": max_size,
        "spot_certificate": spot,
        "passed": (
            separable == synthesized == verified
            and separable > 0
            and spot["synthesized"]
            and spot["verified"]
        ),
    }


# ---------------------------------------------------------------------------
# E22 — the conclusion's game variants.


def run_e22() -> dict[str, Any]:
    from repro.ef.equivalence import equiv_k
    from repro.ef.existential import existential_preorder
    from repro.ef.pebble import pebble_distinguishing_rounds

    exponents = (1, 2, 3, 5)
    matrix = []
    for p in exponents:
        row = {"power": p, "absorbs": {}}
        for q in exponents:
            row["absorbs"][str(q)] = existential_preorder(
                "a" * p, "a" * q, 2
            )
        matrix.append(row)

    pebble_rows = []
    for w, v, pebbles in (
        ("a" * 12, "a" * 14, 2),
        ("a" * 12, "a" * 14, 3),
        ("aaaa", "aaa", 2),
    ):
        separated_at = pebble_distinguishing_rounds(w, v, pebbles, 4, "a")
        pebble_rows.append(
            {
                "pair": f"a^{len(w)} vs a^{len(v)}",
                "pebbles": pebbles,
                "plain_equiv_2": equiv_k(w, v, 2, alphabet="a"),
                "separated_at": separated_at,
            }
        )
    by_key = {(r["pair"], r["pebbles"]): r for r in pebble_rows}
    headline = by_key[("a^12 vs a^14", 2)]
    return {
        "existential": matrix,
        "pebble": pebble_rows,
        "passed": (
            all(matrix[0]["absorbs"][str(q)] for q in exponents)
            and all(not row["absorbs"]["1"] for row in matrix[1:])
            and headline["plain_equiv_2"] is True
            and headline["separated_at"] == 3
        ),
    }


# ---------------------------------------------------------------------------
# E23 — core simplification.


def run_e23() -> dict[str, Any]:
    from repro.spanners.normal_form import compile_spanner, core_simplify
    from repro.spanners.spanner import (
        EqualitySelect,
        Join,
        Project,
        SpannerUnion,
        extract,
    )

    regular_tree = Project(
        Join(
            SpannerUnion(extract(".*x{aa}.*"), extract(".*x{ab}.*")),
            extract(".*y{b+}.*"),
        ),
        ("x",),
    )
    core_tree = EqualitySelect(
        Join(extract(".*x{a+}.*"), extract(".*y{a+}.*")), "x", "y"
    )
    automaton = compile_spanner(regular_tree)
    simplified = core_simplify(core_tree)
    rows = []
    for n in (8, 16, 24):
        document = ("aab" * n)[:n]
        tree_out = {
            frozenset(r.items()) for r in regular_tree.evaluate(document)
        }
        automaton_out = {
            frozenset(r.items()) for r in automaton.evaluate(document)
        }
        core_out = {
            frozenset(r.items()) for r in core_tree.evaluate(document)
        }
        simplified_out = {
            frozenset(r.items()) for r in simplified.evaluate(document)
        }
        rows.append(
            {
                "doc_length": n,
                "regular_rows": len(tree_out),
                "tree_equals_automaton": tree_out == automaton_out,
                "core_rows": len(core_out),
                "core_equals_simplified": core_out == simplified_out,
            }
        )
    return {
        "rows": rows,
        "automaton_states": automaton.state_count(),
        "hoisted_selections": len(simplified.selections),
        "passed": all(
            r["tree_equals_automaton"] and r["core_equals_simplified"]
            for r in rows
        ),
    }


# ---------------------------------------------------------------------------
# The default registry: 23 experiments + the primitive tasks they share.

EXPERIMENT_NAMES = [f"E{i:02d}" for i in range(1, 24)]

_EXPERIMENT_DESCRIPTIONS = {
    "E01": "Example 3.3 — Spoiler wins the 2-round game on a^{2i} vs a^{2i-1}",
    "E02": "Theorem 3.4 — ≡_k ⟺ agreement on an FC(k) sentence pool",
    "E03": "Lemma 3.6 — minimal unary pairs; {2^n} not semi-linear",
    "E04": "Proposition 3.7 — ≡_k is not a congruence",
    "E05": "Proposition 4.1 — L_fib ∈ L(FC)",
    "E06": "Lemma 4.2 — short factors force identical responses",
    "E07": "Lemma 4.3 — prefixes answer prefixes, suffixes answer suffixes",
    "E08": "Lemma 4.4 — Pseudo-Congruence, strategy verified on every line",
    "E09": "Example 4.5 — a^n b^n is not FC-definable",
    "E10": "Proposition 4.6 — L1 = a^n (ba)^n is not FC-definable",
    "E11": "Lemmas 4.7 / A.1 / D.4 — primitive-word structure",
    "E12": "Lemma 4.8 — Primitive Power, with the negative control",
    "E13": "Lemma 4.10 — co-primitivity ⟺ factor-intersection stabilises",
    "E14": "Lemma 4.12 + Prop 4.13 — fooling pairs",
    "E15": "Lemma 4.14 — all witness families + heavyweight exact conclusions",
    "E16": "Lemma 5.4 — bounded regular constraints compile into FC",
    "E17": "Theorem 5.8 — the ψ-reductions for all eight relations",
    "E18": "Section 5 — spanner algebra, selection gap, closure trick",
    "E19": "Section 3 — unary ≡_k classes are semi-linear; {2^n} is not",
    "E20": "Related work — FC games vs the FO[EQ] route",
    "E21": "Theorem 3.4 constructive — synthesis of separating sentences",
    "E22": "Conclusions — existential and pebble game variants",
    "E23": "Related work — algebra closure and core simplification",
}

_WITNESS_DEP_PARAMS = {
    "anbn": "anbn",
    "L1": "l1",
    "L2": "l2",
    "L3": "l3",
    "L4": "l4",
    "L5": "l5",
    "L6": "l6",
}


def build_default_registry() -> TaskRegistry:
    """The full task DAG: primitives feeding the 23 experiments."""
    registry = TaskRegistry()
    here = "repro.engine.experiments"
    prim = "repro.engine.primitives"

    registry.add(
        "prim/pow2-pairs",
        f"{prim}:unary_minimal_pairs",
        args={"max_rank": 2, "max_exponent": 20},
        version=_ENGINE_VERSION,
        description="ef.unary — minimal aᵖ ≡_k a^q pairs for k ≤ 2",
    )
    for family, param in _WITNESS_DEP_PARAMS.items():
        registry.add(
            f"prim/witness/{family}",
            f"{prim}:witness_report",
            args={"name": family},
            version=_ENGINE_VERSION,
            description=f"core.witnesses — Lemma 4.14 chain for {family}",
        )
    registry.add(
        "prim/equiv/anbn-k2",
        f"{prim}:equivalence",
        args={
            "w": "a" * _HEAVY_P + "b" * _HEAVY_P,
            "v": "a" * _HEAVY_Q + "b" * _HEAVY_P,
            "k": 2,
            "alphabet": "ab",
        },
        version=_ENGINE_VERSION,
        description="ef.equivalence — a¹²b¹² ≡₂ a¹⁴b¹² (heavyweight exact)",
    )
    registry.add(
        "prim/equiv/abpow-k2",
        f"{prim}:equivalence",
        args={
            "w": "ab" * _HEAVY_P,
            "v": "ab" * _HEAVY_Q,
            "k": 2,
            "alphabet": "ab",
        },
        version=_ENGINE_VERSION,
        description="ef.equivalence — (ab)¹² ≡₂ (ab)¹⁴ (heavyweight exact)",
    )
    registry.add(
        "prim/synth/aaaa-aaa-k2",
        f"{prim}:synthesize",
        args={"w": "aaaa", "v": "aaa", "k": 2, "alphabet": "ab"},
        version=_ENGINE_VERSION,
        description="ef.synthesis — verified separating FC(2) certificate",
    )
    for relation in RELATION_NAMES:
        registry.add(
            f"prim/relation/{relation}",
            f"{prim}:relation_agreement",
            args={"name": relation, "max_length": 7},
            version=_RELATION_TASK_VERSION,
            description=f"core.relations — ψ-reduction agreement for {relation}",
            shards=ShardPlan(
                f"{prim}:plan_relation",
                f"{prim}:relation_agreement_shard",
                f"{prim}:relation_agreement_merge",
            ),
        )

    experiment_deps: dict[str, dict[str, str]] = {
        "E03": {"pow2_pairs": "prim/pow2-pairs"},
        "E04": {"pow2_pairs": "prim/pow2-pairs"},
        "E09": {"anbn": "prim/witness/anbn"},
        "E10": {"l1": "prim/witness/L1"},
        "E12": {"pow2_pairs": "prim/pow2-pairs"},
        "E15": {
            **{
                param: f"prim/witness/{family}"
                for family, param in _WITNESS_DEP_PARAMS.items()
            },
            "heavy_anbn": "prim/equiv/anbn-k2",
            "heavy_ab": "prim/equiv/abpow-k2",
        },
        "E17": {
            relation.lower(): f"prim/relation/{relation}"
            for relation in RELATION_NAMES
        },
        "E20": {"heavy_fc": "prim/equiv/anbn-k2"},
        "E21": {"spot": "prim/synth/aaaa-aaa-k2"},
    }
    # Grid experiments whose word/exponent universes shard cleanly;
    # every other task stays monolithic (their critical paths are
    # single solver calls, not enumerations).
    experiment_shards = {
        name: ShardPlan(
            f"{here}:plan_{name.lower()}",
            f"{here}:run_{name.lower()}_shard",
            f"{here}:run_{name.lower()}_merge",
        )
        for name in ("E01", "E02", "E05")
    }
    for name in EXPERIMENT_NAMES:
        registry.add(
            name,
            f"{here}:run_{name.lower()}",
            deps=experiment_deps.get(name, {}),
            version=_TASK_VERSIONS.get(name, _ENGINE_VERSION),
            description=_EXPERIMENT_DESCRIPTIONS[name],
            shards=experiment_shards.get(name),
        )
    return registry
