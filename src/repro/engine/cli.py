"""The ``python -m repro run`` command.

Drives the full experiment DAG (or a ``--only`` subset plus its
dependency closure) through the scheduler, prints a per-task progress
line as records complete and a summary at the end, and always writes
the machine-readable engine report (``--json PATH``, default
``BENCH_engine.json``) so the perf trajectory is trackable across runs.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Any

from repro.engine.cache import ResultCache, default_cache_dir
from repro.engine.executor import EngineReport, run_tasks
from repro.engine.experiments import build_default_registry
from repro.store import open_backend
from repro.store.core import ArtifactStore
from repro.store.runtime import default_store_path

__all__ = ["add_run_parser", "cmd_run", "resolve_store", "write_engine_report"]

#: ``--store`` with no value: use the default path/env resolution.
STORE_DEFAULT = "__default__"


def resolve_store(spec: str | None) -> ArtifactStore | None:
    """An :class:`ArtifactStore` from a ``--store`` argument, or ``None``.

    ``None`` (flag absent) disables the store; the :data:`STORE_DEFAULT`
    sentinel (bare ``--store``) resolves ``$REPRO_STORE_DIR`` /
    ``.repro-store``; anything else is a backend spec (``memory``,
    ``sqlite:PATH``, or a directory).
    """
    if spec is None:
        return None
    if spec == STORE_DEFAULT:
        return ArtifactStore(open_backend(default_store_path()))
    return ArtifactStore(open_backend(spec))


DEFAULT_REPORT_PATH = "BENCH_engine.json"


def write_engine_report(
    report: EngineReport | dict[str, Any], path: str | Path = DEFAULT_REPORT_PATH
) -> Path:
    """Persist an engine report as JSON and return the written path."""
    payload = (
        report.to_json_dict() if isinstance(report, EngineReport) else report
    )
    target = Path(path)
    if target.parent and not target.parent.exists():
        target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(payload, indent=2, sort_keys=True, ensure_ascii=False)
        + "\n",
        encoding="utf-8",
    )
    return target


def add_run_parser(commands: argparse._SubParsersAction) -> None:
    run = commands.add_parser(
        "run",
        help="execute the experiment suite through the engine",
        description=(
            "Run the E01–E23 experiment DAG with the parallel execution "
            "engine and the content-addressed result cache."
        ),
    )
    run.add_argument(
        "--jobs",
        type=int,
        default=max(1, os.cpu_count() or 1),
        help="worker processes (default: CPU count)",
    )
    run.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help=(
            "intra-task shard width for tasks that declare a shard plan "
            "(default: auto — the CPU count; 1 disables sharding)"
        ),
    )
    run.add_argument(
        "--only",
        default=None,
        help="comma-separated task names, e.g. E12,E14 "
        "(dependencies are pulled in automatically)",
    )
    run.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the result cache entirely",
    )
    run.add_argument(
        "--json",
        dest="json_path",
        default=None,
        metavar="PATH",
        help=f"where to write the engine report (default: {DEFAULT_REPORT_PATH})",
    )
    run.add_argument(
        "--cache-dir",
        default=None,
        help="cache directory (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    run.add_argument(
        "--store",
        nargs="?",
        const=STORE_DEFAULT,
        default=None,
        metavar="SPEC",
        help=(
            "enable the persistent artifact store (kernel warm-start); "
            "bare --store uses $REPRO_STORE_DIR or .repro-store, or pass "
            "a backend spec: memory, sqlite:PATH, or a directory"
        ),
    )
    run.add_argument(
        "--clear-cache",
        action="store_true",
        help="delete all cached records before running",
    )
    run.add_argument(
        "--list",
        dest="list_tasks",
        action="store_true",
        help="list the registered tasks and exit",
    )


def _resolve_only(raw: str, registry) -> list[str]:
    names = []
    for chunk in raw.split(","):
        name = chunk.strip()
        if not name:
            continue
        if name not in registry and name.upper() in registry:
            name = name.upper()
        if name not in registry:
            raise SystemExit(
                f"unknown task: {name!r} (see `python -m repro run --list`)"
            )
        names.append(name)
    if not names:
        raise SystemExit("--only selected no tasks")
    return names


def _progress_line(record: dict[str, Any]) -> str:
    marks = {"ok": "✓", "error": "✗", "skipped": "∅"}
    mark = marks.get(record["status"], "?")
    source = record.get("cache", "none")
    timing = f"{record['wall_time_s']:.2f}s"
    if source == "hit":
        timing = f"cached ({timing} originally)"
    return f"  {mark} {record['task']:<22s} [{source}] {timing}"


def cmd_run(args: argparse.Namespace) -> int:
    registry = build_default_registry()
    if args.list_tasks:
        for spec in registry:
            deps = f"  ← {', '.join(spec.dep_tasks)}" if spec.deps else ""
            print(f"{spec.name:<22s} {spec.description}{deps}")
        return 0

    only = _resolve_only(args.only, registry) if args.only else None
    cache = ResultCache(
        root=args.cache_dir or default_cache_dir(),
        enabled=not args.no_cache,
    )
    if args.clear_cache:
        removed = cache.clear()
        print(f"cleared {removed} cached record(s) from {cache.root}")

    store = resolve_store(getattr(args, "store", None))
    store_where = None
    if store is not None:
        info = store.describe()
        store_where = info["path"] or info["backend"]
    selected = registry.closure(only) if only else registry.specs()
    print(
        f"running {len(selected)} task(s) with --jobs {args.jobs} "
        f"(cache: {'off' if args.no_cache else cache.root}"
        + (f", store: {store_where}" if store_where else "")
        + ")"
    )
    report = run_tasks(
        registry,
        jobs=args.jobs,
        shards=getattr(args, "shards", None),
        cache=cache,
        store=store,
        only=only,
        on_record=lambda record: print(_progress_line(record), flush=True),
    )

    counts = report.counts()
    stats = report.cache
    if report.jobs != report.jobs_requested:
        print(
            f"note: --jobs {report.jobs_requested} capped at "
            f"{report.jobs} (host CPU count)"
        )
    print(
        f"\n{counts['ok']} ok, {counts['error']} error(s), "
        f"{counts['skipped']} skipped in {report.elapsed_s:.2f}s — "
        f"cache: {stats['hits']} hit(s), {stats['misses']} miss(es), "
        f"{stats['bypassed']} bypassed"
    )
    if report.store.get("enabled"):
        totals = report.store["totals"]
        print(
            f"store: {totals.get('store_hits', 0)} hit(s), "
            f"{totals.get('store_misses', 0)} miss(es), "
            f"{totals.get('store_stores', 0)} store(s), "
            f"{totals.get('store_errors', 0)} error(s)"
        )
    sharded = report.shards.get("tasks", {})
    if sharded:
        print(f"shards (width {report.shards['width']}):")
        for task, summary in sharded.items():
            if summary.get("cache") == "hit":
                print(f"  {task:<22s} {summary['count']} shard(s) [hit]")
                continue
            walls = ", ".join(
                f"{wall:.2f}s" for wall in summary.get("shard_walls_s", ())
            )
            merge_wall = summary.get("merge_wall_s", 0.0)
            print(
                f"  {task:<22s} {summary['count']} shard(s) "
                f"[{walls}] + merge {merge_wall:.2f}s"
            )
    for record in report.records:
        if record["status"] == "error":
            print(
                f"  FAILED {record['task']}: {record['error']['type']}: "
                f"{record['error']['message']}",
                file=sys.stderr,
            )

    written = write_engine_report(report, args.json_path or DEFAULT_REPORT_PATH)
    print(f"engine report written to {written}")
    return 0 if report.ok else 1
