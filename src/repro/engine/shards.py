"""Shard-plan builders: partition a task's word universe declaratively.

A *shard plan* (:class:`repro.engine.spec.ShardPlan`) names three
module-level functions; the *planner* runs in the engine parent at
schedule time and returns a list of JSON **shard descriptors**, one per
shard node.  This module provides the descriptor grammar and the
generic partitioners the experiment planners compose:

* ``{"stems": [...], "prefixes": [...]}`` — a prefix-tree subtree
  shard: the stem words (every word shorter than the cut depth, owned
  by shard 0 so the partition covers the grid exactly once) plus a
  chunk of depth-``d`` subtrees.  The kernel's incremental factor
  tables make subtree = shard the natural boundary: inside a subtree
  every table extends its parent, and only the short stem path below
  the root is duplicated (attributed to ``shard_overhead_ops``).
* ``{"lengths": [...]}`` — a unary length band: ``a^l`` for each listed
  length.  Unary universes are chains, not trees, so subtrees degenerate;
  balanced length bands shard the work instead.
* task-specific descriptors (``{"i_values": [...]}``,
  ``{"lane": k, "lanes": n}``) built with :func:`round_robin`.

Planners are pure functions of ``(args, width)`` — they run in the
parent and their output is salted into the merge node's cache key, so
a plan-shape change invalidates exactly the merge node.
"""

from __future__ import annotations

from itertools import product
from typing import Any, Sequence

__all__ = ["clamp_width", "length_band_plan", "round_robin", "subtree_plan"]


def clamp_width(width: int, available: int) -> int:
    """The effective lane count: ``width`` clamped to ``[1, available]``.

    Planners never emit more shards than the universe has independent
    chunks: requesting ``--shards 64`` over ten subtree roots yields ten
    lanes.  Every partitioner routes its lane count through this helper,
    and the executor reports the per-task effective width
    (``shards.tasks.<name>.effective_width``) so the clamp is visible in
    the report instead of silent.
    """
    return max(1, min(width, available))


def round_robin(values: Sequence[Any], width: int) -> list[list[Any]]:
    """Deal ``values`` into ``min(width, len(values))`` lanes, round-robin.

    Round-robin (not contiguous chunks) because grid costs are usually
    monotone in the value — pair loops shrink with the start index,
    solver pairs grow with the exponent — so dealing balances the lanes
    without cost modelling.  Deterministic; lanes preserve value order.
    """
    lanes = clamp_width(width, len(values))
    dealt: list[list[Any]] = [[] for _ in range(lanes)]
    for index, value in enumerate(values):
        dealt[index % lanes].append(value)
    return dealt


def subtree_plan(
    alphabet: str, max_length: int, width: int
) -> list[dict[str, Any]]:
    """Partition ``Σ^{≤max_length}`` into at most ``width`` subtree shards.

    Picks the smallest cut depth ``d`` with ``|Σ|^d ≥ 3·width`` (at
    least three subtrees per shard keeps the contiguous chunks within
    ~⅓ of each other in size; subtrees of equal depth carry equal word
    counts), deals the depth-``d`` subtree roots into contiguous
    lexicographic chunks (adjacent roots share stem paths), and assigns
    every stem word (length < d, including ε) to shard 0.  For unary
    alphabets this degenerates (one subtree per depth), so the plan
    falls through to :func:`length_band_plan`.
    """
    if len(alphabet) < 2:
        return length_band_plan(alphabet, max_length, width)
    if width < 2 or max_length < 1:
        return [{"stems": [], "prefixes": [""]}]
    depth = 1
    while len(alphabet) ** depth < 3 * width and depth < max_length:
        depth += 1
    roots = [
        "".join(letters) for letters in product(alphabet, repeat=depth)
    ]
    lanes = clamp_width(width, len(roots))
    base, extra = divmod(len(roots), lanes)
    stems = [
        "".join(letters)
        for length in range(depth)
        for letters in product(alphabet, repeat=length)
    ]
    descriptors = []
    start = 0
    for lane in range(lanes):
        size = base + (1 if lane < extra else 0)
        descriptors.append(
            {
                "stems": stems if lane == 0 else [],
                "prefixes": roots[start : start + size],
            }
        )
        start += size
    return descriptors


def length_band_plan(
    alphabet: str, max_length: int, width: int
) -> list[dict[str, Any]]:
    """Partition a unary grid ``{a^0 … a^max_length}`` into length bands.

    Longest-processing-time assignment with a quadratic cost model
    (per-word factor work grows ~quadratically with length): lengths
    are dealt longest-first onto the currently lightest lane, then each
    lane's band is sorted ascending so the shard enumerates in
    ``(len, text)`` order.  Ties break on the lane index, so the plan
    is deterministic.
    """
    lanes = clamp_width(width, max_length + 1)
    if lanes < 2:
        return [{"lengths": list(range(max_length + 1))}]
    bands: list[list[int]] = [[] for _ in range(lanes)]  # repro-lint: domain[map[shard-lane, iter[plain]]] one length band per lane
    loads = [0] * lanes  # repro-lint: domain[map[shard-lane, plain]] quadratic cost model per lane
    for length in range(max_length, -1, -1):
        # repro-lint: domain[shard-lane] LPT pick: the currently lightest lane
        lane = min(range(lanes), key=lambda index: (loads[index], index))
        bands[lane].append(length)
        loads[lane] += (length + 1) ** 2
    return [{"lengths": sorted(band)} for band in bands]
