"""Declarative task specifications and the task registry.

A :class:`TaskSpec` describes one pure computation: a dotted path to a
module-level function, a JSON-canonicalisable argument mapping, and a
``deps`` mapping that wires the *results* of other tasks into named
parameters of the function.  Specs never hold live objects, so they can
cross process boundaries and hash stably into cache keys.
"""

from __future__ import annotations

import importlib
import json
import types
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

__all__ = [
    "ShardPlan",
    "TaskRegistry",
    "TaskSpec",
    "canonical_json",
    "resolve_function",
]


def canonical_json(value: Any) -> str:
    """Serialise ``value`` to a canonical JSON string.

    Sorted keys and tight separators make the encoding unique per value,
    which is what the cache keys hash.  Raises ``TypeError`` for values
    that are not JSON-representable — task arguments must be.
    """
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), ensure_ascii=False
    )


def resolve_function(path: str, *, task: str | None = None) -> Callable[..., Any]:
    """Import the module-level callable named by ``path``.

    Accepts ``pkg.mod:func`` or ``pkg.mod.func``; the latter splits on
    the last dot.  Raises ``ValueError`` — naming ``task`` when given —
    if the path is malformed, missing, resolves to a non-callable, or
    resolves to a bound method (bound methods drag live ``self`` state
    across the spec boundary, which breaks the pure-task contract).
    """
    label = f"task {task!r}: " if task else ""
    if ":" in path:
        module_name, _, attr = path.partition(":")
    else:
        module_name, _, attr = path.rpartition(".")
    if not module_name or not attr:
        raise ValueError(f"{label}not a dotted function path: {path!r}")
    module = importlib.import_module(module_name)
    try:
        fn = getattr(module, attr)
    except AttributeError as exc:
        raise ValueError(
            f"{label}{module_name!r} has no attribute {attr!r}"
        ) from exc
    if isinstance(fn, types.MethodType):
        raise ValueError(
            f"{label}{path!r} resolves to a bound method of "
            f"{type(fn.__self__).__name__}; specs require module-level "
            "functions"
        )
    if not callable(fn):
        raise ValueError(
            f"{label}{path!r} resolves to a non-callable "
            f"{type(fn).__name__}"
        )
    return fn


@dataclass(frozen=True)
class ShardPlan:
    """How to split one task's work into independent shard nodes.

    All three fields are dotted paths to module-level functions, same
    contract as :attr:`TaskSpec.fn`:

    * ``planner(**args, width=N) -> list[descriptor]`` runs in the
      engine parent at schedule time and partitions the task's word
      universe into JSON *shard descriptors* (see
      :mod:`repro.engine.shards` for the grammar).  Returning a list of
      length < 2 keeps the task monolithic.
    * ``shard_fn(**args, **deps, shard=descriptor)`` computes one
      shard's partial result in a worker, exactly like a task function
      but restricted to the descriptor's slice of the universe.
    * ``merge_fn(**args, **deps, shards=[partials...])`` combines the
      partial results — in descriptor order — into a value that must be
      bit-identical (canonical JSON) to what ``TaskSpec.fn`` returns.

    The planner output is salted into the merge node's *storage* key,
    so changing the shard width or plan shape re-runs only the shards
    and the merge; dependents keep hashing the monolithic key and stay
    cached (sound because of the bit-identity contract, which the
    differential test suite and the CI shard-smoke gate enforce).
    """

    planner: str
    shard_fn: str
    merge_fn: str

    def paths(self) -> tuple[str, str, str]:
        """The three dotted paths (worker-isolation lint roots)."""
        return (self.planner, self.shard_fn, self.merge_fn)


@dataclass(frozen=True)
class TaskSpec:
    """One declarative task of the experiment DAG.

    ``fn`` is a dotted path so the spec itself stays picklable and
    hashable; ``args`` are keyword arguments passed verbatim; ``deps``
    maps *parameter names* to the task names whose results are injected
    under those parameters.  ``version`` is the per-task code-version
    salt — bump it when the wrapped computation changes meaning, and
    every cached record for the task (and its dependents) is invalidated
    without touching the cache directory.
    """

    name: str
    fn: str
    args: Mapping[str, Any] = field(default_factory=dict)
    deps: Mapping[str, str] = field(default_factory=dict)
    version: str = "1"
    description: str = ""
    shards: ShardPlan | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("task name must be non-empty")
        object.__setattr__(self, "args", dict(self.args))
        object.__setattr__(self, "deps", dict(self.deps))
        canonical_json(self.args)  # fail fast on unhashable arguments
        overlap = set(self.args) & set(self.deps)
        if overlap:
            raise ValueError(
                f"task {self.name!r}: parameters {sorted(overlap)} are both "
                "literal args and dependency injections"
            )
        if self.shards is not None:
            # shard_fn receives the descriptor as ``shard=`` and merge_fn
            # the partials as ``shards=``; a task that already binds those
            # names would shadow the injection.
            reserved = {"shard", "shards"} & (set(self.args) | set(self.deps))
            if reserved:
                raise ValueError(
                    f"task {self.name!r}: parameters {sorted(reserved)} are "
                    "reserved for shard execution"
                )

    @property
    def dep_tasks(self) -> tuple[str, ...]:
        """The names of the tasks this one depends on (sorted, unique)."""
        return tuple(sorted(set(self.deps.values())))

    def canonical_args(self) -> str:
        return canonical_json(self.args)

    def resolve(self) -> Callable[..., Any]:
        return resolve_function(self.fn, task=self.name)


class TaskRegistry:
    """A name-keyed collection of :class:`TaskSpec` objects."""

    def __init__(self, specs: Iterator[TaskSpec] | None = None) -> None:
        self._specs: dict[str, TaskSpec] = {}
        for spec in specs or ():
            self.register(spec)

    def register(self, spec: TaskSpec) -> TaskSpec:
        if spec.name in self._specs:
            raise ValueError(f"duplicate task name: {spec.name!r}")
        self._specs[spec.name] = spec
        return spec

    def add(
        self,
        name: str,
        fn: str,
        *,
        args: Mapping[str, Any] | None = None,
        deps: Mapping[str, str] | None = None,
        version: str = "1",
        description: str = "",
        shards: ShardPlan | None = None,
    ) -> TaskSpec:
        return self.register(
            TaskSpec(
                name, fn, args or {}, deps or {}, version, description, shards
            )
        )

    def get(self, name: str) -> TaskSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise KeyError(f"unknown task: {name!r}") from None

    def names(self) -> list[str]:
        return sorted(self._specs)

    def fn_paths(self) -> list[str]:
        """Sorted unique dotted function paths of every registered task.

        These are the entry points executed inside engine workers — the
        root set of the ``effects.worker-isolation`` lint rule.  Shard
        plans contribute their planner/shard/merge paths: shard and
        merge functions run in workers exactly like task functions, and
        the planner runs in the parent before the pool forks, where a
        stray effect would leak into every worker.
        """
        paths = set()
        for spec in self._specs.values():
            paths.add(spec.fn)
            if spec.shards is not None:
                paths.update(spec.shards.paths())
        return sorted(paths)

    def specs(self) -> dict[str, TaskSpec]:
        return dict(self._specs)

    def __contains__(self, name: object) -> bool:
        return name in self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self) -> Iterator[TaskSpec]:
        for name in self.names():
            yield self._specs[name]

    def closure(self, names: Iterator[str]) -> dict[str, TaskSpec]:
        """The requested tasks plus every transitive dependency."""
        selected: dict[str, TaskSpec] = {}
        stack = list(names)
        while stack:
            name = stack.pop()
            if name in selected:
                continue
            spec = self.get(name)
            selected[name] = spec
            stack.extend(spec.dep_tasks)
        return selected
