"""Dependency-DAG validation and deterministic topological ordering."""

from __future__ import annotations

from typing import Mapping

from repro.engine.spec import TaskSpec

__all__ = [
    "DependencyCycleError",
    "MissingDependencyError",
    "dependents_of",
    "topological_order",
    "validate_dag",
]


class MissingDependencyError(KeyError):
    """A task depends on a name that is not in the selected task set."""


class DependencyCycleError(ValueError):
    """The dependency graph contains a cycle."""


def validate_dag(specs: Mapping[str, TaskSpec]) -> None:
    """Check that every dependency resolves and the graph is acyclic."""
    for name, spec in specs.items():
        for dep in spec.dep_tasks:
            if dep not in specs:
                raise MissingDependencyError(
                    f"task {name!r} depends on unknown task {dep!r}"
                )
            if dep == name:
                raise DependencyCycleError(f"task {name!r} depends on itself")
    topological_order(specs)


def topological_order(specs: Mapping[str, TaskSpec]) -> list[str]:
    """Kahn's algorithm with a sorted ready set.

    Sorting the ready set makes the order a pure function of the task
    set, so scheduling (and therefore report layout) is deterministic
    regardless of dict insertion order or worker timing.
    """
    remaining_deps = {
        name: {d for d in spec.dep_tasks if d in specs}
        for name, spec in specs.items()
    }
    dependents = dependents_of(specs)
    ready = sorted(name for name, deps in remaining_deps.items() if not deps)
    order: list[str] = []
    while ready:
        name = ready.pop(0)
        order.append(name)
        for child in sorted(dependents.get(name, ())):
            remaining_deps[child].discard(name)
            if not remaining_deps[child]:
                ready.append(child)
        ready.sort()
    if len(order) != len(specs):
        stuck = sorted(set(specs) - set(order))
        raise DependencyCycleError(f"dependency cycle involving {stuck}")
    return order


def dependents_of(specs: Mapping[str, TaskSpec]) -> dict[str, set[str]]:
    """Reverse edges: task name → the tasks that consume its result."""
    reverse: dict[str, set[str]] = {name: set() for name in specs}
    for name, spec in specs.items():
        for dep in spec.dep_tasks:
            if dep in reverse:
                reverse[dep].add(name)
    return reverse
