"""repro — executable reproduction of "Generalized Core Spanner
Inexpressibility via Ehrenfeucht-Fraisse Games for FC" (Thompson &
Freydenberger, PODS 2024).

Subpackages:

* ``repro.words``      — combinatorics on words (factors, primitivity,
  conjugacy, periodicity, Fibonacci words, morphisms);
* ``repro.fc``         — the logic FC: syntax, word structures, model
  checking with a constraint-propagating evaluator;
* ``repro.fcreg``      — FC[REG]: regex engine, regular constraints,
  bounded languages, the Lemma 5.4 rewriting;
* ``repro.ef``         — EF games: exact ≡_k solver, strategy objects,
  the Pseudo-Congruence / Primitive Power strategy compositions;
* ``repro.semilinear`` — semi-linear sets, unary-language substrate;
* ``repro.core``       — the paper's results as an executable toolkit:
  pow2 witnesses, certified lemma instances, the Fooling Lemma, witness
  families for L1…L6, Theorem 5.8 relation reductions;
* ``repro.spanners``   — document spanners: regex formulas, span algebra,
  regular / core / generalized core spanner classes.

Quick taste::

    >>> from repro.ef import equiv_k
    >>> equiv_k("a" * 12, "a" * 14, 2)
    True
    >>> from repro.fc import models, phi_ww
    >>> models("abab", phi_ww(), "ab")
    True
"""

__version__ = "1.0.0"

__all__ = [
    "words",
    "fc",
    "fcreg",
    "ef",
    "foeq",
    "semilinear",
    "core",
    "spanners",
]
