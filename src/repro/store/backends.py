"""Byte-level storage backends behind one small protocol.

A backend maps hex keys to opaque record bytes; everything above it
(keying, envelope validation, statistics) lives in
:class:`repro.store.core.ArtifactStore`.  Two implementations ship:

* :class:`SqliteBackend` — one ``artifacts.sqlite`` file, WAL journal,
  ``INSERT OR REPLACE`` upserts inside implicit transactions so
  concurrent writers (engine worker pools, a serve daemon and a warm
  run side by side) serialise instead of corrupting each other.  The
  connection is re-opened after a ``fork`` (sqlite handles must not
  cross processes), which is exactly what the engine's fork-based
  worker pools need.
* :class:`MemoryBackend` — a dict; tests and ephemeral daemons.

LMDB / RocksDB / DuckDB backends can be added behind the same four
methods without touching any caller.
"""

from __future__ import annotations

import os
import sqlite3
from pathlib import Path
from typing import Iterable, Protocol

__all__ = [
    "MemoryBackend",
    "SqliteBackend",
    "StoreBackend",
    "open_backend",
]


class StoreBackend(Protocol):
    """The pluggable storage contract."""

    def get(self, key: str) -> bytes | None:
        """Record bytes for ``key``, or ``None`` when absent."""

    def put(self, key: str, record: bytes) -> None:
        """Persist ``record`` under ``key`` (last writer wins)."""

    def keys(self) -> list[str]:
        """Every stored key, sorted (introspection and tests)."""

    def describe(self) -> dict:
        """Backend name and location for reports."""


class MemoryBackend:
    """Process-local dict backend (nothing survives the process)."""

    def __init__(self) -> None:
        self._records: dict[str, bytes] = {}

    def get(self, key: str) -> bytes | None:
        return self._records.get(key)

    def put(self, key: str, record: bytes) -> None:
        self._records[key] = bytes(record)

    def keys(self) -> list[str]:
        return sorted(self._records)

    def describe(self) -> dict:
        return {"backend": "memory", "path": None}


class SqliteBackend:
    """Single-file sqlite backend, safe under concurrent writers.

    ``busy_timeout`` makes lock contention block-and-retry instead of
    raising; WAL keeps readers unblocked while a writer commits.  The
    store is a cache — a crash may lose the most recent records but can
    never serve a torn one (sqlite pages are atomic), and the envelope
    validation above treats anything unreadable as a miss anyway.
    """

    def __init__(self, path: str | Path, timeout_s: float = 30.0) -> None:
        self.path = Path(path)
        self._timeout_s = timeout_s
        self._conn: sqlite3.Connection | None = None
        self._pid = -1

    def __getstate__(self) -> dict:
        # Spawn-based worker pools pickle the backend to re-open it in
        # the child; the live sqlite handle must never travel.
        state = self.__dict__.copy()
        state["_conn"] = None
        state["_pid"] = -1
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def _connection(self) -> sqlite3.Connection:
        # A connection must never cross a fork: worker pools inherit the
        # object but open their own handle on first use.
        pid = os.getpid()
        if self._conn is None or self._pid != pid:
            if self._conn is not None and self._pid == pid:
                self._conn.close()
            self.path.parent.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(
                str(self.path),
                timeout=self._timeout_s,
                isolation_level=None,  # autocommit: one upsert, one txn
                check_same_thread=False,  # the serve daemon is threaded
            )
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(
                "CREATE TABLE IF NOT EXISTS artifacts ("
                "key TEXT PRIMARY KEY, record BLOB NOT NULL)"
            )
            self._conn = conn
            self._pid = pid
        return self._conn

    def get(self, key: str) -> bytes | None:
        row = self._connection().execute(
            "SELECT record FROM artifacts WHERE key = ?", (key,)
        ).fetchone()
        return None if row is None else bytes(row[0])

    def put(self, key: str, record: bytes) -> None:
        self._connection().execute(
            "INSERT OR REPLACE INTO artifacts (key, record) VALUES (?, ?)",
            (key, sqlite3.Binary(bytes(record))),
        )

    def keys(self) -> list[str]:
        rows = self._connection().execute(
            "SELECT key FROM artifacts ORDER BY key"
        ).fetchall()
        return [row[0] for row in rows]

    def describe(self) -> dict:
        return {"backend": "sqlite", "path": str(self.path)}

    def close(self) -> None:
        if self._conn is not None and self._pid == os.getpid():
            self._conn.close()
        self._conn = None
        self._pid = -1


def open_backend(spec: str | Path) -> "StoreBackend":
    """Resolve a backend from a spec string or path.

    ``"memory"`` / ``":memory:"`` → :class:`MemoryBackend`;
    ``"sqlite:PATH"`` → :class:`SqliteBackend` at PATH; a bare path →
    sqlite at ``PATH/artifacts.sqlite`` when PATH is (or will be) a
    directory, else sqlite at PATH itself.
    """
    text = str(spec)
    if text in ("memory", ":memory:"):
        return MemoryBackend()
    if text.startswith("sqlite:"):
        return SqliteBackend(text[len("sqlite:"):])
    path = Path(text)
    if path.suffix in (".sqlite", ".db", ".sqlite3"):
        return SqliteBackend(path)
    return SqliteBackend(path / "artifacts.sqlite")


def backend_names() -> Iterable[str]:
    """The backend specs ``open_backend`` understands (docs/CLI help)."""
    return ("memory", "sqlite:PATH", "DIR (→ DIR/artifacts.sqlite)")
