"""Process-global counters for the artifact store.

Mirrors the :mod:`repro.kernel.stats` protocol: the engine executor
samples :func:`snapshot` around every task (inside the worker process
that runs it) and merges per-task deltas into the ``store`` section of
``BENCH_engine.json``, next to the ``cache``/``lru_caches``/``solver``
sections.  Counters are cumulative per process; consumers work with
deltas, so absolute values never need resetting outside of tests.

Updates hold the module lock (see :mod:`repro.kernel.stats` for the
rationale): daemon handler threads race on the ``+=`` read-modify-write,
and the lock is reached through a pid-guarded :func:`_lock` accessor so
forked engine workers never inherit a held lock.
"""

from __future__ import annotations

import os
import threading
from typing import Mapping

__all__ = ["COUNTER_NAMES", "diff", "record", "reset", "snapshot"]

#: Every counter the store maintains.  ``hits``/``misses`` count
#: :meth:`ArtifactStore.load` probes (a stale or corrupted record is a
#: miss *and* an error), ``stores`` counts persisted records, and the
#: byte counters measure encoded record sizes through the backend.
COUNTER_NAMES = (
    "store_hits",
    "store_misses",
    "store_stores",
    "store_errors",
    "store_bytes_read",
    "store_bytes_written",
)

_COUNTERS: dict[str, int] = {name: 0 for name in COUNTER_NAMES}

_LOCK = threading.Lock()
_LOCK_PID = os.getpid()


def _lock() -> threading.Lock:
    """The module lock, rebuilt in the child after a ``fork``."""
    global _LOCK, _LOCK_PID
    pid = os.getpid()
    if pid != _LOCK_PID:
        _LOCK = threading.Lock()
        _LOCK_PID = pid
    return _LOCK


def record(name: str, amount: int = 1) -> None:
    """Increment one counter (unknown names raise ``KeyError``)."""
    with _lock():
        _COUNTERS[name] += amount


def snapshot() -> dict[str, int]:
    """Current value of every counter (a consistent point-in-time copy)."""
    with _lock():
        return dict(_COUNTERS)


def diff(
    before: Mapping[str, int], after: Mapping[str, int]
) -> dict[str, int]:
    """Counter deltas between two snapshots; zero-delta entries omitted."""
    deltas = {}
    for name in COUNTER_NAMES:
        delta = after.get(name, 0) - before.get(name, 0)
        if delta:
            deltas[name] = delta
    return deltas


def reset() -> None:
    """Zero every counter (tests only — deltas never need this)."""
    with _lock():
        for name in COUNTER_NAMES:
            _COUNTERS[name] = 0
