"""Process-global counters for the artifact store.

Mirrors the :mod:`repro.kernel.stats` protocol: the engine executor
samples :func:`snapshot` around every task (inside the worker process
that runs it) and merges per-task deltas into the ``store`` section of
``BENCH_engine.json``, next to the ``cache``/``lru_caches``/``solver``
sections.  Counters are cumulative per process; consumers work with
deltas, so absolute values never need resetting outside of tests.
"""

from __future__ import annotations

from typing import Mapping

__all__ = ["COUNTER_NAMES", "diff", "record", "reset", "snapshot"]

#: Every counter the store maintains.  ``hits``/``misses`` count
#: :meth:`ArtifactStore.load` probes (a stale or corrupted record is a
#: miss *and* an error), ``stores`` counts persisted records, and the
#: byte counters measure encoded record sizes through the backend.
COUNTER_NAMES = (
    "store_hits",
    "store_misses",
    "store_stores",
    "store_errors",
    "store_bytes_read",
    "store_bytes_written",
)

_COUNTERS: dict[str, int] = {name: 0 for name in COUNTER_NAMES}


def record(name: str, amount: int = 1) -> None:
    """Increment one counter (unknown names raise ``KeyError``)."""
    _COUNTERS[name] += amount


def snapshot() -> dict[str, int]:
    """Current value of every counter."""
    return dict(_COUNTERS)


def diff(
    before: Mapping[str, int], after: Mapping[str, int]
) -> dict[str, int]:
    """Counter deltas between two snapshots; zero-delta entries omitted."""
    deltas = {}
    for name in COUNTER_NAMES:
        delta = after.get(name, 0) - before.get(name, 0)
        if delta:
            deltas[name] = delta
    return deltas


def reset() -> None:
    """Zero every counter (tests only — deltas never need this)."""
    for name in COUNTER_NAMES:
        _COUNTERS[name] = 0
