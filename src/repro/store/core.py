"""Content-addressed artifact records over a pluggable backend.

The keying mirrors :mod:`repro.engine.cache` exactly:

    SHA-256(store salt ‖ artifact kind ‖ kind version ‖ canonical args)

with ``\\x00`` separators between parts.  Invalidation is purely by
salt/version — bump :data:`STORE_SALT` to drop every artifact at once,
or a single kind's version constant (in :mod:`repro.store.artifacts`)
to drop just that kind.  There is no TTL and no eviction: the store is
a cache of deterministic computations, so a stale, torn or corrupted
record is simply treated as a miss and rebuilt.

Records are JSON envelopes ``{key, salt, kind, version, args, payload}``
encoded with ``sort_keys=True`` so the same payload always produces the
same bytes (the differential tests assert store round-trips are
bit-identical to cold builds at the decoded-payload level, and the
envelope determinism makes backend-level byte comparisons meaningful
too).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping

from repro.store import stats
from repro.store.backends import StoreBackend

__all__ = ["STORE_SALT", "ArtifactStore", "canonical_args"]

#: Global artifact-store salt.  Independent of ``ENGINE_SALT`` on
#: purpose: task-result keying and kernel-artifact keying version
#: independently (a solver-internals change invalidates artifacts but
#: not task results, and vice versa).
STORE_SALT = "repro-store-v1"


def canonical_args(args: Mapping[str, Any]) -> str:
    """Deterministic text form of an artifact's identifying arguments."""
    return json.dumps(args, sort_keys=True, ensure_ascii=False)


class ArtifactStore:
    """Validated get/put of artifact payloads over a :class:`StoreBackend`.

    Every method carries the declared ``store`` effect: a
    :meth:`load` either returns exactly the payload that was stored for
    this (salt, kind, version, args) — which the hydration layer
    guarantees equals the cold-built value — or reports a miss.
    """

    def __init__(self, backend: StoreBackend, salt: str = STORE_SALT) -> None:
        self.backend = backend
        self.salt = salt

    # -- keys ----------------------------------------------------------

    def key_for(self, kind: str, version: str, args: Mapping[str, Any]) -> str:
        hasher = hashlib.sha256()
        for part in (self.salt, kind, version, canonical_args(args)):
            hasher.update(part.encode("utf-8"))
            hasher.update(b"\x00")
        return hasher.hexdigest()

    # -- record IO -----------------------------------------------------

    def load(
        self, kind: str, version: str, args: Mapping[str, Any]
    ) -> Any | None:
        """Payload stored for this artifact, or ``None`` on miss.

        Anything unreadable — undecodable bytes, a foreign or truncated
        envelope, a salt/kind/version mismatch after a key collision in
        a hand-edited backend — counts as both an error and a miss.
        """
        key = self.key_for(kind, version, args)
        try:
            raw = self.backend.get(key)
        except Exception:
            stats.record("store_errors")
            stats.record("store_misses")
            return None
        if raw is None:
            stats.record("store_misses")
            return None
        try:
            record = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            stats.record("store_errors")
            stats.record("store_misses")
            return None
        if (
            not isinstance(record, dict)
            or record.get("key") != key
            or record.get("salt") != self.salt
            or record.get("kind") != kind
            or record.get("version") != version
            or "payload" not in record
        ):
            stats.record("store_errors")
            stats.record("store_misses")
            return None
        stats.record("store_hits")
        stats.record("store_bytes_read", len(raw))
        return record["payload"]

    def store(
        self, kind: str, version: str, args: Mapping[str, Any], payload: Any
    ) -> str:
        """Persist ``payload`` for this artifact; return its key.

        Write failures are swallowed (counted as errors): the store is
        an accelerator, and a solver that computed a value must not die
        because persisting it failed.
        """
        key = self.key_for(kind, version, args)
        record = {
            "key": key,
            "salt": self.salt,
            "kind": kind,
            "version": version,
            "args": dict(args),
            "payload": payload,
        }
        encoded = json.dumps(record, sort_keys=True, ensure_ascii=False)
        raw = encoded.encode("utf-8")
        try:
            self.backend.put(key, raw)
        except Exception:
            stats.record("store_errors")
            return key
        stats.record("store_stores")
        stats.record("store_bytes_written", len(raw))
        return key

    # -- reporting -----------------------------------------------------

    def describe(self) -> dict[str, Any]:
        info = dict(self.backend.describe())
        info["salt"] = self.salt
        return info

    def close(self) -> None:
        close = getattr(self.backend, "close", None)
        if close is not None:
            close()
