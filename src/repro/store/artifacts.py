"""Artifact kinds, version salts, and plain-data codecs.

This module is the vocabulary the domain layers and the store agree on.
It deliberately imports nothing from the kernel: payloads are
JSON-shaped lists of strings/ints/bools, and each domain module
(:mod:`repro.kernel.interning`, :mod:`repro.ef.solver`,
:mod:`repro.fc.semantics`) encodes its objects into that shape at the
boundary and decodes on hydration.  All encoders are deterministic —
the same in-memory object always produces the same payload (and hence
the same stored bytes) — which is what makes the cold-vs-hydrated
differential tests meaningful.

Version constants are per-kind salts: bump one when that artifact's
payload shape or producing semantics changes, and every stored record
of the kind silently becomes a miss.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Mapping, Sequence

__all__ = [
    "EF_MEMO_KIND",
    "EF_MEMO_VERSION",
    "AUTOMORPHISM_KIND",
    "AUTOMORPHISM_VERSION",
    "INTERN_UNIVERSE_KIND",
    "INTERN_UNIVERSE_VERSION",
    "SWEEP_UNIVERSE_KIND",
    "SWEEP_UNIVERSE_VERSION",
    "FC_ASSIGNMENTS_KIND",
    "FC_ASSIGNMENTS_VERSION",
    "SWEEP_RELATION_KIND",
    "SWEEP_RELATION_VERSION",
    "decode_assignments",
    "decode_memo",
    "decode_permutations",
    "decode_relation_rows",
    "encode_assignments",
    "encode_memo",
    "encode_permutations",
    "encode_relation_rows",
    "fingerprint_strings",
    "fingerprint_text",
]

#: EF transposition tables: ``{(rounds, position): bool}`` over interned
#: ids, which are stable across processes (ids follow the deterministic
#: ⊥-first ``(len, text)`` order).
EF_MEMO_KIND = "ef-memo"
EF_MEMO_VERSION = "1"

#: Automorphism groups of interned universes, as id-permutation tuples.
AUTOMORPHISM_KIND = "automorphism-group"
AUTOMORPHISM_VERSION = "1"

#: One word's factor universe in ``(len, text)`` order.
INTERN_UNIVERSE_KIND = "intern-universe"
INTERN_UNIVERSE_VERSION = "1"

#: Whole-grid factor universes for a membership sweep: every word of
#: ``Σ^{≤n}`` in enumeration order, each with its ordered factor list.
SWEEP_UNIVERSE_KIND = "sweep-universe"
SWEEP_UNIVERSE_VERSION = "1"

#: ``⟦φ⟧(w)`` result sets: the satisfying assignments of one formula on
#: one word, in enumeration (yield) order.
FC_ASSIGNMENTS_KIND = "fc-assignments"
FC_ASSIGNMENTS_VERSION = "1"

#: Whole-grid satisfying-assignment relations from the relational sweep
#: (``SweepProgram.relation``): for every word of ``Σ^{≤n}`` in
#: enumeration order, the rows of ⟦φ⟧(w) as value tuples over the
#: formula's free variables in sorted-name order, rows in the sweep's
#: deterministic nested ``(len, text)`` scan order (which equals the
#: per-word oracle's yield order — the cold-vs-hydrated differential
#: tests rely on it).
SWEEP_RELATION_KIND = "sweep-relation"
SWEEP_RELATION_VERSION = "1"


def fingerprint_text(text: str) -> str:
    """Content hash of one identifying string (e.g. a formula repr)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def fingerprint_strings(strings: Iterable[str]) -> str:
    """Content hash of an ordered string sequence (e.g. a universe).

    ``\\x1f`` separation keeps the encoding prefix-free over factor
    strings (which never contain control characters).
    """
    hasher = hashlib.sha256()
    for text in strings:
        hasher.update(text.encode("utf-8"))
        hasher.update(b"\x1f")
    return hasher.hexdigest()


# -- EF transposition tables ------------------------------------------------


def encode_memo(memo: Mapping) -> list:
    """``{(rounds, ((a, b), ...)): bool}`` → sorted plain lists."""
    return [
        [rounds, [[a, b] for a, b in position], bool(value)]
        for (rounds, position), value in sorted(
            memo.items(), key=lambda item: (item[0][0], item[0][1])
        )
    ]


def decode_memo(payload: Sequence) -> dict:
    """Inverse of :func:`encode_memo` (tuples restored for hashability)."""
    return {
        (rounds, tuple((a, b) for a, b in position)): bool(value)
        for rounds, position, value in payload
    }


# -- automorphism groups ----------------------------------------------------


def encode_permutations(group: Sequence[Sequence[int]]) -> list:
    """Permutation tuples → lists (already deterministically sorted)."""
    return [list(perm) for perm in group]


def decode_permutations(payload: Sequence) -> tuple:
    """Inverse of :func:`encode_permutations`."""
    return tuple(tuple(int(x) for x in perm) for perm in payload)


# -- FC assignment sets -----------------------------------------------------


def encode_assignments(assignments: Sequence[Sequence[tuple[str, str]]]) -> list:
    """Per-assignment ``(variable name, value)`` pairs → plain lists.

    The caller passes pairs already sorted by variable name; enumeration
    order across assignments is preserved (it is part of the contract —
    hydrated generators must yield in the cold order).
    """
    return [[[name, value] for name, value in row] for row in assignments]


def decode_assignments(payload: Sequence) -> list[list[tuple[str, str]]]:
    """Inverse of :func:`encode_assignments`."""
    return [[(name, value) for name, value in row] for row in payload]


# -- relational sweep tables ------------------------------------------------


def encode_relation_rows(
    grid: Sequence[tuple[str, Sequence[Sequence[str]]]],
) -> list:
    """``(word, rows)`` pairs → plain lists, orders preserved.

    Column names are not stored per row (unlike ``encode_assignments``):
    the relation's column order is fixed by the artifact key's formula
    (free variables in sorted-name order), so rows are bare value
    tuples — the join-friendly shape the sweep emits.
    """
    return [
        [word, [list(row) for row in rows]] for word, rows in grid
    ]


def decode_relation_rows(payload: Sequence) -> list[tuple[str, list[tuple[str, ...]]]]:
    """Inverse of :func:`encode_relation_rows`."""
    return [
        (word, [tuple(row) for row in rows]) for word, rows in payload
    ]
