"""Process-global store activation.

Hydration hooks in the kernel and FC layers are opt-in: they consult
:func:`active` on first touch and do nothing when no store is active.
Activation is explicit — the CLI boundary (``repro run --store``,
``repro warm``, ``repro serve``) resolves a path/spec and calls
:func:`activate` before any solver runs.  The engine executor activates
the store in the parent *before* its worker pools fork, so every worker
inherits the configured backend (sqlite connections re-open lazily per
pid, see :mod:`repro.store.backends`).

There is deliberately no lazy environment auto-configuration inside the
hydration path: the single environment read lives here, mirroring
``engine.cache.default_cache_dir``, and only picks where records live
on disk — it never flows into keys or payloads.
"""

from __future__ import annotations

import os
import threading
from pathlib import Path

from repro.store.backends import open_backend
from repro.store.core import ArtifactStore

__all__ = [
    "DEFAULT_STORE_DIR",
    "activate",
    "active",
    "deactivate",
    "default_store_path",
    "load",
    "open_store",
    "publish",
]

#: Default store location, overridable via ``$REPRO_STORE_DIR``.
DEFAULT_STORE_DIR = ".repro-store"

_ACTIVE: ArtifactStore | None = None

#: Guards ``_ACTIVE`` swaps: the serve daemon's lifecycle thread tears
#: the store down (``server_close`` → :func:`deactivate`) while handler
#: threads may still be re-activating in tests or nested CLI flows.
#: Reads (:func:`active`, :func:`load`, :func:`publish`) stay lock-free:
#: they snapshot the reference once, and a stale snapshot is identical
#: to the read having happened just before the swap.
_RUNTIME_LOCK = threading.Lock()


def default_store_path() -> Path:
    # Config-only: the value picks where artifact records live, never
    # what they contain — keys and payloads are independent of it.
    # repro-lint: allow[determinism] config-only env read at the store boundary
    return Path(os.environ.get("REPRO_STORE_DIR", DEFAULT_STORE_DIR))


def open_store(spec: str | Path | None = None) -> ArtifactStore:
    """Open an :class:`ArtifactStore` from a backend spec or path."""
    return ArtifactStore(open_backend(spec if spec is not None else default_store_path()))


def activate(store: ArtifactStore) -> ArtifactStore | None:
    """Make ``store`` the process-global store; return the previous one."""
    global _ACTIVE
    with _RUNTIME_LOCK:
        previous = _ACTIVE
        _ACTIVE = store
        return previous


def active() -> ArtifactStore | None:
    """The currently-activated store, or ``None`` (hydration disabled)."""
    return _ACTIVE


def deactivate(previous: ArtifactStore | None = None) -> None:
    """Clear the global store (or restore ``previous``, for nesting)."""
    global _ACTIVE
    with _RUNTIME_LOCK:
        _ACTIVE = previous


def load(kind: str, version: str, args: dict) -> object | None:
    """Load an artifact through the active store; ``None`` when inactive.

    This (with :func:`publish`) is the *declared-effect channel*: the
    only place hydration code is allowed to touch the store.  Functions
    in this module carry the ``{store}`` effect summary, so callers
    inherit a first-class ``store`` atom instead of ``unknown`` — and
    ``effects.worker-isolation`` can verify nobody reaches the store
    around the channel.
    """
    store = _ACTIVE
    if store is None:
        return None
    return store.load(kind, version, args)


def publish(kind: str, version: str, args: dict, payload: object) -> str | None:
    """Write an artifact through the active store; no-op when inactive.

    Returns the record key, or ``None`` without an active store.  See
    :func:`load` for the channel discipline.
    """
    store = _ACTIVE
    if store is None:
        return None
    return store.store(kind, version, args, payload)
