"""Persistent kernel-artifact store with pluggable backends.

The engine's result cache (:mod:`repro.engine.cache`) persists *task
outputs*; everything underneath it — interned factor universes,
automorphism groups, sweep family tables, EF transposition tables — is
rebuilt from scratch by every process and every worker pool.  That cold
start dominates the heaviest remaining tasks (``prim/equiv/anbn-k2``,
E16).  This package closes the gap with a second, lower persistence
layer:

* :mod:`repro.store.core` — :class:`ArtifactStore`, a content-addressed
  record store keyed by the same salt ‖ kind ‖ version ‖ canonical-args
  SHA-256 scheme the engine cache uses, so invalidation is purely by
  salt/version and a corrupted or stale record is indistinguishable
  from a miss;
* :mod:`repro.store.backends` — the :class:`StoreBackend` byte-level
  protocol with a sqlite backend (concurrent-writer safe, one file)
  and an in-memory backend (tests, ephemeral daemons); LMDB/RocksDB/
  DuckDB can slot in behind the same four methods;
* :mod:`repro.store.runtime` — process-global activation: the engine
  CLI, the executor and ``python -m repro serve`` activate a store
  before any solver runs (and before worker pools fork), and the
  kernel/fc hydration hooks consult :func:`runtime.active` on first
  touch;
* :mod:`repro.store.artifacts` — plain-data codecs for the four
  artifact kinds.  This layer never imports the kernel: payloads are
  JSON-shaped lists/dicts, and the domain modules (``repro.kernel``,
  ``repro.ef.solver``, ``repro.fc.semantics``) do their own
  encode/decode at the boundary.  Serialize → store → load round-trips
  are bit-identical (differential tests in ``tests/store/``).

Effect discipline: every function in this package carries the declared
``store`` effect (the channel ``effects.worker-isolation`` and
``effects.purity-propagation`` recognise) — a store probe either
returns exactly the value a cold build would compute or reports a miss,
so store-reaching code stays value-deterministic.
"""

from repro.store.backends import MemoryBackend, SqliteBackend, StoreBackend, open_backend
from repro.store.core import STORE_SALT, ArtifactStore
from repro.store.runtime import activate, active, deactivate, default_store_path

__all__ = [
    "ArtifactStore",
    "MemoryBackend",
    "STORE_SALT",
    "SqliteBackend",
    "StoreBackend",
    "activate",
    "active",
    "deactivate",
    "default_store_path",
    "open_backend",
]
