"""Central registry for in-process ``lru_cache`` statistics.

The solver stack memoises a handful of hot constructors with
``functools.lru_cache``.  Those caches are transient (per process) but
their hit rates explain a large part of the engine's in-process
performance, so each site registers itself here and the executor samples
:func:`snapshot` around every task execution to report per-task deltas.

This module must not import anything else from :mod:`repro`: the
instrumented modules live in every layer of the package and import *it*
at import time, so it sits below the whole import-layering DAG (see
``repro.analysis.layering``).
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

__all__ = [
    "aggregate",
    "clear_all",
    "diff",
    "register",
    "registered_names",
    "snapshot",
]

_REGISTRY: dict[str, Callable[..., Any]] = {}

_COUNTER_FIELDS = ("hits", "misses", "currsize")


def register(name: str, func: Callable[..., Any]) -> Callable[..., Any]:
    """Register an ``lru_cache``-wrapped function under ``name``.

    Returns the function unchanged so the call can wrap a definition.
    Re-registering the same name with the same function is a no-op
    (modules may be reloaded); a different function is an error.
    """
    if not hasattr(func, "cache_info"):
        raise TypeError(f"{name!r}: object has no cache_info(); not an lru_cache")
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not func:
        raise ValueError(f"cache name already registered: {name!r}")
    _REGISTRY[name] = func
    return func


def registered_names() -> list[str]:
    return sorted(_REGISTRY)


def snapshot() -> dict[str, dict[str, int | None]]:
    """Current counters of every registered cache."""
    result = {}
    for name in sorted(_REGISTRY):
        info = _REGISTRY[name].cache_info()
        result[name] = {
            "hits": info.hits,
            "misses": info.misses,
            "maxsize": info.maxsize,
            "currsize": info.currsize,
        }
    return result


def diff(
    before: Mapping[str, Mapping[str, int | None]],
    after: Mapping[str, Mapping[str, int | None]],
) -> dict[str, dict[str, int]]:
    """Per-cache counter deltas between two snapshots.

    Caches absent from ``before`` count from zero; caches with no
    activity are omitted so per-task records stay small.
    """
    deltas: dict[str, dict[str, int]] = {}
    for name, now in after.items():
        was = before.get(name, {})
        entry = {
            fieldname: (now.get(fieldname) or 0) - (was.get(fieldname) or 0)
            for fieldname in _COUNTER_FIELDS
        }
        if any(entry[fieldname] for fieldname in ("hits", "misses")):
            deltas[name] = entry
    return deltas


def aggregate(
    snap: Mapping[str, Mapping[str, int | None]] | None = None,
) -> dict[str, int]:
    """Total hits/misses/residency across all (or the given) caches."""
    snap = snapshot() if snap is None else snap
    totals = {fieldname: 0 for fieldname in _COUNTER_FIELDS}
    for counters in snap.values():
        for fieldname in _COUNTER_FIELDS:
            totals[fieldname] += counters.get(fieldname) or 0
    return totals


def clear_all() -> None:
    """Reset every registered cache (mainly for tests)."""
    for func in _REGISTRY.values():
        func.cache_clear()
