"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``report``                 — the full inexpressibility report
* ``equiv W V K``            — decide W ≡_K V with the exact solver
* ``rank W V [MAX]``         — least k with W ≢_k V (≤ MAX, default 3)
* ``synth W V K``            — synthesise + verify a separating FC(K) sentence
* ``check WORD FORMULA``     — model-check a named paper formula
                               (ww | no-cube | vbv | fib) on WORD
* ``pow2 [K]``               — minimal unary witness pair for rank K (≤ 2)
* ``eval FORMULA WORD [SIGMA]`` — parse FORMULA (text syntax, see
                               repro.fc.parser) and model-check it on WORD
* ``certify [PATH]``         — emit (or, given a path, re-verify) the
                               JSON certificate bundle
* ``run [--jobs N] [--only E12,E14] [--no-cache] [--json PATH]``
                             — execute the E01–E23 experiment DAG through
                               the parallel engine with the
                               content-addressed result cache
                               (see repro.engine)
* ``lint [--rule NAME] [--json PATH] [--baseline [PATH]]``
                             — run the invariant lint suite (dispatch
                               exhaustiveness, cache soundness,
                               determinism, lru_cache purity, import
                               layering, frozen-AST discipline; see
                               repro.analysis)
* ``warm [--store SPEC] [WORD...]``
                             — prebuild kernel artifacts into the
                               persistent store (see repro.store)
* ``serve [--host H] [--port P] [--store SPEC]``
                             — long-lived JSON-lines query daemon over
                               the warm kernel stack (see repro.serve)
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main"]

#: Mirrors ``repro.fc.builders.PAPER_FORMULAS`` (the source of truth) so
#: the argparse ``choices`` list needs no package import at startup; a
#: test pins the two in sync.
PAPER_FORMULA_NAMES = ("fib", "no-cube", "vbv", "ww")


def _cmd_report(_: argparse.Namespace) -> int:
    from repro.core.inexpressibility import language_report, relation_report
    from repro.core.pow2 import KNOWN_MINIMAL_PAIRS
    from repro.core.relations import PSI_REDUCTIONS
    from repro.core.witnesses import WITNESS_FAMILIES

    print("Lemma 3.6 unary witness pairs (exact):")
    for k, (p, q) in sorted(KNOWN_MINIMAL_PAIRS.items()):
        print(f"  k = {k}: a^{p} ≡_{k} a^{q}")
    print("\nLemma 4.14 languages (witness + boundedness + ≡_k checks):")
    for name in sorted(WITNESS_FAMILIES):
        report = language_report(name, ranks=(0, 1), verify_equivalence_up_to=1)
        print(f"  {name:10s} {report.paper_ref:28s} → {report.verdict}")
    print("\nTheorem 5.8 relation reductions (L(ψ) = L on Σ^{≤6}):")
    for name in sorted(PSI_REDUCTIONS):
        report = relation_report(name, max_length=6)
        status = "✓" if report.reduction_agrees else "✗"
        print(f"  {status} {name:8s} → {report.target_language}")
    return 0


def _cmd_equiv(args: argparse.Namespace) -> int:
    from repro.ef.equivalence import equiv_k

    verdict = equiv_k(args.w, args.v, args.k)
    symbol = "≡" if verdict else "≢"
    print(f"{args.w!r} {symbol}_{args.k} {args.v!r}")
    return 0


def _cmd_rank(args: argparse.Namespace) -> int:
    from repro.ef.equivalence import distinguishing_rank

    rank = distinguishing_rank(args.w, args.v, args.max_k)
    if rank is None:
        print(f"equivalent through rank {args.max_k}")
    else:
        print(f"distinguishing rank: {rank}")
    return 0


def _cmd_synth(args: argparse.Namespace) -> int:
    from repro.ef.synthesis import (
        SynthesisFailure,
        synthesize_distinguishing_sentence,
    )
    from repro.fc.semantics import defines_language_member
    from repro.fc.syntax import quantifier_rank

    alphabet = "".join(sorted(set(args.w) | set(args.v))) or "a"
    try:
        phi = synthesize_distinguishing_sentence(args.w, args.v, args.k, alphabet)
    except SynthesisFailure as failure:
        print(f"no certificate: {failure}")
        return 1
    print(f"φ := {phi!r}")
    print(f"qr(φ) = {quantifier_rank(phi)}")
    print(f"{args.w!r} ⊨ φ: {defines_language_member(args.w, phi, alphabet)}")
    print(f"{args.v!r} ⊨ φ: {defines_language_member(args.v, phi, alphabet)}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.fc.builders import paper_formula
    from repro.fc.semantics import defines_language_member

    try:
        phi, alphabet = paper_formula(args.formula)
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2
    verdict = defines_language_member(args.word, phi, alphabet)
    print(f"{args.word!r} ⊨ φ_{args.formula}: {verdict}")
    return 0


def _cmd_eval(args: argparse.Namespace) -> int:
    from repro.fc.parser import FCParseError, parse_fc
    from repro.fc.semantics import defines_language_member
    from repro.fc.syntax import free_variables

    alphabet = args.alphabet or "".join(sorted(set(args.word))) or "a"
    try:
        phi = parse_fc(args.formula, alphabet)
    except FCParseError as error:
        print(f"parse error: {error}", file=sys.stderr)
        return 2
    if free_variables(phi):
        names = sorted(v.name for v in free_variables(phi))
        print(f"formula is open (free: {names}); quantify to evaluate",
              file=sys.stderr)
        return 2
    verdict = defines_language_member(args.word, phi, alphabet)
    print(f"{args.word!r} ⊨ φ: {verdict}")
    return 0


def _cmd_pow2(args: argparse.Namespace) -> int:
    from repro.core.pow2 import pow2_witness

    witness = pow2_witness(args.k)
    print(f"k = {witness.k}: minimal pair a^{witness.p} ≡_{witness.k} a^{witness.q}")
    return 0


def _cmd_certify(args: argparse.Namespace) -> int:
    import json

    from repro.core.certificates import (
        bundle_to_json,
        generate_bundle,
        verify_bundle,
    )

    if args.path is None:
        print(bundle_to_json(generate_bundle()))
        return 0
    with open(args.path, encoding="utf-8") as handle:
        bundle = json.load(handle)
    failures = verify_bundle(bundle)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("all certificates verified")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.engine.cli import cmd_run

    return cmd_run(args)


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.cli import cmd_lint

    return cmd_lint(args)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.cli import cmd_serve

    return cmd_serve(args)


def _cmd_warm(args: argparse.Namespace) -> int:
    from repro.serve.cli import cmd_warm

    return cmd_warm(args)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Executable reproduction of the PODS'24 FC/EF-games paper",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("report", help="full inexpressibility report")

    equiv = commands.add_parser("equiv", help="decide W ≡_K V")
    equiv.add_argument("w")
    equiv.add_argument("v")
    equiv.add_argument("k", type=int)

    rank = commands.add_parser("rank", help="least separating rank")
    rank.add_argument("w")
    rank.add_argument("v")
    rank.add_argument("max_k", type=int, nargs="?", default=3)

    synth = commands.add_parser("synth", help="separating-sentence synthesis")
    synth.add_argument("w")
    synth.add_argument("v")
    synth.add_argument("k", type=int)

    check = commands.add_parser("check", help="model-check a paper formula")
    check.add_argument("word")
    check.add_argument("formula", choices=PAPER_FORMULA_NAMES)

    pow2 = commands.add_parser("pow2", help="unary witness pair")
    pow2.add_argument("k", type=int, nargs="?", default=2)

    evaluate = commands.add_parser("eval", help="model-check formula text")
    evaluate.add_argument("formula")
    evaluate.add_argument("word")
    evaluate.add_argument("alphabet", nargs="?", default=None)

    certify = commands.add_parser(
        "certify", help="emit or re-verify the certificate bundle"
    )
    certify.add_argument("path", nargs="?", default=None)

    from repro.analysis.cli import add_lint_parser
    from repro.engine.cli import add_run_parser
    from repro.serve.cli import add_serve_parser, add_warm_parser

    add_run_parser(commands)
    add_lint_parser(commands)
    add_serve_parser(commands)
    add_warm_parser(commands)

    args = parser.parse_args(argv)
    handlers = {
        "report": _cmd_report,
        "equiv": _cmd_equiv,
        "rank": _cmd_rank,
        "synth": _cmd_synth,
        "check": _cmd_check,
        "pow2": _cmd_pow2,
        "eval": _cmd_eval,
        "certify": _cmd_certify,
        "run": _cmd_run,
        "lint": _cmd_lint,
        "serve": _cmd_serve,
        "warm": _cmd_warm,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
