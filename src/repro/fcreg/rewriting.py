"""Lemma 5.4, constructive direction: compile bounded-regular constraints
into pure FC.

The claim inside Lemma 5.4's proof: for every regular expression γ whose
language is *bounded*, there is an FC formula φ with
``⟦φ⟧(w) = ⟦x ∈̇ γ⟧(w)`` for all w.  The construction follows Ginsburg's
characterisation: decompose ``L(γ)`` over {finite word, ``w*``, union,
concatenation} (``repro.fcreg.bounded``) and translate generators:

* a fixed word ``u``   → ``(x ≐ u)``;
* ``u*``               → φ_{u*}(x) via the commutation trick
                         (Lothaire 1.3.2): ``∃z: (x ≐ u·z) ∧ (x ≐ z·u)``;
* union                → disjunction;
* concatenation        → ``∃x₁…xₙ: (x ≐ x₁⋯xₙ) ∧ ⋀ φᵢ(xᵢ)``.

:func:`eliminate_bounded_constraints` then rewrites a whole FC[REG]
formula whose constraints are all bounded into an equivalent FC formula —
the machinery behind experiment E16 and Theorem 5.8's reductions.
"""

from __future__ import annotations

from repro.fc.builders import phi_equals_word, phi_w_star
from repro.fc.sugar import FreshVariables, chain
from repro.fc.syntax import (
    And,
    Concat,
    Exists,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    Var,
    conjunction,
    disjunction,
)
from repro.fcreg.automata import compile_regex
from repro.fcreg.bounded import (
    BConcat,
    BStar,
    BUnion,
    BWord,
    BoundedExpr,
    bounded_decomposition,
    is_bounded_regular,
)
from repro.fcreg.constraints import RegularConstraint

__all__ = [
    "bounded_expr_to_fc",
    "constraint_to_fc",
    "eliminate_bounded_constraints",
]


def _false_formula(x: Var) -> Formula:
    """An unsatisfiable FC formula: ¬(x ≐ x·ε)."""
    from repro.fc.syntax import EPSILON

    return Not(Concat(x, x, EPSILON))


def bounded_expr_to_fc(
    x: Var, expr: BoundedExpr, fresh: FreshVariables | None = None
) -> Formula:
    """Translate a bounded decomposition into an FC formula φ(x)."""
    fresh = fresh or FreshVariables(prefix="_b")
    if isinstance(expr, BWord):
        return phi_equals_word(x, expr.word)
    if isinstance(expr, BStar):
        return phi_w_star(x, expr.word)
    if isinstance(expr, BUnion):
        if not expr.parts:
            return _false_formula(x)
        return disjunction(
            [bounded_expr_to_fc(x, part, fresh) for part in expr.parts]
        )
    if isinstance(expr, BConcat):
        if not expr.parts:
            return phi_equals_word(x, "")
        if len(expr.parts) == 1:
            return bounded_expr_to_fc(x, expr.parts[0], fresh)
        pieces = [fresh.fresh() for _ in expr.parts]
        split = chain(x, pieces)
        body = conjunction(
            [split]
            + [
                bounded_expr_to_fc(piece, part, fresh)
                for piece, part in zip(pieces, expr.parts)
            ]
        )
        for piece in reversed(pieces):
            body = Exists(piece, body)
        return body
    raise TypeError(f"unknown expression node: {expr!r}")


def constraint_to_fc(constraint: RegularConstraint) -> Formula:
    """Rewrite one bounded regular constraint ``(x ∈̇ γ)`` into FC.

    Raises ``ValueError`` when ``L(γ)`` is not bounded — Lemma 5.4 does not
    apply then, and indeed no FC equivalent need exist.
    """
    if not isinstance(constraint.x, Var):
        raise ValueError(
            "only variable-subject constraints are rewritten; constant "
            "subjects are decidable at build time"
        )
    dfa = compile_regex(constraint.regex)
    if not is_bounded_regular(dfa):
        raise ValueError(
            f"L({constraint.regex!r}) is not bounded; Lemma 5.4 does not apply"
        )
    expr = bounded_decomposition(dfa)
    return bounded_expr_to_fc(constraint.x, expr)


def eliminate_bounded_constraints(formula: Formula) -> Formula:
    """Rewrite every regular constraint in ``formula`` into pure FC.

    The result contains no :class:`RegularConstraint` atoms and defines
    the same relation/language, provided every constraint's language is
    bounded (``ValueError`` otherwise).
    """
    if isinstance(formula, RegularConstraint):
        return constraint_to_fc(formula)
    if isinstance(formula, Not):
        return Not(eliminate_bounded_constraints(formula.inner))
    if isinstance(formula, And):
        return And(
            eliminate_bounded_constraints(formula.left),
            eliminate_bounded_constraints(formula.right),
        )
    if isinstance(formula, Or):
        return Or(
            eliminate_bounded_constraints(formula.left),
            eliminate_bounded_constraints(formula.right),
        )
    if isinstance(formula, Implies):
        return Implies(
            eliminate_bounded_constraints(formula.left),
            eliminate_bounded_constraints(formula.right),
        )
    if isinstance(formula, Exists):
        return Exists(formula.var, eliminate_bounded_constraints(formula.inner))
    if isinstance(formula, Forall):
        return Forall(formula.var, eliminate_bounded_constraints(formula.inner))
    return formula
