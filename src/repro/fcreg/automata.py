"""Finite automata: Thompson construction, subset DFA, decision procedures.

The FC[REG] machinery needs exact regular-language operations: membership
(for the ``(x ∈̇ γ)`` semantics), emptiness and finiteness (for the
bounded-language analysis of Lemma 5.4), and language slices for the
extensional agreement checks.  All built from scratch:

* :class:`NFA` — Thompson construction from a :class:`Regex` AST;
* :class:`DFA` — subset construction, with reachability-based emptiness,
  cycle-based finiteness, and exact finite-language extraction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.fcreg.regex import (
    Concat,
    Empty,
    Epsilon,
    Letter,
    Regex,
    Star,
    Union,
)

__all__ = ["NFA", "DFA", "compile_regex", "regex_matches", "regex_language_slice"]

_EPS = None  # ε-transition label


@dataclass
class NFA:
    """A Thompson NFA: one start state, one accept state, ε-transitions.

    ``transitions[state]`` is a list of ``(label, target)`` with ``label``
    a letter or ``None`` for ε.
    """

    start: int
    accept: int
    transitions: dict[int, list[tuple[str | None, int]]]

    @classmethod
    def from_regex(cls, regex: Regex) -> "NFA":
        """Thompson construction (linear in the AST size)."""
        counter = [0]
        transitions: dict[int, list[tuple[str | None, int]]] = {}

        def fresh() -> int:
            counter[0] += 1
            return counter[0] - 1

        def add(source: int, label: str | None, target: int) -> None:
            transitions.setdefault(source, []).append((label, target))

        def build(node: Regex) -> tuple[int, int]:
            if isinstance(node, Empty):
                return fresh(), fresh()  # no connection: accepts nothing
            if isinstance(node, Epsilon):
                s, t = fresh(), fresh()
                add(s, _EPS, t)
                return s, t
            if isinstance(node, Letter):
                s, t = fresh(), fresh()
                add(s, node.symbol, t)
                return s, t
            if isinstance(node, Union):
                ls, lt = build(node.left)
                rs, rt = build(node.right)
                s, t = fresh(), fresh()
                add(s, _EPS, ls)
                add(s, _EPS, rs)
                add(lt, _EPS, t)
                add(rt, _EPS, t)
                return s, t
            if isinstance(node, Concat):
                ls, lt = build(node.left)
                rs, rt = build(node.right)
                add(lt, _EPS, rs)
                return ls, rt
            if isinstance(node, Star):
                inner_s, inner_t = build(node.inner)
                s, t = fresh(), fresh()
                add(s, _EPS, inner_s)
                add(s, _EPS, t)
                add(inner_t, _EPS, inner_s)
                add(inner_t, _EPS, t)
                return s, t
            raise TypeError(f"unknown regex node: {node!r}")

        start, accept = build(regex)
        return cls(start, accept, transitions)

    def epsilon_closure(self, states: Iterable[int]) -> frozenset[int]:
        """ε-closure of a state set."""
        stack = list(states)
        closure = set(stack)
        while stack:
            state = stack.pop()
            for label, target in self.transitions.get(state, []):
                if label is _EPS and target not in closure:
                    closure.add(target)
                    stack.append(target)
        return frozenset(closure)

    def step(self, states: frozenset[int], letter: str) -> frozenset[int]:
        """One letter-step followed by ε-closure."""
        moved = {
            target
            for state in states
            for label, target in self.transitions.get(state, [])
            if label == letter
        }
        return self.epsilon_closure(moved)

    def accepts(self, word: str) -> bool:
        """Direct NFA simulation."""
        current = self.epsilon_closure({self.start})
        for letter in word:
            current = self.step(current, letter)
            if not current:
                return False
        return self.accept in current

    def alphabet(self) -> frozenset[str]:
        """Letters actually used on transitions."""
        return frozenset(
            label
            for edges in self.transitions.values()
            for label, _ in edges
            if label is not _EPS
        )


@dataclass
class DFA:
    """A deterministic automaton from the subset construction.

    States are indices into ``subsets``; missing transitions go to an
    implicit dead state.
    """

    start: int  # repro-lint: domain[dfa-state] index into the subset numbering
    accepting: frozenset[int]  # repro-lint: domain[iter[dfa-state]]
    transitions: dict[tuple[int, str], int]  # repro-lint: domain[map[plain, dfa-state]] (state, letter) → state
    alphabet: frozenset[str]
    state_count: int = field(default=0)

    @classmethod
    def from_nfa(cls, nfa: NFA) -> "DFA":
        alphabet = nfa.alphabet()
        initial = nfa.epsilon_closure({nfa.start})
        index: dict[frozenset[int], int] = {initial: 0}  # repro-lint: domain[map[plain, dfa-state]] the dfa-state mint: subset → dense state id
        worklist = [initial]
        transitions: dict[tuple[int, str], int] = {}  # repro-lint: domain[map[plain, dfa-state]]
        while worklist:
            subset = worklist.pop()
            source = index[subset]
            # Sorted so state numbering and transition insertion order are
            # process-independent: frozenset[str] iterates in string-hash
            # order, which PYTHONHASHSEED randomises, and downstream
            # consumers (bounded decomposition, store fingerprints) key on
            # the resulting structure order.
            for letter in sorted(alphabet):
                target_subset = nfa.step(subset, letter)
                if not target_subset:
                    continue
                if target_subset not in index:
                    index[target_subset] = len(index)
                    worklist.append(target_subset)
                transitions[(source, letter)] = index[target_subset]
        accepting = frozenset(
            state for subset, state in index.items() if nfa.accept in subset
        )
        return cls(0, accepting, transitions, alphabet, len(index))

    def accepts(self, word: str) -> bool:
        state: int | None = self.start
        for letter in word:
            state = self.transitions.get((state, letter))
            if state is None:
                return False
        return state in self.accepting

    def _live_states(self) -> frozenset[int]:
        """States reachable from start and co-reachable to acceptance."""
        forward = {self.start}
        frontier = [self.start]
        while frontier:
            state = frontier.pop()
            for (source, _), target in self.transitions.items():
                if source == state and target not in forward:
                    forward.add(target)
                    frontier.append(target)
        reverse: dict[int, set[int]] = {}
        for (source, _), target in self.transitions.items():
            reverse.setdefault(target, set()).add(source)
        backward = set(self.accepting)
        frontier = list(self.accepting)
        while frontier:
            state = frontier.pop()
            for source in reverse.get(state, ()):
                if source not in backward:
                    backward.add(source)
                    frontier.append(source)
        return frozenset(forward & backward)

    def is_empty(self) -> bool:
        """Does the automaton accept no word at all?"""
        return not self._live_states()

    def is_finite(self) -> bool:
        """Is the accepted language finite? (no cycle through live states)"""
        live = self._live_states()
        if not live:
            return True
        # DFS cycle detection restricted to live states.
        adjacency: dict[int, list[int]] = {}
        for (source, _), target in self.transitions.items():
            if source in live and target in live:
                adjacency.setdefault(source, []).append(target)
        WHITE, GREY, BLACK = 0, 1, 2
        color = {state: WHITE for state in live}

        def has_cycle(state: int) -> bool:
            color[state] = GREY
            for nxt in adjacency.get(state, ()):
                if color[nxt] == GREY:
                    return True
                if color[nxt] == WHITE and has_cycle(nxt):
                    return True
            color[state] = BLACK
            return False

        return not any(
            color[state] == WHITE and has_cycle(state) for state in live
        )

    def language_if_finite(self, hard_cap: int = 100_000) -> frozenset[str]:
        """Enumerate the full language of a finite automaton.

        Raises ``ValueError`` if the language is infinite (check
        :meth:`is_finite` first) or exceeds ``hard_cap`` words.
        """
        if not self.is_finite():
            raise ValueError("language is infinite")
        live = self._live_states()
        results: set[str] = set()
        stack: list[tuple[int, str]] = [(self.start, "")]
        if self.start not in live:
            return frozenset()
        while stack:
            state, word = stack.pop()
            if state in self.accepting:
                results.add(word)
                if len(results) > hard_cap:
                    raise ValueError("finite language exceeds hard cap")
            for letter in self.alphabet:
                target = self.transitions.get((state, letter))
                if target is not None and target in live:
                    stack.append((target, word + letter))
        return frozenset(results)

    def language_slice(self, alphabet: str, max_length: int) -> frozenset[str]:
        """All accepted words of length ≤ ``max_length`` over ``alphabet``."""
        current: dict[int, set[str]] = {self.start: {""}}
        results: set[str] = set()
        if self.start in self.accepting:
            results.add("")
        for _ in range(max_length):
            following: dict[int, set[str]] = {}
            for state, words in current.items():
                for letter in alphabet:
                    target = self.transitions.get((state, letter))
                    if target is None:
                        continue
                    bucket = following.setdefault(target, set())
                    bucket.update(word + letter for word in words)
            current = following
            for state, words in current.items():
                if state in self.accepting:
                    results.update(words)
        return frozenset(results)


def compile_regex(regex: Regex) -> DFA:
    """Regex AST → DFA (Thompson + subset construction)."""
    return DFA.from_nfa(NFA.from_regex(regex))


def regex_matches(regex: Regex, word: str) -> bool:
    """One-shot membership (NFA simulation; no DFA blow-up)."""
    return NFA.from_regex(regex).accepts(word)


def regex_language_slice(
    regex: Regex, alphabet: str, max_length: int
) -> frozenset[str]:
    """``L(γ) ∩ Σ^{≤n}`` via the compiled DFA."""
    return compile_regex(regex).language_slice(alphabet, max_length)
