"""Bounded languages and bounded *regular* languages (Section 5).

A language is *bounded* if it is a subset of ``w₁*·w₂*⋯wₙ*``.  Lemma 5.4
hinges on two classical facts:

* (Ginsburg–Spanier) boundedness of a regular language is decidable;
* (Ginsburg 1966, Thm 1.1) the bounded regular languages are exactly the
  closure of the finite languages and the languages ``w*`` under finite
  union and concatenation.

Both are implemented constructively on the DFA:

* :func:`is_bounded_regular` — a DFA language is bounded iff, restricted
  to live states, every strongly connected component is a *simple cycle*
  (each state has at most one within-SCC successor).  In a deterministic
  automaton, a state with two within-SCC successors carries two cycles
  whose labels start with different letters, hence do not commute, which
  embeds a non-commuting ``(u|v)*`` — the Ginsburg–Spanier obstruction.
* :func:`bounded_decomposition` — for a bounded DFA, an explicit
  expression over {finite word, ``w*``, union, concatenation} denoting the
  same language; this is the object Lemma 5.4's rewriting consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.fcreg.automata import DFA

__all__ = [
    "BoundedExpr",
    "BWord",
    "BStar",
    "BUnion",
    "BConcat",
    "is_bounded_regular",
    "bounded_decomposition",
    "bounding_sequence",
    "is_bounded_by",
]


# --- expression tree over Ginsburg's generators -----------------------------


class BoundedExpr:
    """Base class for bounded-regular decomposition expressions."""

    def words_up_to(self, max_length: int) -> frozenset[str]:
        """The denoted language restricted to length ≤ ``max_length``."""
        raise NotImplementedError


@dataclass(frozen=True)
class BWord(BoundedExpr):
    """A single fixed word (finite-language generator)."""

    word: str

    def words_up_to(self, max_length: int) -> frozenset[str]:
        return (
            frozenset([self.word])
            if len(self.word) <= max_length
            else frozenset()
        )


@dataclass(frozen=True)
class BStar(BoundedExpr):
    """The generator ``w*``."""

    word: str

    def __post_init__(self) -> None:
        if not self.word:
            raise ValueError("ε* is just {ε}; use BWord('')")

    def words_up_to(self, max_length: int) -> frozenset[str]:
        result = set()
        power = ""
        while len(power) <= max_length:
            result.add(power)
            power += self.word
        return frozenset(result)


@dataclass(frozen=True)
class BUnion(BoundedExpr):
    """Finite union."""

    parts: tuple[BoundedExpr, ...]

    def words_up_to(self, max_length: int) -> frozenset[str]:
        result: set[str] = set()
        for part in self.parts:
            result |= part.words_up_to(max_length)
        return frozenset(result)


@dataclass(frozen=True)
class BConcat(BoundedExpr):
    """Finite concatenation."""

    parts: tuple[BoundedExpr, ...]

    def words_up_to(self, max_length: int) -> frozenset[str]:
        current: frozenset[str] = frozenset([""])
        for part in self.parts:
            piece = part.words_up_to(max_length)
            current = frozenset(
                left + right
                for left in current
                for right in piece
                if len(left) + len(right) <= max_length
            )
        return current


# --- boundedness decision ----------------------------------------------------


def _live_components(dfa: DFA) -> tuple[frozenset[int], list[list[int]]]:
    """Live states and their SCCs (Tarjan), in reverse topological order."""
    live = dfa._live_states()
    adjacency: dict[int, list[int]] = {state: [] for state in live}
    for (source, _), target in dfa.transitions.items():
        if source in live and target in live:
            adjacency[source].append(target)

    index_counter = [0]
    stack: list[int] = []
    lowlink: dict[int, int] = {}
    index: dict[int, int] = {}
    on_stack: set[int] = set()
    components: list[list[int]] = []

    def strongconnect(v: int) -> None:
        work = [(v, iter(adjacency[v]))]
        index[v] = lowlink[v] = index_counter[0]
        index_counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        while work:
            node, successors = work[-1]
            advanced = False
            for w in successors:
                if w not in index:
                    index[w] = lowlink[w] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(adjacency[w])))
                    advanced = True
                    break
                if w in on_stack:
                    lowlink[node] = min(lowlink[node], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    component.append(w)
                    if w == node:
                        break
                components.append(component)

    for state in live:
        if state not in index:
            strongconnect(state)
    return live, components


def _scc_internal_successors(
    dfa: DFA, live: frozenset[int], component: set[int]
) -> dict[int, list[tuple[str, int]]]:
    """Within-SCC outgoing edges per state."""
    result: dict[int, list[tuple[str, int]]] = {s: [] for s in component}
    for (source, letter), target in dfa.transitions.items():
        if source in component and target in component and target in live:
            result[source].append((letter, target))
    return result


def is_bounded_regular(dfa: DFA) -> bool:
    """Decide whether the DFA's language is bounded (Ginsburg–Spanier)."""
    live, components = _live_components(dfa)
    for component in components:
        members = set(component)
        internal = _scc_internal_successors(dfa, live, members)
        nontrivial = len(component) > 1 or any(
            target == component[0] for _, target in internal[component[0]]
        )
        if not nontrivial:
            continue
        for state in component:
            if len(internal[state]) > 1:
                return False
    return True


def _cycle_word(
    dfa: DFA, live: frozenset[int], component: set[int], start: int
) -> str:
    """The label of the unique cycle through ``start`` in a simple-cycle SCC."""
    internal = _scc_internal_successors(dfa, live, component)
    word = []
    state = start
    while True:
        edges = internal[state]
        assert len(edges) == 1, "not a simple cycle — call is_bounded first"
        letter, state = edges[0]
        word.append(letter)
        if state == start:
            return "".join(word)


def bounded_decomposition(dfa: DFA, hard_cap: int = 10_000) -> BoundedExpr:
    """Express a *bounded* DFA language over Ginsburg's generators.

    Recursion over the condensation DAG: from a state q inside a
    simple-cycle SCC, every accepted word is ``c_q^i ·(partial cycle path)``
    followed by either acceptance or an exit edge into a later SCC.  The
    result denotes exactly ``L(dfa)``; raises ``ValueError`` when the
    language is not bounded or the expression exceeds ``hard_cap`` nodes.
    """
    if not is_bounded_regular(dfa):
        raise ValueError("language is not bounded")
    live, components = _live_components(dfa)
    if dfa.start not in live:
        return BUnion(())  # empty language
    component_of: dict[int, set[int]] = {}
    for component in components:
        members = set(component)
        for state in component:
            component_of[state] = members

    node_budget = [hard_cap]
    memo: dict[int, BoundedExpr] = {}

    def charge() -> None:
        node_budget[0] -= 1
        if node_budget[0] < 0:
            raise ValueError("bounded decomposition exceeds the node cap")

    def language_from(q: int) -> BoundedExpr:
        if q in memo:
            return memo[q]
        charge()
        members = component_of[q]
        internal = _scc_internal_successors(dfa, live, members)
        is_cycle = len(members) > 1 or any(
            target == q for _, target in internal[q]
        )
        branches: list[BoundedExpr] = []
        if is_cycle:
            cycle = _cycle_word(dfa, live, members, q)
            prefix_word = ""
            state = q
            visited = 0
            while visited < len(cycle):
                if state in dfa.accepting:
                    branches.append(BWord(prefix_word))
                for (source, letter), target in dfa.transitions.items():
                    if (
                        source == state
                        and target in live
                        and target not in members
                    ):
                        tail = language_from(target)
                        branches.append(
                            BConcat((BWord(prefix_word + letter), tail))
                        )
                step_letter, state = internal[state][0]
                prefix_word += step_letter
                visited += 1
            inner = (
                BUnion(tuple(branches)) if len(branches) != 1 else branches[0]
            )
            result: BoundedExpr = BConcat((BStar(cycle), inner))
        else:
            if q in dfa.accepting:
                branches.append(BWord(""))
            for (source, letter), target in dfa.transitions.items():
                if source == q and target in live:
                    branches.append(
                        BConcat((BWord(letter), language_from(target)))
                    )
            result = (
                BUnion(tuple(branches)) if len(branches) != 1 else branches[0]
            )
        memo[q] = result
        return result

    return language_from(dfa.start)


def bounding_sequence(expr: BoundedExpr) -> list[str]:
    """A sequence ``w₁, …, wₙ`` with ``L(expr) ⊆ w₁*·⋯·wₙ*``.

    Witnesses boundedness explicitly: concatenate the sequences of the
    parts; a union is covered by the concatenation of its branches'
    sequences (ε belongs to every ``w*``); a letter/word ``w`` is covered
    by ``w*``.
    """
    if isinstance(expr, BWord):
        return [expr.word] if expr.word else []
    if isinstance(expr, BStar):
        return [expr.word]
    if isinstance(expr, BConcat):
        result: list[str] = []
        for part in expr.parts:
            result.extend(bounding_sequence(part))
        return result
    if isinstance(expr, BUnion):
        result = []
        for part in expr.parts:
            result.extend(bounding_sequence(part))
        return result
    raise TypeError(f"unknown expression node: {expr!r}")


def is_bounded_by(word: str, sequence: Sequence[str]) -> bool:
    """Check ``word ∈ w₁*·w₂*·⋯·wₙ*`` by greedy-free DP over positions."""
    positions = {0}
    for w in sequence:
        if not w:
            continue
        extended = set(positions)
        frontier = set(positions)
        while frontier:
            new = set()
            for pos in frontier:
                if word.startswith(w, pos):
                    target = pos + len(w)
                    if target not in extended:
                        extended.add(target)
                        new.add(target)
            frontier = new
        positions = extended
    return len(word) in positions
