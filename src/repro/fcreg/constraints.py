"""FC[REG]: FC extended with regular constraints (Section 5).

A *regular constraint* is an atomic formula ``(x ∈̇ γ)``; the semantics:
``(𝔄_w, σ) ⊨ (x ∈̇ γ)`` iff ``σ(x) ⊑ w`` and ``σ(x) ∈ L(γ)``.  The atom
plugs into the FC model checker through the extension hooks
(``_evaluate``, ``_candidates``, ``_quantifier_rank``), so every FC
facility (``models``, ``satisfying_assignments``, ``FCLanguage``) works
unchanged on FC[REG] formulas.

The paper's cautionary note applies and is preserved here: with regular
constraints there are infinitely many rank-1 formulas, so Theorem 3.4
(the EF theorem) does **not** extend to FC[REG]; the inexpressibility
route goes through Lemma 5.4 instead (``repro.fcreg.rewriting``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.fc.structures import BOTTOM, WordStructure
from repro.fc.syntax import Const, Formula, Term, Var
from repro.fcreg.automata import DFA, compile_regex
from repro.fcreg.regex import Regex, parse_regex

__all__ = ["RegularConstraint", "in_regex", "regular_constraints_of"]


@dataclass(frozen=True, repr=False)
class RegularConstraint(Formula):
    """The atom ``(x ∈̇ γ)`` for a variable/constant x and regex γ.

    Compiled to a DFA once at construction; evaluation is a DFA run over
    the candidate factor.
    """

    x: Term
    regex: Regex
    _dfa: DFA = field(init=False, compare=False, hash=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_dfa", compile_regex(self.regex))

    def __repr__(self) -> str:
        return f"({self.x!r} ∈̇ {self.regex!r})"

    # -- FC extension hooks --------------------------------------------------

    @property
    def _assignment_pure(self) -> bool:
        """With a variable subject, truth is a function of the assigned
        value alone, so batched sweeps (repro.fc.sweep) may memoise the
        DFA run per value; a Const subject reads the structure (⊥ when
        the letter is absent from the word) and must stay per-word."""
        return isinstance(self.x, Var)

    def _quantifier_rank(self) -> int:
        return 0

    def _atom_terms(self) -> Iterator[Term]:
        yield self.x

    def _substitute(self, mapping: dict) -> "RegularConstraint":
        if isinstance(self.x, Var) and self.x in mapping:
            return RegularConstraint(mapping[self.x], self.regex)
        return self

    def _evaluate(self, structure: WordStructure, assignment: dict) -> bool:
        if isinstance(self.x, Const):
            # repro-lint: allow[effects.assignment-purity] _assignment_pure is False exactly when x is a Const, so sweeps never memoise this branch
            value = structure.constant(self.x.symbol)
        else:
            value = assignment[self.x]
        if value is BOTTOM:
            return False
        return self._dfa.accepts(value)

    def _candidates(
        self,
        structure: WordStructure,
        assignment: dict,
        var: Var,
        bound: frozenset,
    ):
        """Optimizer hook: the constraint filters the factor universe."""
        if var != self.x or var in bound:
            return None
        return frozenset(
            factor
            for factor in structure.universe_factors
            if self._dfa.accepts(factor)
        )


def in_regex(x: "Term | str", pattern: "Regex | str") -> RegularConstraint:
    """Convenience constructor: ``in_regex(x, "(ba)*")``."""
    if isinstance(x, str):
        if len(x) > 1:
            raise ValueError("constraint subject must be a variable or letter")
        x = Const(x)
    regex = parse_regex(pattern) if isinstance(pattern, str) else pattern
    return RegularConstraint(x, regex)


def regular_constraints_of(formula: Formula) -> list[RegularConstraint]:
    """Collect every regular-constraint atom in a formula tree."""
    from repro.fc.syntax import And, Exists, Forall, Implies, Not, Or

    found: list[RegularConstraint] = []

    def walk(node: Formula) -> None:
        if isinstance(node, RegularConstraint):
            found.append(node)
        elif isinstance(node, Not):
            walk(node.inner)
        elif isinstance(node, (And, Or, Implies)):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, (Exists, Forall)):
            walk(node.inner)
        else:
            pass  # plain FC atoms (Concat, ConcatChain) hold no constraints

    walk(formula)
    return found
