"""FC[REG]: FC with regular constraints, plus the bounded-language bridge.

Regex engine (AST → Thompson NFA → subset DFA), the ``(x ∈̇ γ)`` constraint
atom, boundedness decision for regular languages, and the Lemma 5.4
rewriting of bounded constraints into pure FC.
"""

from repro.fcreg.automata import (
    DFA,
    NFA,
    compile_regex,
    regex_language_slice,
    regex_matches,
)
from repro.fcreg.bounded import (
    BConcat,
    BStar,
    BUnion,
    BWord,
    BoundedExpr,
    bounded_decomposition,
    bounding_sequence,
    is_bounded_by,
    is_bounded_regular,
)
from repro.fcreg.constraints import (
    RegularConstraint,
    in_regex,
    regular_constraints_of,
)
from repro.fcreg.regex import (
    Concat as RegexConcat,
    Empty,
    Epsilon,
    Letter,
    Regex,
    Star,
    Union as RegexUnion,
    from_words,
    literal,
    parse_regex,
    word_star,
)
from repro.fcreg.rewriting import (
    bounded_expr_to_fc,
    constraint_to_fc,
    eliminate_bounded_constraints,
)

__all__ = [
    "DFA",
    "NFA",
    "compile_regex",
    "regex_language_slice",
    "regex_matches",
    "BConcat",
    "BStar",
    "BUnion",
    "BWord",
    "BoundedExpr",
    "bounded_decomposition",
    "bounding_sequence",
    "is_bounded_by",
    "is_bounded_regular",
    "RegularConstraint",
    "in_regex",
    "regular_constraints_of",
    "RegexConcat",
    "Empty",
    "Epsilon",
    "Letter",
    "Regex",
    "Star",
    "RegexUnion",
    "from_words",
    "literal",
    "parse_regex",
    "word_star",
    "bounded_expr_to_fc",
    "constraint_to_fc",
    "eliminate_bounded_constraints",
]
