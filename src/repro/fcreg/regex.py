"""Regular expressions: AST and parser (built from scratch).

Grammar (POSIX-ish, restricted to what the paper needs):

    union   := concat ('|' concat)*
    concat  := repeat*
    repeat  := atom ('*' | '+' | '?')*
    atom    := letter | 'ε' | '()' | '(' union ')'

Letters are any characters except the metacharacters ``|*+?()``.  The AST
is shared by the automata compiler (``repro.fcreg.automata``), the
bounded-language analyser (``repro.fcreg.bounded``) and the FC rewriting
of Lemma 5.4 (``repro.fcreg.rewriting``).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Regex",
    "Empty",
    "Epsilon",
    "Letter",
    "Union",
    "Concat",
    "Star",
    "parse_regex",
    "literal",
    "word_star",
    "from_words",
]

_METACHARACTERS = set("|*+?()")


class Regex:
    """Base class of regex AST nodes."""

    def __or__(self, other: "Regex") -> "Regex":
        return Union(self, other)

    def __add__(self, other: "Regex") -> "Regex":
        return Concat(self, other)

    def star(self) -> "Regex":
        return Star(self)


@dataclass(frozen=True, repr=False)
class Empty(Regex):
    """The empty *language* ∅ (no strings at all)."""

    def __repr__(self) -> str:
        return "∅"


@dataclass(frozen=True, repr=False)
class Epsilon(Regex):
    """The language {ε}."""

    def __repr__(self) -> str:
        return "ε"


@dataclass(frozen=True, repr=False)
class Letter(Regex):
    """A single terminal letter."""

    symbol: str

    def __post_init__(self) -> None:
        if len(self.symbol) != 1:
            raise ValueError(f"Letter must be one symbol, got {self.symbol!r}")

    def __repr__(self) -> str:
        return self.symbol


@dataclass(frozen=True, repr=False)
class Union(Regex):
    """Alternation ``left | right``."""

    left: Regex
    right: Regex

    def __repr__(self) -> str:
        return f"({self.left!r}|{self.right!r})"


@dataclass(frozen=True, repr=False)
class Concat(Regex):
    """Concatenation ``left · right``."""

    left: Regex
    right: Regex

    def __repr__(self) -> str:
        return f"{self.left!r}{self.right!r}"


@dataclass(frozen=True, repr=False)
class Star(Regex):
    """Kleene star ``inner*``."""

    inner: Regex

    def __repr__(self) -> str:
        inner = repr(self.inner)
        if len(inner) > 1 and not (inner.startswith("(") and inner.endswith(")")):
            inner = f"({inner})"
        return f"{inner}*"


class _Parser:
    """Recursive-descent parser over the grammar above."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def peek(self) -> str | None:
        return self.text[self.pos] if self.pos < len(self.text) else None

    def take(self) -> str:
        ch = self.text[self.pos]
        self.pos += 1
        return ch

    def parse(self) -> Regex:
        node = self.union()
        if self.pos != len(self.text):
            raise ValueError(
                f"trailing input at position {self.pos}: "
                f"{self.text[self.pos:]!r}"
            )
        return node

    def union(self) -> Regex:
        node = self.concat()
        while self.peek() == "|":
            self.take()
            node = Union(node, self.concat())
        return node

    def concat(self) -> Regex:
        parts: list[Regex] = []
        while self.peek() is not None and self.peek() not in "|)":
            parts.append(self.repeat())
        if not parts:
            return Epsilon()
        node = parts[0]
        for part in parts[1:]:
            node = Concat(node, part)
        return node

    def repeat(self) -> Regex:
        node = self.atom()
        while self.peek() in ("*", "+", "?"):
            op = self.take()
            if op == "*":
                node = Star(node)
            elif op == "+":
                node = Concat(node, Star(node))
            else:
                node = Union(node, Epsilon())
        return node

    def atom(self) -> Regex:
        ch = self.peek()
        if ch is None:
            raise ValueError("unexpected end of pattern")
        if ch == "(":
            self.take()
            if self.peek() == ")":
                self.take()
                return Epsilon()
            node = self.union()
            if self.peek() != ")":
                raise ValueError(f"unbalanced '(' at position {self.pos}")
            self.take()
            return node
        if ch in _METACHARACTERS:
            raise ValueError(f"unexpected {ch!r} at position {self.pos}")
        self.take()
        if ch == "ε":
            return Epsilon()
        return Letter(ch)


def parse_regex(pattern: str) -> Regex:
    """Parse ``pattern`` into a :class:`Regex` AST.

    ``""`` parses to ε.  Raises ``ValueError`` on malformed patterns.
    """
    if pattern == "":
        return Epsilon()
    return _Parser(pattern).parse()


def literal(word: str) -> Regex:
    """The regex matching exactly ``word``."""
    if word == "":
        return Epsilon()
    node: Regex = Letter(word[0])
    for letter in word[1:]:
        node = Concat(node, Letter(letter))
    return node


def word_star(word: str) -> Regex:
    """The regex for ``word*``."""
    return Star(literal(word))


def from_words(words: list[str]) -> Regex:
    """The regex for a finite language (union of literals)."""
    if not words:
        return Empty()
    node = literal(words[0])
    for word in words[1:]:
        node = Union(node, literal(word))
    return node
