"""Thread/fork-reachability race detection over the effect graph.

PR 6 made the reproduction a long-lived service: the serve daemon is a
``ThreadingTCPServer`` whose handler threads all run the same query
stack concurrently, and whose docstring used to *assert* that the stack
is safe under that model.  This module turns the assertion into a
machine-checked invariant, the same way ``effects.assignment-purity``
turned the PR-4 ``_WordView.constant`` bug class into a lint error.

Layered on the project call graph (:mod:`repro.analysis.callgraph`) and
the shared effect analysis (:mod:`repro.analysis.effects`), the
:class:`ConcurrencyAnalysis` computes:

* **thread roots** — entry points that may execute on ≥ 2 threads at
  once (``LintConfig.thread_roots``; globs expand over function
  qualnames, which is how the ``getattr``-dispatched ``op_*`` handlers
  join the root set), and **fork roots** — the registered engine task
  functions that run inside forked worker pools (the same root set as
  ``effects.worker-isolation``);
* **thread-shared locations** — module-level bindings (shared by
  definition: one interpreter, one module object) and fields of
  *shared classes*: the configured server/service singletons, closed
  over field-annotation types, subclasses, and classes returned by
  lru_cached thread-reachable factories (an lru cache is process-global
  state, so the objects it hands out are shared across handler threads);
* **lock regions** — ``with <lock>:`` scopes over lock objects
  (module-level / class-level / ``self`` fields built by
  ``threading.Lock`` and friends, plus *accessor functions* that return
  one — the pid-guarded ``_lock()`` pattern in the stats modules), with
  a must-hold interprocedural pass so a helper that is only ever called
  under a lock counts as guarded;
* **GuardedBy inference** — per shared location, the set of locks held
  at each write; a location guarded anywhere must be guarded
  everywhere, and nested/held-across-call acquisitions feed a
  lock-order graph checked for cycles.

Four rules consume this:

* ``concurrency.shared-state-race`` — unsynchronized write to
  thread-shared state in a thread-reachable function;
* ``concurrency.guarded-by`` — inconsistent lock discipline on one
  location, or a lock-order cycle;
* ``concurrency.fork-safety`` — locks / sockets / sqlite connections
  used in fork-reachable code without a per-pid reconnect guard
  (the ``SqliteBackend._connection`` pattern: compare ``os.getpid()``
  and rebuild the resource after a fork);
* ``concurrency.atomic-counters`` — read-modify-write on a counter
  module's globals outside a lock region.

Known blind spots, so reviewers know what the green check does *not*
prove: operator dunders (``table.cat[i]`` never surfaces
``LazyCat.__getitem__`` as a call edge), mutation through parameters
whose arguments are shared objects, and bare ``.acquire()``/
``.release()`` pairs (only ``with`` regions count).  Genuinely benign
survivors — grow-only memo dicts whose entries are idempotent — carry
explicit ``# repro-lint: allow[concurrency.shared-state-race] reason``
pins next to the write, so every tolerated race is visible in-source.
"""

from __future__ import annotations

import ast
import fnmatch
from dataclasses import dataclass
from typing import Iterator

from repro.analysis.callgraph import _Scanner
from repro.analysis.effects import _MUTATING_METHODS, analysis_for
from repro.analysis.framework import Checker, Codebase, Finding, LintConfig
from repro.analysis.purity import _is_lru_cached

__all__ = [
    "AtomicCountersChecker",
    "ConcurrencyAnalysis",
    "ForkSafetyChecker",
    "GuardedByChecker",
    "SharedStateRaceChecker",
    "concurrency_for",
]

#: Constructors whose results are mutual-exclusion primitives.
_LOCK_CONSTRUCTORS = frozenset({
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
})

#: Constructors whose results must not cross a ``fork`` boundary: an
#: inherited lock may be held forever (the holding thread does not
#: exist in the child), and sockets / sqlite handles are attached to
#: the parent's file descriptors.
_RESOURCE_CONSTRUCTORS = _LOCK_CONSTRUCTORS | frozenset({
    "sqlite3.connect",
    "socket.socket",
    "socket.create_connection",
    "socket.socketpair",
})

#: Dict/container method names that read-modify-write their receiver.
_RMW_METHODS = frozenset({"setdefault", "update", "pop", "popitem"})


def _unparse_short(node: ast.AST, limit: int = 48) -> str:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover — unparse is total on 3.10+
        text = "<expr>"
    return text if len(text) <= limit else text[: limit - 1] + "…"


@dataclass(frozen=True)
class Mutation:
    """One write to a non-local location inside one function."""

    line: int
    location: str  # "global:<dotted>" or "field:<class>.<attr>"
    rmw: bool  # read-modify-write (x += 1, d[k] = d[k] + 1, .setdefault)
    detail: str


@dataclass(frozen=True)
class Acquisition:
    """One ``with <lock>:`` region."""

    line: int
    end_line: int
    lock: str  # location id of the lock object


@dataclass(frozen=True)
class ResourceUse:
    """A fork-reachable touch of a fork-unsafe resource binding."""

    line: int
    binding: str  # location id of the resource binding
    detail: str


@dataclass(frozen=True)
class FunctionFacts:
    """Concurrency-relevant facts of one function body."""

    qualname: str
    mutations: tuple[Mutation, ...]
    acquisitions: tuple[Acquisition, ...]
    resource_uses: tuple[ResourceUse, ...]


class ConcurrencyAnalysis:
    """Reachability, sharing, and locking facts for a whole codebase."""

    def __init__(self, codebase: Codebase, config: LintConfig) -> None:
        self.codebase = codebase
        self.config = config
        self.analysis = analysis_for(codebase, config)
        self.graph = self.analysis.graph
        #: location id → line of the defining binding
        self.module_locks: dict[str, int] = {}
        self.field_locks: set[str] = set()
        #: location id → constructor dotted name
        self.resources: dict[str, str] = {}
        #: resource/lock bindings with a getpid-compare-and-rebuild guard
        self.pid_guarded: set[str] = set()
        #: function qualname → lock id it returns (accessor pattern)
        self.lock_accessors: dict[str, str] = {}
        #: class qualname → attrs assigned via ``self`` in its methods
        self._class_fields: dict[str, set[str]] = {}
        self._scanners: dict[str, _Scanner] = {}
        self.facts: dict[str, FunctionFacts] = {}

        self._index_class_fields()
        self._index_module_bindings()
        self._index_field_bindings()
        self._index_accessors()
        self._build_facts()

        self.thread_parents = self._reach(self._thread_roots())
        self.fork_parents = self._reach(self._fork_roots())
        self.thread_reachable = set(self.thread_parents)
        self.fork_reachable = set(self.fork_parents)
        self.shared_classes = self._shared_classes()
        self.held_entry = self._must_hold()
        self._collect_resource_uses()

    # -- indexes -----------------------------------------------------------

    def _ctor_of(self, module, value: ast.expr) -> str | None:
        """Dotted constructor name of a Call value, if resolvable."""
        if not isinstance(value, ast.Call):
            return None
        if not isinstance(value.func, (ast.Name, ast.Attribute)):
            return None
        return self.codebase.resolve_name(module, value.func)

    def _index_class_fields(self) -> None:
        for qualname, info in sorted(self.codebase.classes().items()):
            attrs = {name for name, _annotation, _line in info.fields}
            self._class_fields[qualname] = attrs
        for qualname in sorted(self.graph.functions):
            info = self.graph.functions[qualname]
            if info.cls is None or info.self_name is None:
                continue
            attrs = self._class_fields.setdefault(info.cls, set())
            for node in ast.walk(info.node):
                target = None
                if isinstance(node, (ast.Assign,)):
                    for t in node.targets:
                        if (
                            isinstance(t, ast.Attribute)
                            and isinstance(t.value, ast.Name)
                            and t.value.id == info.self_name
                        ):
                            attrs.add(t.attr)
                elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                    target = node.target
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == info.self_name
                    ):
                        attrs.add(target.attr)

    def owner_class(self, cls: str | None, attr: str) -> str:
        """The base-most class in ``cls``'s MRO declaring ``attr``.

        Canonicalising field locations onto the declaring class merges
        sites across subclasses (a subclass method writing a base-class
        field talks about the same location as the base's own writes).
        """
        if cls is None:
            return "<unknown>"
        classes = self.codebase.classes()
        order: list[str] = []
        queue, seen = [cls], set()
        while queue:
            current = queue.pop(0)
            if current in seen or current not in classes:
                continue
            seen.add(current)
            order.append(current)
            queue.extend(classes[current].bases)
        owner = cls
        for candidate in order:  # BFS order: cls first, bases after
            if attr in self._class_fields.get(candidate, set()):
                owner = candidate
        return owner

    def _index_module_bindings(self) -> None:
        for module in self.codebase.iter_modules():
            for statement in module.tree.body:
                targets: list[ast.expr] = []
                value: ast.expr | None = None
                if isinstance(statement, ast.Assign):
                    targets, value = statement.targets, statement.value
                elif isinstance(statement, ast.AnnAssign):
                    targets, value = [statement.target], statement.value
                if value is None:
                    continue
                ctor = self._ctor_of(module, value)
                if ctor is None:
                    continue
                for target in targets:
                    if not isinstance(target, ast.Name):
                        continue
                    dotted = f"{module.name}.{target.id}"
                    if ctor in _LOCK_CONSTRUCTORS:
                        self.module_locks[f"global:{dotted}"] = (
                            statement.lineno
                        )
                    if ctor in _RESOURCE_CONSTRUCTORS:
                        self.resources[f"global:{dotted}"] = ctor

    def _index_field_bindings(self) -> None:
        """Locks/resources bound to ``self`` fields or class attributes."""
        for cls, info in sorted(self.codebase.classes().items()):
            module = self.codebase.modules.get(info.module)
            if module is None:
                continue
            class_node = next(
                (
                    node
                    for node in ast.walk(module.tree)
                    if isinstance(node, ast.ClassDef)
                    and node.lineno == info.line
                    and node.name == info.name
                ),
                None,
            )
            if class_node is None:
                continue
            for statement in class_node.body:
                if isinstance(statement, ast.Assign):
                    ctor = self._ctor_of(module, statement.value)
                    if ctor is None:
                        continue
                    for target in statement.targets:
                        if isinstance(target, ast.Name):
                            self._record_field_binding(cls, target.id, ctor)
        for qualname in sorted(self.graph.functions):
            info = self.graph.functions[qualname]
            if info.cls is None or info.self_name is None:
                continue
            module = self.codebase.modules[info.module]
            # Locals assigned from a resource constructor, so that
            # ``conn = sqlite3.connect(...); self._conn = conn`` counts.
            local_ctor: dict[str, str] = {}
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                    continue
                target = node.targets[0]
                ctor = self._ctor_of(module, node.value)
                if isinstance(target, ast.Name):
                    if ctor is not None:
                        local_ctor[target.id] = ctor
                    continue
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == info.self_name
                ):
                    continue
                if ctor is None and isinstance(node.value, ast.Name):
                    ctor = local_ctor.get(node.value.id)
                if ctor is not None:
                    self._record_field_binding(info.cls, target.attr, ctor)

    def _record_field_binding(self, cls: str, attr: str, ctor: str) -> None:
        location = f"field:{self.owner_class(cls, attr)}.{attr}"
        if ctor in _LOCK_CONSTRUCTORS:
            self.field_locks.add(location)
        if ctor in _RESOURCE_CONSTRUCTORS:
            self.resources[location] = ctor

    def _index_accessors(self) -> None:
        """Functions that return a known lock (``_lock()`` pattern)."""
        for qualname in sorted(self.graph.functions):
            info = self.graph.functions[qualname]
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Return) or node.value is None:
                    continue
                lock = None
                value = node.value
                if isinstance(value, ast.Name):
                    dotted = f"global:{info.module}.{value.id}"
                    if dotted in self.module_locks:
                        lock = dotted
                elif (
                    isinstance(value, ast.Attribute)
                    and isinstance(value.value, ast.Name)
                    and value.value.id == info.self_name
                ):
                    candidate = (
                        f"field:{self.owner_class(info.cls, value.attr)}"
                        f".{value.attr}"
                    )
                    if candidate in self.field_locks:
                        lock = candidate
                if lock is not None:
                    self.lock_accessors[qualname] = lock

    def _pid_guard_pass(self) -> None:
        """Bindings re-armed by an ``os.getpid()``-reading function.

        A function that both consults ``os.getpid()`` and *assigns* the
        binding implements the per-pid reconnect pattern
        (``SqliteBackend._connection``): stale post-fork state is
        detected and rebuilt before use, so the binding is fork-safe.
        """
        for qualname in sorted(self.graph.functions):
            scan = self.graph.scans[qualname]
            reads_pid = any(
                site.external == "os.getpid" for site in scan.calls
            )
            if not reads_pid:
                continue
            for mutation in self.facts[qualname].mutations:
                if mutation.location in self.resources:
                    self.pid_guarded.add(mutation.location)

    # -- per-function facts ------------------------------------------------

    def _build_facts(self) -> None:
        for qualname in sorted(self.graph.functions):
            self.facts[qualname] = self._facts_for(qualname)
        self._pid_guard_pass()

    def _scanner_for(self, qualname: str) -> _Scanner:
        scanner = self._scanners.get(qualname)
        if scanner is None:
            scanner = _Scanner(self.graph, self.graph.functions[qualname])
            scanner.scan()
            self._scanners[qualname] = scanner
        return scanner

    def _facts_for(self, qualname: str) -> FunctionFacts:
        info = self.graph.functions[qualname]
        scanner = self._scanner_for(qualname)
        # Aliases that carry a location: ``lock = self._lock`` or
        # ``table = _GLOBAL`` — single-target name assignments, applied
        # in line order so later aliases can build on earlier ones.
        alias: dict[str, str] = {}
        assigns = sorted(
            (
                node
                for node in scanner.nodes
                if isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ),
            key=lambda node: (node.lineno, node.col_offset),
        )
        for node in assigns:
            location = self._expr_location(node.value, info, scanner, alias)
            if location is not None:
                alias[node.targets[0].id] = location

        mutations: list[Mutation] = []
        for node in scanner.nodes:
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                if isinstance(node, ast.AnnAssign) and node.value is None:
                    continue
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                rmw = isinstance(node, ast.AugAssign)
                value = node.value
                for target in targets:
                    mutations.extend(
                        self._target_mutations(
                            target, value, rmw, info, scanner, alias
                        )
                    )
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    mutations.extend(
                        self._target_mutations(
                            target, None, False, info, scanner, alias
                        )
                    )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATING_METHODS
            ):
                location = self._expr_location(
                    node.func.value, info, scanner, alias
                )
                if location is not None:
                    mutations.append(Mutation(
                        node.lineno,
                        location,
                        node.func.attr in _RMW_METHODS,
                        f"{_unparse_short(node.func)}(…)",
                    ))

        acquisitions: list[Acquisition] = []
        for node in scanner.nodes:
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            for item in node.items:
                lock = self._lock_of(item.context_expr, info, scanner, alias)
                if lock is not None:
                    acquisitions.append(Acquisition(
                        node.lineno, node.end_lineno or node.lineno, lock
                    ))

        key = lambda m: (m.line, m.location)  # noqa: E731
        return FunctionFacts(
            qualname=qualname,
            mutations=tuple(sorted(mutations, key=key)),
            acquisitions=tuple(
                sorted(acquisitions, key=lambda a: (a.line, a.lock))
            ),
            resource_uses=(),
        )

    def _target_mutations(
        self, target, value, rmw, info, scanner, alias
    ) -> list[Mutation]:
        if isinstance(target, (ast.Tuple, ast.List)):
            out: list[Mutation] = []
            for element in target.elts:
                out.extend(self._target_mutations(
                    element, value, rmw, info, scanner, alias
                ))
            return out
        if isinstance(target, ast.Starred):
            return self._target_mutations(
                target.value, value, rmw, info, scanner, alias
            )
        location: str | None = None
        if isinstance(target, ast.Name):
            if target.id in scanner.declared_globals:
                location = f"global:{info.module}.{target.id}"
                if not rmw and value is not None:
                    # ``global X; X = X + 1`` is a check-then-update too.
                    rmw = any(
                        isinstance(node, ast.Name) and node.id == target.id
                        for node in ast.walk(value)
                    )
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            location = self._expr_location(target, info, scanner, alias)
            if (
                not rmw
                and location is not None
                and isinstance(target, ast.Subscript)
                and value is not None
            ):
                rmw = self._value_reads_container(target.value, value)
        if location is None:
            return []
        return [Mutation(
            target.lineno, location, rmw, f"{_unparse_short(target)} = …"
        )]

    @staticmethod
    def _value_reads_container(container: ast.expr, value: ast.expr) -> bool:
        """Does the assigned value read the mutated container back?

        Catches ``d[k] = d[k] + 1`` and ``d[k] = d.get(k, 0) + 1`` — the
        check-then-update shapes ``concurrency.atomic-counters`` exists
        for.
        """
        container_src = ast.unparse(container)
        for node in ast.walk(value):
            if isinstance(node, ast.Subscript):
                if ast.unparse(node.value) == container_src:
                    return True
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("get", "pop", "setdefault")
                and ast.unparse(node.func.value) == container_src
            ):
                return True
        return False

    def _expr_location(
        self, expr: ast.expr, info, scanner, alias: dict[str, str]
    ) -> str | None:
        """Location id an expression denotes, or ``None`` (local/fresh)."""
        if isinstance(expr, ast.Subscript):
            return self._expr_location(expr.value, info, scanner, alias)
        if isinstance(expr, ast.Name):
            if expr.id in alias:
                return alias[expr.id]
            root, _ = scanner._name_root_type(expr.id)
            if root.startswith("global:"):
                return root
            return None
        if isinstance(expr, ast.Attribute):
            base = expr.value
            if (
                isinstance(base, ast.Name)
                and base.id == info.self_name
                and info.cls is not None
            ):
                owner = self.owner_class(info.cls, expr.attr)
                return f"field:{owner}.{expr.attr}"
            root, _ = scanner._resolve_chain(expr)
            if root.startswith("global:"):
                return root
            return None
        return None

    def _lock_of(
        self, expr: ast.expr, info, scanner, alias: dict[str, str]
    ) -> str | None:
        """The lock id a ``with`` context expression acquires, if any."""
        if isinstance(expr, (ast.Name, ast.Attribute)):
            location = self._expr_location(expr, info, scanner, alias)
            if location is None:
                return None
            if location in self.module_locks or location in self.field_locks:
                return location
            return None
        if isinstance(expr, ast.Call):
            func = expr.func
            target: str | None = None
            if isinstance(func, ast.Name):
                root, _ = scanner._name_root_type(func.id)
                if root.startswith("func:"):
                    target = root[len("func:"):]
            elif (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == info.self_name
            ):
                target = self.graph.resolve_method(info.cls, func.attr)
            if target is not None:
                return self.lock_accessors.get(target)
        return None

    # -- reachability ------------------------------------------------------

    def _thread_roots(self) -> list[str]:
        patterns = getattr(self.config, "thread_roots", ())
        names = sorted(self.graph.functions)
        roots: list[str] = []
        for pattern in patterns:
            roots.extend(
                name
                for name in names
                if fnmatch.fnmatchcase(name, pattern)
            )
        return sorted(set(roots))

    def _fork_roots(self) -> list[str]:
        from repro.analysis.effectrules import WorkerIsolationChecker

        return [
            root
            for root in WorkerIsolationChecker._task_roots(self.config)
            if root in self.graph.functions
        ]

    def _reach(self, roots: list[str]) -> dict[str, str | None]:
        parents: dict[str, str | None] = {}
        queue = [root for root in roots if root in self.graph.functions]
        for root in queue:
            parents.setdefault(root, None)
        while queue:
            current = queue.pop(0)
            for site in self.graph.scans[current].calls:
                for callee, _ in self.analysis._callee_summary(site):
                    if callee not in parents:
                        parents[callee] = current
                        queue.append(callee)
        return parents

    def chain(self, qualname: str, parents: dict[str, str | None]) -> str:
        steps: list[str] = []
        step: str | None = qualname
        while step is not None:
            steps.append(self.analysis._short(step))
            step = parents.get(step)
        steps.reverse()
        return " → ".join(steps)

    # -- sharing -----------------------------------------------------------

    def _shared_classes(self) -> set[str]:
        classes = self.codebase.classes()
        shared = {
            cls
            for cls in getattr(self.config, "thread_shared_classes", ())
            if cls in classes
        }
        for qualname in sorted(self.thread_reachable):
            info = self.graph.functions[qualname]
            if not _is_lru_cached(info.node):
                continue
            module = self.codebase.modules[info.module]
            returned = self.graph.resolve_annotation(
                module, info.node.returns
            )
            if returned is not None:
                shared.add(returned)
        # Close over field-annotation types and subclasses: anything a
        # shared object holds (or any subtype standing in for it) is
        # reachable from the same ≥ 2 threads.
        queue = sorted(shared)
        while queue:
            cls = queue.pop(0)
            grown: set[str] = set()
            for attr_type in self.graph.attr_types.get(cls, {}).values():
                grown.add(attr_type)
            grown |= self.codebase.subclasses(cls)
            for child in sorted(grown):
                if child not in shared and child in classes:
                    shared.add(child)
                    queue.append(child)
        return shared

    def is_thread_shared(self, location: str) -> bool:
        if location.startswith("global:"):
            return True
        if location.startswith("field:"):
            cls, _, _attr = location[len("field:"):].rpartition(".")
            return cls in self.shared_classes
        return False

    def describe(self, location: str) -> str:
        prefix = self.config.package + "."
        if location.startswith("global:"):
            dotted = location[len("global:"):]
            if dotted.startswith(prefix):
                dotted = dotted[len(prefix):]
            return f"module-level {dotted}"
        dotted = location[len("field:"):]
        if dotted.startswith(prefix):
            dotted = dotted[len(prefix):]
        return f"field {dotted}"

    # -- lock discipline ---------------------------------------------------

    def _must_hold(self) -> dict[str, frozenset[str]]:
        """Locks held on *every* path into each reachable function."""
        reachable = sorted(self.thread_reachable | self.fork_reachable)
        roots = set(self._thread_roots()) | {
            root for root in self._fork_roots()
        }
        held: dict[str, frozenset[str] | None] = {}
        for root in sorted(roots):
            if root in self.graph.functions:
                held[root] = frozenset()
        changed = True
        while changed:
            changed = False
            for caller in reachable:
                base = held.get(caller)
                if base is None:
                    continue
                facts = self.facts[caller]
                for site in self.graph.scans[caller].calls:
                    at_site = base | {
                        acq.lock
                        for acq in facts.acquisitions
                        if acq.line < site.line <= acq.end_line
                    }
                    for callee, _ in self.analysis._callee_summary(site):
                        if callee not in self.facts:
                            continue
                        previous = held.get(callee, None)
                        if callee in roots:
                            continue  # a root can be entered lock-free
                        merged = (
                            at_site
                            if previous is None
                            else frozenset(previous & at_site)
                        )
                        if merged != previous:
                            held[callee] = merged
                            changed = True
        return {
            qualname: locks
            for qualname, locks in held.items()
            if locks is not None
        }

    def guards_at(self, qualname: str, line: int) -> frozenset[str]:
        """Locks provably held at ``line`` inside ``qualname``."""
        facts = self.facts[qualname]
        held = set(self.held_entry.get(qualname, frozenset()))
        for acq in facts.acquisitions:
            if acq.line < line <= acq.end_line:
                held.add(acq.lock)
        return frozenset(held)

    def lock_order_edges(self) -> dict[tuple[str, str], tuple[str, int]]:
        """(held, acquired) lock pairs with one witness site each."""
        acquired_closure: dict[str, frozenset[str]] = {
            qualname: frozenset(
                acq.lock for acq in facts.acquisitions
            )
            for qualname, facts in self.facts.items()
        }
        changed = True
        while changed:
            changed = False
            for qualname in sorted(self.facts):
                grown = set(acquired_closure[qualname])
                for site in self.graph.scans[qualname].calls:
                    for callee, _ in self.analysis._callee_summary(site):
                        grown |= acquired_closure.get(callee, frozenset())
                if grown != acquired_closure[qualname]:
                    acquired_closure[qualname] = frozenset(grown)
                    changed = True
        edges: dict[tuple[str, str], tuple[str, int]] = {}

        def record(held: str, taken: str, qualname: str, line: int) -> None:
            if held != taken:
                edges.setdefault((held, taken), (qualname, line))

        for qualname in sorted(self.facts):
            facts = self.facts[qualname]
            entry = self.held_entry.get(qualname, frozenset())
            for acq in facts.acquisitions:
                for outer in sorted(entry):
                    record(outer, acq.lock, qualname, acq.line)
                for other in facts.acquisitions:
                    if acq.line < other.line <= acq.end_line:
                        record(acq.lock, other.lock, qualname, other.line)
            for site in self.graph.scans[qualname].calls:
                held_here = entry | {
                    acq.lock
                    for acq in facts.acquisitions
                    if acq.line < site.line <= acq.end_line
                }
                if not held_here:
                    continue
                for callee, _ in self.analysis._callee_summary(site):
                    for taken in sorted(
                        acquired_closure.get(callee, frozenset())
                    ):
                        for outer in sorted(held_here):
                            record(outer, taken, qualname, site.line)
        return edges

    def _collect_resource_uses(self) -> None:
        """Attach resource-use facts to fork-reachable functions."""
        if not self.resources:
            return
        for qualname in sorted(self.fork_reachable):
            info = self.graph.functions[qualname]
            facts = self.facts[qualname]
            scanner = self._scanner_for(qualname)
            alias: dict[str, str] = {}
            uses: dict[str, ResourceUse] = {}
            for node in scanner.nodes:
                if isinstance(node, (ast.Name, ast.Attribute)) and isinstance(
                    getattr(node, "ctx", None), ast.Load
                ):
                    location = self._expr_location(
                        node, info, scanner, alias
                    )
                    if location in self.resources and location not in uses:
                        uses[location] = ResourceUse(
                            node.lineno, location, _unparse_short(node)
                        )
            for acq in facts.acquisitions:
                if acq.lock in self.resources and acq.lock not in uses:
                    uses[acq.lock] = ResourceUse(
                        acq.line, acq.lock, "with-lock region"
                    )
            if uses:
                self.facts[qualname] = FunctionFacts(
                    qualname=facts.qualname,
                    mutations=facts.mutations,
                    acquisitions=facts.acquisitions,
                    resource_uses=tuple(
                        sorted(
                            uses.values(), key=lambda u: (u.line, u.binding)
                        )
                    ),
                )


def concurrency_for(
    codebase: Codebase, config: LintConfig
) -> ConcurrencyAnalysis:
    """One shared :class:`ConcurrencyAnalysis` per (codebase, config)."""
    cached = getattr(codebase, "_concurrency_analysis", None)
    if cached is not None and cached.config is config:
        return cached
    analysis = ConcurrencyAnalysis(codebase, config)
    codebase._concurrency_analysis = analysis
    return analysis


# ---------------------------------------------------------------------------
# Rules.


_CTOR_NAMES = ("__init__", "__post_init__")


def _module_of(codebase: Codebase, analysis: ConcurrencyAnalysis, qualname):
    return codebase.modules[analysis.graph.functions[qualname].module]


class SharedStateRaceChecker(Checker):
    name = "concurrency.shared-state-race"
    description = (
        "thread-reachable code may not write thread-shared state "
        "(module globals, shared-class fields) outside a lock region"
    )

    def check(
        self, codebase: Codebase, config: LintConfig
    ) -> Iterator[Finding]:
        conc = concurrency_for(codebase, config)
        counters = set(getattr(config, "counter_modules", ()))
        for qualname in sorted(conc.thread_reachable):
            info = conc.graph.functions[qualname]
            if info.name in _CTOR_NAMES:
                continue  # construction precedes sharing
            if info.module in counters:
                continue  # concurrency.atomic-counters owns these
            for mutation in conc.facts[qualname].mutations:
                if not conc.is_thread_shared(mutation.location):
                    continue
                if conc.guards_at(qualname, mutation.line):
                    continue
                yield self.finding(
                    codebase,
                    _module_of(codebase, conc, qualname),
                    mutation.line,
                    f"unsynchronized write to thread-shared "
                    f"{conc.describe(mutation.location)} in {info.name}() "
                    f"({mutation.detail}); reachable via "
                    f"{conc.chain(qualname, conc.thread_parents)}",
                    hint=(
                        "guard the write with a lock (with <lock>: …), "
                        "aggregate per-thread and merge under one, or — "
                        "for a genuinely benign grow-only site — pin with "
                        "# repro-lint: allow[concurrency.shared-state-race] "
                        "and a reason"
                    ),
                )


class GuardedByChecker(Checker):
    name = "concurrency.guarded-by"
    description = (
        "a location guarded by a lock anywhere must be guarded "
        "everywhere, and lock acquisition order must be acyclic"
    )

    def check(
        self, codebase: Codebase, config: LintConfig
    ) -> Iterator[Finding]:
        conc = concurrency_for(codebase, config)
        yield from self._inconsistent_guards(codebase, conc)
        yield from self._lock_cycles(codebase, conc)

    def _inconsistent_guards(
        self, codebase: Codebase, conc: ConcurrencyAnalysis
    ) -> Iterator[Finding]:
        #: location → [(qualname, mutation, guards)]
        events: dict[str, list[tuple[str, Mutation, frozenset[str]]]] = {}
        for qualname in sorted(conc.facts):
            info = conc.graph.functions[qualname]
            if info.name in _CTOR_NAMES:
                continue
            for mutation in conc.facts[qualname].mutations:
                guards = conc.guards_at(qualname, mutation.line)
                events.setdefault(mutation.location, []).append(
                    (qualname, mutation, guards)
                )
        for location in sorted(events):
            sites = events[location]
            guarded = [s for s in sites if s[2]]
            unguarded = [s for s in sites if not s[2]]
            if guarded and unguarded:
                witness_fn, witness_mutation, witness_guards = guarded[0]
                lock = sorted(witness_guards)[0]
                witness_info = conc.graph.functions[witness_fn]
                for qualname, mutation, _ in unguarded:
                    info = conc.graph.functions[qualname]
                    yield self.finding(
                        codebase,
                        _module_of(codebase, conc, qualname),
                        mutation.line,
                        f"{conc.describe(location)} is written under "
                        f"{conc.describe(lock)} in {witness_info.name}() "
                        f"but unguarded here in {info.name}() "
                        f"({mutation.detail})",
                        hint=(
                            "GuardedBy is all-or-nothing: take the same "
                            "lock here, or drop the partial locking and "
                            "pin the site with a reason"
                        ),
                    )
            elif guarded:
                common = frozenset.intersection(*(s[2] for s in guarded))
                if not common:
                    for qualname, mutation, guards in guarded:
                        info = conc.graph.functions[qualname]
                        yield self.finding(
                            codebase,
                            _module_of(codebase, conc, qualname),
                            mutation.line,
                            f"{conc.describe(location)} is written under "
                            f"different locks at its sites "
                            f"({', '.join(sorted(conc.describe(g) for g in guards))} "
                            f"here in {info.name}()); no common lock "
                            f"protects the location",
                            hint=(
                                "pick one lock for the location and take "
                                "it at every write"
                            ),
                        )

    def _lock_cycles(
        self, codebase: Codebase, conc: ConcurrencyAnalysis
    ) -> Iterator[Finding]:
        edges = conc.lock_order_edges()
        adjacency: dict[str, set[str]] = {}
        for held, taken in edges:
            adjacency.setdefault(held, set()).add(taken)
        seen_cycles: set[tuple[str, ...]] = set()
        for start in sorted(adjacency):
            stack = [(start, (start,))]
            while stack:
                node, path = stack.pop()
                for nxt in sorted(adjacency.get(node, ())):
                    if nxt == start:
                        rotation = min(
                            tuple(path[i:] + path[:i])
                            for i in range(len(path))
                        )
                        if rotation in seen_cycles:
                            continue
                        seen_cycles.add(rotation)
                        witness_fn, witness_line = edges[(node, start)]
                        cycle_text = " → ".join(
                            conc.describe(lock)
                            for lock in (*path, start)
                        )
                        yield self.finding(
                            codebase,
                            _module_of(codebase, conc, witness_fn),
                            witness_line,
                            f"lock-order cycle: {cycle_text}",
                            hint=(
                                "impose one global acquisition order for "
                                "these locks (sort call sites so every "
                                "path takes them in the same order)"
                            ),
                        )
                    elif nxt not in path:
                        stack.append((nxt, path + (nxt,)))


class ForkSafetyChecker(Checker):
    name = "concurrency.fork-safety"
    description = (
        "locks, sockets, and sqlite connections used in fork-reachable "
        "code need a per-pid reconnect guard"
    )

    def check(
        self, codebase: Codebase, config: LintConfig
    ) -> Iterator[Finding]:
        conc = concurrency_for(codebase, config)
        for qualname in sorted(conc.fork_reachable):
            info = conc.graph.functions[qualname]
            for use in conc.facts[qualname].resource_uses:
                if use.binding in conc.pid_guarded:
                    continue
                ctor = conc.resources[use.binding]
                yield self.finding(
                    codebase,
                    _module_of(codebase, conc, qualname),
                    use.line,
                    f"fork-unsafe resource {conc.describe(use.binding)} "
                    f"(built by {ctor}) is used in fork-reachable "
                    f"{info.name}() without a per-pid guard; reachable "
                    f"via {conc.chain(qualname, conc.fork_parents)}",
                    hint=(
                        "a forked worker inherits the parent's handle "
                        "(a held lock stays held forever; sockets and "
                        "sqlite connections share file descriptors); "
                        "compare os.getpid() and rebuild the resource "
                        "like SqliteBackend._connection, or pin with a "
                        "reason"
                    ),
                )


class AtomicCountersChecker(Checker):
    name = "concurrency.atomic-counters"
    description = (
        "read-modify-write on counter-module globals must happen "
        "inside a lock region"
    )

    def check(
        self, codebase: Codebase, config: LintConfig
    ) -> Iterator[Finding]:
        conc = concurrency_for(codebase, config)
        counters = set(getattr(config, "counter_modules", ()))
        if not counters:
            return
        for qualname in sorted(conc.facts):
            info = conc.graph.functions[qualname]
            if info.module not in counters:
                continue
            for mutation in conc.facts[qualname].mutations:
                if not mutation.rmw:
                    continue
                if not mutation.location.startswith("global:"):
                    continue
                if conc.guards_at(qualname, mutation.line):
                    continue
                yield self.finding(
                    codebase,
                    _module_of(codebase, conc, qualname),
                    mutation.line,
                    f"read-modify-write on counter global "
                    f"{conc.describe(mutation.location)} outside a lock "
                    f"region in {info.name}() ({mutation.detail})",
                    hint=(
                        "two daemon threads interleave the read and the "
                        "write and one increment is lost; wrap the update "
                        "in the module's pid-guarded lock (with _lock(): …)"
                    ),
                )
