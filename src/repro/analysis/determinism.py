"""Determinism: solver and engine modules must be bit-reproducible.

The exact EF-game solver is the paper's core tool; witness search,
synthesis certificates and the engine's content-addressed cache are only
trustworthy if the same inputs always produce byte-identical payloads.
Inside the configured packages (``ef`` and ``engine`` by default) this
rule flags the classic nondeterminism sources:

* wall-clock reads — ``time.time``/``time.time_ns``/``time.ctime``,
  ``datetime.now``/``utcnow``/``today`` (``perf_counter``/``monotonic``
  are allowed: they only feed timing *metadata*, never cache keys);
* unseeded randomness — bare ``random.<fn>()`` module calls and
  ``random.Random()`` without a seed (``random.Random(0)`` is fine);
* environment reads — ``os.environ`` / ``os.getenv`` (configuration
  belongs at the CLI boundary; suppress with a reason where a read is
  genuinely config-only);
* entropy and entropy-derived ids — ``os.urandom`` and
  ``uuid.uuid1``/``uuid.uuid4`` (uuid1 leaks clock+MAC, uuid4 is raw
  randomness; derive ids from content instead);
* ``id()``-dependent logic — CPython address ordering leaks into output;
* ``hash()`` used as an ordering key — ``sorted(..., key=hash)`` or a
  ``key=`` lambda calling ``hash()`` varies per process under hash
  randomisation (``PYTHONHASHSEED``);
* iteration over freshly built ``set(...)``/``frozenset(...)`` values or
  set literals — hash randomisation makes the order vary across
  processes unless the iteration is wrapped in ``sorted``/an
  order-insensitive reducer.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.framework import Checker, Codebase, Finding, LintConfig

__all__ = ["DeterminismChecker"]

_CLOCK_CALLS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "ctime"),
    ("time", "localtime"),
    ("time", "gmtime"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}

#: Entropy-backed id constructors; uuid1 additionally embeds the MAC.
_ENTROPY_CALLS = {
    ("os", "urandom"),
    ("uuid", "uuid1"),
    ("uuid", "uuid4"),
}

#: Callables whose ``key=`` argument establishes an output ordering.
_ORDERING_CALLS = {"sorted", "min", "max"}

_RANDOM_FUNCTIONS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "getrandbits", "randbytes", "betavariate",
}

# Wrapping one of these around a set makes iteration order irrelevant.
_ORDER_INSENSITIVE = {
    "sorted", "min", "max", "sum", "len", "any", "all", "set", "frozenset",
    "bool",
}


def _attr_call(node: ast.Call) -> tuple[str, str] | None:
    """(object name, attribute) for ``name.attr(...)`` calls."""
    if isinstance(node.func, ast.Attribute) and isinstance(
        node.func.value, ast.Name
    ):
        return node.func.value.id, node.func.attr
    return None


def _is_set_expression(node: ast.expr) -> bool:
    """Syntactically a freshly built set/frozenset value."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"set", "frozenset"}
    )


class DeterminismChecker(Checker):
    name = "determinism"
    description = (
        "no wall-clock, unseeded randomness, environment reads, id() "
        "logic, or unsorted set iteration in solver/engine modules"
    )

    def check(
        self, codebase: Codebase, config: LintConfig
    ) -> Iterator[Finding]:
        for module in codebase.iter_modules(config.determinism_prefixes):
            ordered_parents = self._order_insensitive_parents(module.tree)
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Call):
                    yield from self._check_call(codebase, module, node)
                yield from self._check_set_iteration(
                    codebase, module, node, ordered_parents
                )
                if isinstance(node, ast.Attribute) and (
                    isinstance(node.value, ast.Name)
                    and node.value.id == "os"
                    and node.attr == "environ"
                ):
                    yield self.finding(
                        codebase,
                        module,
                        node.lineno,
                        "os.environ read in a deterministic module",
                        hint=(
                            "thread configuration through function "
                            "arguments from the CLI boundary, or suppress "
                            "with a reason if the value cannot reach any "
                            "returned payload"
                        ),
                    )

    def _check_call(
        self, codebase: Codebase, module, node: ast.Call
    ) -> Iterator[Finding]:
        pair = _attr_call(node)
        yield from self._check_ordering_key(codebase, module, node)
        if pair in _CLOCK_CALLS:
            yield self.finding(
                codebase,
                module,
                node.lineno,
                f"wall-clock read {pair[0]}.{pair[1]}() in a deterministic "
                "module",
                hint="timestamps belong in CLI-layer reports, not payloads",
            )
        elif pair in _ENTROPY_CALLS:
            yield self.finding(
                codebase,
                module,
                node.lineno,
                f"entropy read {pair[0]}.{pair[1]}() in a deterministic "
                "module",
                hint=(
                    "derive identifiers from content (hashlib over "
                    "canonical bytes) instead of process entropy"
                ),
            )
        elif pair is not None and pair[0] == "random":
            if pair[1] in _RANDOM_FUNCTIONS:
                yield self.finding(
                    codebase,
                    module,
                    node.lineno,
                    f"unseeded module-level random.{pair[1]}() call",
                    hint="use an explicitly seeded random.Random(seed)",
                )
            elif pair[1] == "Random" and not node.args:
                yield self.finding(
                    codebase,
                    module,
                    node.lineno,
                    "random.Random() constructed without a seed",
                    hint="pass an explicit constant seed",
                )
        elif pair is not None and pair[0] == "os" and pair[1] == "getenv":
            yield self.finding(
                codebase,
                module,
                node.lineno,
                "os.getenv read in a deterministic module",
                hint="thread configuration through function arguments",
            )
        elif (
            isinstance(node.func, ast.Name)
            and node.func.id == "id"
            and len(node.args) == 1
        ):
            yield self.finding(
                codebase,
                module,
                node.lineno,
                "id()-dependent logic in a deterministic module",
                hint="compare/order by value, not by object identity",
            )

    def _check_ordering_key(
        self, codebase: Codebase, module, node: ast.Call
    ) -> Iterator[Finding]:
        """``sorted(..., key=hash)``-style orderings vary per process."""
        is_ordering = (
            isinstance(node.func, ast.Name)
            and node.func.id in _ORDERING_CALLS
        ) or (
            isinstance(node.func, ast.Attribute) and node.func.attr == "sort"
        )
        if not is_ordering:
            return
        caller = (
            node.func.id
            if isinstance(node.func, ast.Name)
            else f"….{node.func.attr}"
        )
        for keyword in node.keywords:
            if keyword.arg != "key":
                continue
            value = keyword.value
            uses_hash = (
                isinstance(value, ast.Name) and value.id == "hash"
            ) or any(
                isinstance(inner, ast.Call)
                and isinstance(inner.func, ast.Name)
                and inner.func.id == "hash"
                for inner in ast.walk(value)
            )
            if uses_hash:
                yield self.finding(
                    codebase,
                    module,
                    node.lineno,
                    f"hash() used as the ordering key of {caller}(): "
                    "order varies under hash randomisation",
                    hint=(
                        "order by a value-derived key (the element "
                        "itself, a tuple of fields, or a canonical "
                        "serialisation), not by hash()"
                    ),
                )

    def _order_insensitive_parents(self, tree: ast.Module) -> set[int]:
        """ids of set-expressions consumed by order-insensitive callers."""
        safe: set[int] = set()
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _ORDER_INSENSITIVE
            ):
                for argument in node.args:
                    safe.add(id(argument))
            elif isinstance(node, ast.Compare):
                # membership/equality tests do not observe order
                safe.update(id(c) for c in node.comparators)
                safe.add(id(node.left))
        return safe

    def _check_set_iteration(
        self, codebase: Codebase, module, node: ast.AST, safe: set[int]
    ) -> Iterator[Finding]:
        iterables: list[ast.expr] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iterables.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            if id(node) in safe:  # whole comprehension feeds sorted()/any()/…
                return
            iterables.extend(gen.iter for gen in node.generators)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in {"list", "tuple", "enumerate", "iter", "next"}
        ):
            iterables.extend(node.args[:1])
        for candidate in iterables:
            if _is_set_expression(candidate) and id(candidate) not in safe:
                yield self.finding(
                    codebase,
                    module,
                    candidate.lineno,
                    "iteration over a freshly built set: order depends on "
                    "hash randomisation",
                    hint="wrap the set in sorted(...) before iterating",
                )
