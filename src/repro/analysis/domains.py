"""Id-domain flow analysis: which dense-int space does a value live in?

The fast path of this reproduction keeps almost everything as small
ints — interned factor gids (:class:`repro.kernel.sweep.SweepFamily`),
FO[EQ] interval ids, relation slot indices, bitset universes (big-int
masks over an intern table), shard lane indices, DFA state numbers.
Python cannot tell them apart, and the one real soundness hole shipped
so far (the PR-4 sweep pool escape) was exactly a cross-domain
confusion: candidate gids minted by pure regex/oracle pools were
witnessed without first intersecting with the word's member mask.

This module assigns every expression a small *id-domain* lattice
element and flows it through assignments, calls, returns, container
element types and comprehensions, on top of the PR-5 call graph
(:mod:`repro.analysis.callgraph`).  The lattice values are strings:

``plain``
    not an id (or the analysis lost track) — the bottom element.
``intern:<role>``
    a dense id minted by the intern table named ``<role>``
    (e.g. ``intern:sweep`` for :meth:`SweepFamily.intern` gids).
``interval``
    an FO[EQ] interval id (:mod:`repro.foeq.compiled`).
``slot``
    a relation slot index (:meth:`repro.fc.sweep.SweepProgram._slot`).
``shard-lane``
    a shard lane index (:mod:`repro.engine.shards`).
``dfa-state``
    a DFA state number (:mod:`repro.fcreg.automata`).
``bitset-universe:<role>``
    a bitset mask over ``<role>``'s id space that has been restricted
    to one word's member set (safe to witness from).
``bitset-pool:<role>``
    an *unrestricted* candidate mask over ``<role>``'s id space — it
    may contain ids that are not factors of the current word and must
    be intersected with a ``bitset-universe`` mask before any id is
    witnessed out of it (the PR-4 invariant).
``iter[<spec>]``
    a container whose elements carry ``<spec>`` (iteration, ``min``/
    ``max``/``next`` and positional subscripts unwrap it).
``map[<index>, <elem>]``
    a container that must be subscripted with ``<index>``-domain keys
    and yields ``<elem>``-domain values (e.g. a relation environment is
    ``map[slot, intern:sweep]``).

Domains enter the flow through ``# repro-lint: domain[...]`` pins:

* on (or one line above) a ``def`` — ``domain[returns=<spec>,
  <param>=<spec>, ...] reason`` declares a producer or translator;
* on an assignment — ``domain[<spec>] reason`` declares the bound
  local, ``self`` attribute or module-level binding.

``kernel/bitset.py`` additionally grows :func:`declare_universe`, the
one trusted mint for ``bitset-universe:<role>`` masks; the analysis
models it (plus ``from_ids`` / ``iter_ids`` / ``contains``) natively.

Four rules in :mod:`repro.analysis.domainrules` consume the typed
events this analysis records; everything un-pinned stays ``plain`` and
silent, so adoption is incremental.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

from repro.analysis.callgraph import FunctionInfo
from repro.analysis.effects import analysis_for as _effects_for
from repro.analysis.framework import Codebase, LintConfig, SourceModule

__all__ = [
    "DomainAnalysis",
    "DomainEvent",
    "domains_for",
    "parse_spec",
]


PLAIN = "plain"

#: Scalar id domains that need no role suffix.
_SIMPLE = frozenset({"interval", "slot", "shard-lane", "dfa-state"})

#: Role-carrying scalar/mask domain prefixes.
_ROLED = ("intern:", "bitset-universe:", "bitset-pool:")

_PIN_MARK = re.compile(r"repro-lint:\s*domain\[")

#: Functions in ``config.bitset_modules`` the flow models natively.
_BITSET_FNS = frozenset(
    {"iter_ids", "from_ids", "contains", "count", "declare_universe"}
)

#: Builtins that return their (container) argument re-ordered/copied.
_PRESERVING_BUILTINS = frozenset(
    {"sorted", "list", "tuple", "set", "frozenset", "reversed", "iter"}
)

#: Builtins that pick one element out of a container argument.
_PICKING_BUILTINS = frozenset({"min", "max", "next"})


# ---------------------------------------------------------------------------
# Spec grammar.


def _split_top(text: str, sep: str = ",") -> list[str]:
    """Split on ``sep`` outside brackets (``map[a, b]`` stays whole)."""
    parts, depth, start = [], 0, 0
    for i, ch in enumerate(text):
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        elif ch == sep and depth == 0:
            parts.append(text[start:i])
            start = i + 1
    parts.append(text[start:])
    return [part.strip() for part in parts if part.strip()]


def parse_spec(text: str) -> str | None:
    """Normalise one domain spec, or ``None`` if it is malformed."""
    text = text.strip()
    if text == PLAIN or text in _SIMPLE:
        return text
    for prefix in _ROLED:
        if text.startswith(prefix):
            role = text[len(prefix):]
            if role and re.fullmatch(r"[A-Za-z0-9_-]+", role):
                return text
            return None
    if text.startswith("iter[") and text.endswith("]"):
        inner = parse_spec(text[len("iter["):-1])
        return None if inner is None else f"iter[{inner}]"
    if text.startswith("map[") and text.endswith("]"):
        parts = _split_top(text[len("map["):-1])
        if len(parts) != 2:
            return None
        index, elem = parse_spec(parts[0]), parse_spec(parts[1])
        if index is None or elem is None:
            return None
        return f"map[{index}, {elem}]"
    return None


def _is_mask(spec: str) -> bool:
    return spec.startswith(("bitset-universe:", "bitset-pool:"))


def _is_universe(spec: str) -> bool:
    return spec.startswith("bitset-universe:")


def _is_scalar_id(spec: str) -> bool:
    return spec in _SIMPLE or spec.startswith("intern:")


def _role(spec: str) -> str:
    return spec.split(":", 1)[1]


def _elem_of(spec: str) -> str:
    """Element domain of a container spec (``plain`` otherwise)."""
    if spec.startswith("iter[") and spec.endswith("]"):
        return spec[len("iter["):-1]
    if spec.startswith("map[") and spec.endswith("]"):
        return _split_top(spec[len("map["):-1])[1]
    return PLAIN


def _index_of(spec: str) -> str | None:
    """Declared index domain of a ``map[...]`` spec, else ``None``."""
    if spec.startswith("map[") and spec.endswith("]"):
        return _split_top(spec[len("map["):-1])[0]
    return None


def _join(left: str, right: str) -> str:
    """Control-flow join: equal domains survive, anything else drops."""
    return left if left == right else PLAIN


# ---------------------------------------------------------------------------
# Pins.


def _pin_entries(line: str) -> str | None:
    """The bracketed body of a ``domain[...]`` pin on ``line``, if any."""
    match = _PIN_MARK.search(line)
    if match is None:
        return None
    depth, start = 1, match.end()
    for i in range(start, len(line)):
        if line[i] == "[":
            depth += 1
        elif line[i] == "]":
            depth -= 1
            if depth == 0:
                return line[start:i]
    return None


@dataclass(frozen=True)
class DomainEvent:
    """One domain violation candidate recorded during the flow walk."""

    kind: str  # "mix" | "bitset" | "escape" | "slot" | "pin"
    line: int
    message: str


@dataclass
class _Flow:
    """Per-function flow result."""

    returns: str = PLAIN
    events: list = field(default_factory=list)


# ---------------------------------------------------------------------------
# The per-function abstract interpreter.


class _FlowScan:
    """One walk over a function body, tracking local id domains.

    Flow-sensitivity is per-statement in source order; loop bodies are
    walked twice so loop-carried domains stabilise.  Branches share one
    environment (last writer wins) — sound enough for a lint whose
    rules only fire on *declared* domains.
    """

    def __init__(self, analysis: "DomainAnalysis", info: FunctionInfo):
        self.analysis = analysis
        self.graph = analysis.graph
        self.info = info
        self.module = analysis.codebase.modules[info.module]
        self.imports = analysis.codebase.import_table(self.module)
        self.env: dict[str, str] = {}
        self.types: dict[str, str] = {}  # local name → class qualname
        self.callables: dict[str, str] = {}  # local alias → function qualname
        self.events: list[DomainEvent] = []
        self.return_domain: str | None = None
        self.record = False

    # -- entry ----------------------------------------------------------

    def run(self, record: bool) -> _Flow:
        params = self.analysis.param_pins.get(self.info.qualname, {})
        node = self.info.node
        for arg in list(node.args.posonlyargs) + list(node.args.args) + list(
            node.args.kwonlyargs
        ):
            cls = self.graph.resolve_annotation(self.module, arg.annotation)
            if cls is not None:
                self.types[arg.arg] = cls
            pinned = params.get(arg.arg)
            if pinned is not None:
                self.env[arg.arg] = pinned
        passes = 2 if record else 1
        for final in range(passes):
            self.record = record and final == passes - 1
            self.events = []
            self.return_domain = None
            for stmt in node.body:
                self._stmt(stmt)
        return _Flow(self.return_domain or PLAIN, self.events)

    # -- events ----------------------------------------------------------

    def _event(self, kind: str, node: ast.AST, message: str) -> None:
        if self.record:
            self.events.append(DomainEvent(kind, node.lineno, message))

    @staticmethod
    def _src(node: ast.AST) -> str:
        try:
            text = ast.unparse(node)
        except Exception:
            return "<expr>"
        return text if len(text) <= 60 else text[:57] + "..."

    # -- statements -------------------------------------------------------

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            value = self._dom(stmt.value)
            for target in stmt.targets:
                self._assign(target, stmt.value, value)
        elif isinstance(stmt, ast.AnnAssign):
            value = self._dom(stmt.value) if stmt.value is not None else PLAIN
            cls = self.graph.resolve_annotation(self.module, stmt.annotation)
            if cls is not None and isinstance(stmt.target, ast.Name):
                self.types[stmt.target.id] = cls
            self._assign(stmt.target, stmt.value, value)
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name):
                current = self.env.get(stmt.target.id, PLAIN)
                combined = self._binop_domain(
                    stmt.op, current, self._dom(stmt.value), stmt
                )
                self.env[stmt.target.id] = combined
            else:
                self._dom(stmt.value)
                if isinstance(stmt.target, ast.Subscript):
                    self._subscript_domain(stmt.target, store=True)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                value = self._dom(stmt.value)
                if self.return_domain is None:
                    self.return_domain = value
                else:
                    self.return_domain = _join(self.return_domain, value)
        elif isinstance(stmt, ast.For):
            iterable = self._dom(stmt.iter)
            if isinstance(stmt.target, ast.Name):
                self.env[stmt.target.id] = _elem_of(iterable)
            for child in stmt.body + stmt.orelse:
                self._stmt(child)
        elif isinstance(stmt, ast.While):
            self._dom(stmt.test)
            for child in stmt.body + stmt.orelse:
                self._stmt(child)
        elif isinstance(stmt, ast.If):
            self._dom(stmt.test)
            for child in stmt.body + stmt.orelse:
                self._stmt(child)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self._dom(item.context_expr)
            for child in stmt.body:
                self._stmt(child)
        elif isinstance(stmt, ast.Try):
            for child in stmt.body:
                self._stmt(child)
            for handler in stmt.handlers:
                for child in handler.body:
                    self._stmt(child)
            for child in stmt.orelse + stmt.finalbody:
                self._stmt(child)
        elif isinstance(stmt, ast.Expr):
            self._dom(stmt.value)
        elif isinstance(stmt, (ast.Assert, ast.Raise)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._dom(child)
        # Nested defs/classes/imports don't carry domains across.

    def _assign(
        self, target: ast.expr, value_node: ast.expr | None, value: str
    ) -> None:
        if isinstance(target, ast.Name):
            pinned = self.analysis.local_pin(self.module, target.lineno)
            self.env[target.id] = pinned if pinned is not None else value
            if value_node is not None:
                cls = self._class_of(value_node)
                if cls is not None:
                    self.types[target.id] = cls
                qualname = self._callable_of(value_node)
                if qualname is not None:
                    self.callables[target.id] = qualname
        elif isinstance(target, ast.Subscript):
            elem = self._subscript_domain(target, store=True)
            if (
                self.record
                and elem != PLAIN
                and value != PLAIN
                and not value.startswith(("iter[", "map["))
                and value != elem
            ):
                self._event(
                    "mix",
                    target,
                    f"stores a {value} id into a container declared to "
                    f"hold {elem} ({self._src(target)})",
                )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                if isinstance(element, ast.Name):
                    self.env[element.id] = PLAIN

    # -- expression domains ------------------------------------------------

    def _dom(self, node: ast.expr | None) -> str:
        if node is None:
            return PLAIN
        if isinstance(node, ast.Name):
            spec = self.env.get(node.id)
            if spec is not None:
                return spec
            return self.analysis.global_domain(self.module, node.id)
        if isinstance(node, ast.Attribute):
            self._dom(node.value)
            cls = self._class_of(node.value)
            if cls is not None:
                spec = self.analysis.attr_domain(cls, node.attr)
                if spec is not None:
                    return spec
            return PLAIN
        if isinstance(node, ast.Subscript):
            return self._subscript_domain(node, store=False)
        if isinstance(node, ast.Call):
            return self._call_domain(node)
        if isinstance(node, ast.BinOp):
            left = self._dom(node.left)
            right = self._dom(node.right)
            return self._binop_domain(node.op, left, right, node)
        if isinstance(node, ast.BoolOp):
            domains = [self._dom(value) for value in node.values]
            result = domains[0]
            for other in domains[1:]:
                result = _join(result, other)
            return result
        if isinstance(node, ast.IfExp):
            self._dom(node.test)
            return _join(self._dom(node.body), self._dom(node.orelse))
        if isinstance(node, ast.Compare):
            self._compare(node)
            return PLAIN
        if isinstance(node, ast.NamedExpr):
            value = self._dom(node.value)
            if isinstance(node.target, ast.Name):
                self.env[node.target.id] = value
            return value
        if isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
            return self._comprehension(node)
        if isinstance(node, ast.DictComp):
            self._bind_generators(node.generators)
            self._dom(node.key)
            self._dom(node.value)
            return PLAIN
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            domains = {self._dom(element) for element in node.elts}
            if len(domains) == 1:
                only = domains.pop()
                if only != PLAIN and not only.startswith(("iter[", "map[")):
                    return f"iter[{only}]"
            return PLAIN
        if isinstance(node, ast.Starred):
            return self._dom(node.value)
        if isinstance(node, ast.Lambda):
            for arg in node.args.args:
                self.env.setdefault(arg.arg, PLAIN)
            self._dom(node.body)
            return PLAIN
        if isinstance(node, ast.UnaryOp):
            self._dom(node.operand)
            return PLAIN
        if isinstance(node, ast.JoinedStr):
            return PLAIN
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._dom(child)
        return PLAIN

    def _comprehension(self, node) -> str:
        self._bind_generators(node.generators)
        elem = self._dom(node.elt)
        if elem != PLAIN and not elem.startswith(("iter[", "map[")):
            return f"iter[{elem}]"
        return PLAIN

    def _bind_generators(self, generators) -> None:
        for gen in generators:
            iterable = self._dom(gen.iter)
            if isinstance(gen.target, ast.Name):
                self.env[gen.target.id] = _elem_of(iterable)
            elif isinstance(gen.target, (ast.Tuple, ast.List)):
                for element in gen.target.elts:
                    if isinstance(element, ast.Name):
                        self.env[element.id] = PLAIN
            for condition in gen.ifs:
                self._dom(condition)

    # -- subscripts --------------------------------------------------------

    def _subscript_domain(self, node: ast.Subscript, store: bool) -> str:
        container = self._dom(node.value)
        if isinstance(node.slice, ast.Slice):
            for bound in (node.slice.lower, node.slice.upper, node.slice.step):
                self._dom(bound)
            return container
        index = self._dom(node.slice)
        declared = _index_of(container)
        if declared is not None and self.record:
            if declared == "slot" and index != "slot":
                self._event(
                    "slot",
                    node,
                    f"indexes a declared map[slot, ...] container with a "
                    f"{index} value ({self._src(node)})",
                )
            elif (
                declared != "slot"
                and index != PLAIN
                and index != declared
            ):
                self._event(
                    "mix",
                    node,
                    f"indexes a map[{declared}, ...] container with a "
                    f"{index} id ({self._src(node)})",
                )
        return _elem_of(container)

    # -- calls -------------------------------------------------------------

    def _class_of(self, node: ast.expr) -> str | None:
        """The codebase class an expression evaluates to, if trackable."""
        if isinstance(node, ast.Name):
            if node.id == self.info.self_name and self.info.cls is not None:
                return self.info.cls
            return self.types.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self._class_of(node.value)
            if base is not None:
                found = self.graph.attr_types.get(base, {}).get(node.attr)
                if found is not None:
                    return found
            return None
        if isinstance(node, ast.Call):
            qualname = self._resolve_call(node)
            if qualname is None:
                return None
            if qualname in self.analysis.codebase.classes():
                return qualname
            info = self.graph.functions.get(qualname)
            if info is not None:
                return self.graph.resolve_annotation(
                    self.analysis.codebase.modules[info.module],
                    info.node.returns,
                )
        return None

    def _callable_of(self, node: ast.expr) -> str | None:
        """Function qualname an (un-called) expression is an alias of."""
        if isinstance(node, ast.Attribute):
            cls = self._class_of(node.value)
            if cls is not None:
                return self.graph.resolve_method(cls, node.attr)
            dotted = self.analysis.codebase.resolve_name(self.module, node)
            if dotted in self.graph.functions:
                return dotted
        if isinstance(node, ast.Name):
            return self._named_function(node.id)
        return None

    def _named_function(self, name: str) -> str | None:
        if name in self.callables:
            return self.callables[name]
        classes = self.analysis.codebase.classes()
        local = f"{self.module.name}.{name}"
        if local in self.graph.functions or local in classes:
            return local
        imported = self.imports.get(name)
        if imported is not None and (
            imported in self.graph.functions or imported in classes
        ):
            return imported
        return None

    def _resolve_call(self, node: ast.Call) -> str | None:
        func = node.func
        if isinstance(func, ast.Name):
            return self._named_function(func.id)
        if isinstance(func, ast.Attribute):
            cls = self._class_of(func.value)
            if cls is not None:
                resolved = self.graph.resolve_method(cls, func.attr)
                if resolved is not None:
                    return resolved
            dotted = self.analysis.codebase.resolve_name(self.module, func)
            if dotted is not None and (
                dotted in self.graph.functions
                or dotted in self.analysis.codebase.classes()
            ):
                return dotted
        return None

    def _call_domain(self, node: ast.Call) -> str:
        func = node.func
        args = node.args

        # Container-method calls on a tracked map/iter value.
        if isinstance(func, ast.Attribute):
            receiver = self._dom(func.value)
            if receiver.startswith(("map[", "iter[")):
                for arg in args:
                    self._dom(arg)
                if func.attr in {"get", "setdefault", "pop"} and args:
                    declared = _index_of(receiver)
                    key = self._dom(args[0])
                    if (
                        declared is not None
                        and self.record
                        and key != PLAIN
                        and key != declared
                    ):
                        self._event(
                            "mix",
                            node,
                            f"looks up a map[{declared}, ...] container "
                            f"with a {key} id ({self._src(node)})",
                        )
                    return _elem_of(receiver)
                return PLAIN

        qualname = self._resolve_call(node)

        # The kernel bitset primitives are modelled natively.
        if qualname is not None:
            bitset_domain = self._bitset_call(qualname, node)
            if bitset_domain is not None:
                return bitset_domain

        # Builtins that preserve or pick from container domains.
        if isinstance(func, ast.Name) and qualname is None and args:
            first = self._dom(args[0])
            for arg in args[1:]:
                self._dom(arg)
            for keyword in node.keywords:
                self._dom(keyword.value)
            if func.id in _PRESERVING_BUILTINS:
                if first.startswith("iter["):
                    return first
                if first.startswith("map["):
                    return f"iter[{_elem_of(first)}]"
                return PLAIN
            if func.id in _PICKING_BUILTINS:
                return _elem_of(first)
            return PLAIN

        arg_domains = [self._dom(arg) for arg in args]
        for keyword in node.keywords:
            self._dom(keyword.value)
        if qualname is None:
            return PLAIN
        if qualname in self.analysis.codebase.classes():
            constructor = self.graph.resolve_method(qualname, "__init__")
            if constructor is not None:
                self._check_call_args(constructor, node, arg_domains)
            return PLAIN
        self._check_call_args(qualname, node, arg_domains)
        return self.analysis.returns.get(qualname, PLAIN)

    def _check_call_args(
        self, qualname: str, node: ast.Call, arg_domains: list[str]
    ) -> None:
        declared = self.analysis.param_pins.get(qualname)
        if not declared or not self.record:
            return
        info = self.graph.functions.get(qualname)
        if info is None:
            return
        for position, actual in enumerate(arg_domains):
            if position >= len(info.params):
                break
            expected = declared.get(info.params[position])
            if (
                expected is not None
                and actual != PLAIN
                and actual != expected
            ):
                self._event(
                    "mix",
                    node,
                    f"passes a {actual} id where {qualname.rsplit('.', 1)[-1]}"
                    f" declares {info.params[position]}={expected} "
                    f"({self._src(node)})",
                )

    def _bitset_call(self, qualname: str, node: ast.Call) -> str | None:
        module, _, name = qualname.rpartition(".")
        if (
            module not in self.analysis.config.bitset_modules
            or name not in _BITSET_FNS
        ):
            return None
        args = node.args
        first = self._dom(args[0]) if args else PLAIN
        for arg in args[1:]:
            self._dom(arg)
        if name == "iter_ids":
            if first.startswith("bitset-pool:"):
                self._event(
                    "escape",
                    node,
                    f"witnesses ids out of an unrestricted {first} "
                    f"candidate mask — intersect with the word's "
                    f"bitset-universe:{_role(first)} member mask first "
                    f"({self._src(node)})",
                )
            if _is_mask(first):
                return f"iter[intern:{_role(first)}]"
            return PLAIN
        if name == "from_ids":
            elem = _elem_of(first)
            if elem.startswith("intern:"):
                return f"bitset-pool:{_role(elem)}"
            return PLAIN
        if name == "declare_universe":
            if len(args) >= 2 and isinstance(args[1], ast.Constant):
                role = args[1].value
                if isinstance(role, str):
                    spec = parse_spec(f"bitset-universe:{role}")
                    if spec is not None:
                        return spec
            return PLAIN
        if name == "contains":
            second = self._dom(args[1]) if len(args) > 1 else PLAIN
            if (
                _is_mask(first)
                and second.startswith("intern:")
                and _role(first) != _role(second)
            ):
                self._event(
                    "bitset",
                    node,
                    f"probes a {first} mask for a {second} id — masks and "
                    f"ids must share one intern table ({self._src(node)})",
                )
            return PLAIN
        if name == "count":
            return PLAIN
        return None

    # -- operators ---------------------------------------------------------

    def _binop_domain(
        self, op: ast.operator, left: str, right: str, node: ast.AST
    ) -> str:
        if isinstance(op, ast.LShift) and right.startswith("intern:"):
            # ``1 << gid`` mints a singleton candidate mask over the
            # gid's table.
            return f"bitset-pool:{_role(right)}"
        if isinstance(op, (ast.BitAnd, ast.BitOr, ast.BitXor)):
            if _is_mask(left) and _is_mask(right):
                if _role(left) != _role(right):
                    self._event(
                        "bitset",
                        node,
                        f"combines a {left} mask with a {right} mask — "
                        f"bitset algebra is only defined over one intern "
                        f"table ({self._src(node)})",
                    )
                    return PLAIN
                role = _role(left)
                if isinstance(op, ast.BitAnd):
                    # Intersecting with a universe mask restricts the
                    # pool: this *is* the declared pool→universe
                    # translation (the PR-4 fix shape).
                    if _is_universe(left) or _is_universe(right):
                        return f"bitset-universe:{role}"
                    return f"bitset-pool:{role}"
                # Union/xor can only widen: the result is universe-safe
                # only when both operands already were.
                if _is_universe(left) and _is_universe(right):
                    return f"bitset-universe:{role}"
                return f"bitset-pool:{role}"
            if _is_mask(left) != _is_mask(right):
                mask, other = (left, right) if _is_mask(left) else (right, left)
                if _is_scalar_id(other):
                    self._event(
                        "mix",
                        node,
                        f"combines a {mask} mask with a bare {other} id — "
                        f"lift the id with ``1 << id`` over the same table "
                        f"({self._src(node)})",
                    )
                    return PLAIN
                return mask
            if (
                _is_scalar_id(left)
                and _is_scalar_id(right)
                and left != right
            ):
                self._event(
                    "mix",
                    node,
                    f"unions a {left} id with a {right} id "
                    f"({self._src(node)})",
                )
            return PLAIN
        return PLAIN

    def _compare(self, node: ast.Compare) -> None:
        domains = [self._dom(node.left)]
        domains.extend(self._dom(comp) for comp in node.comparators)
        for position, op in enumerate(node.ops):
            left, right = domains[position], domains[position + 1]
            if isinstance(op, (ast.In, ast.NotIn)):
                elem = _elem_of(right)
                if (
                    _is_scalar_id(left)
                    and _is_scalar_id(elem)
                    and left != elem
                ):
                    self._event(
                        "mix",
                        node,
                        f"membership-tests a {left} id against a container "
                        f"of {elem} ids ({self._src(node)})",
                    )
                continue
            if isinstance(op, (ast.Is, ast.IsNot)):
                continue
            if _is_mask(left) and _is_mask(right):
                if _role(left) != _role(right):
                    self._event(
                        "bitset",
                        node,
                        f"compares a {left} mask with a {right} mask "
                        f"({self._src(node)})",
                    )
                continue
            if (
                _is_scalar_id(left)
                and _is_scalar_id(right)
                and left != right
            ):
                self._event(
                    "mix",
                    node,
                    f"compares a {left} id with a {right} id "
                    f"({self._src(node)})",
                )


# ---------------------------------------------------------------------------
# The project-wide analysis.


class DomainAnalysis:
    """Id-domain flow for every function in a pin-reachable module.

    Modules that neither contain a ``domain[...]`` pin nor import one
    that does are skipped entirely — their flows are all-``plain`` by
    construction, so the rules stay silent there and adoption is
    incremental.
    """

    def __init__(self, codebase: Codebase, config: LintConfig) -> None:
        self.codebase = codebase
        self.config = config
        self.graph = _effects_for(codebase, config).graph
        #: function qualname → declared-or-inferred return domain.
        self.returns: dict[str, str] = {}
        #: function qualname → {param name → declared domain}.
        self.param_pins: dict[str, dict[str, str]] = {}
        #: class qualname → {attribute → declared domain}.
        self.attr_domains: dict[str, dict[str, str]] = {}
        #: dotted module binding → declared domain.
        self.global_domains: dict[str, str] = {}
        #: (module name, line) → declared local-assignment domain.
        self._local_pins: dict[tuple[str, int], str] = {}
        #: malformed pins: (module, line, raw text).
        self.pin_errors: list[tuple[str, int, str]] = []
        #: function qualname → flow events (scope functions only).
        self.events: dict[str, list[DomainEvent]] = {}
        self.pin_count = 0

        self._relevant = self._relevant_modules()
        self._collect_pins()
        self._solve()

    # -- pin collection ----------------------------------------------------

    def _relevant_modules(self) -> set[str]:
        relevant = {
            module.name
            for module in self.codebase.iter_modules()
            if _PIN_MARK.search(module.text)
        }
        relevant.update(
            name for name in self.config.bitset_modules
            if name in self.codebase.modules
        )
        # Close over importers so consumers of pinned producers flow too.
        changed = True
        while changed:
            changed = False
            for module in self.codebase.iter_modules():
                if module.name in relevant:
                    continue
                targets = self.codebase.import_table(module).values()
                if any(
                    target in relevant
                    or target.rpartition(".")[0] in relevant
                    for target in targets
                ):
                    relevant.add(module.name)
                    changed = True
        return relevant

    def _pin_at(self, module: SourceModule, lineno: int) -> str | None:
        """Raw pin body on ``lineno`` or the line above, if present."""
        lines = module.lines
        for candidate in (lineno, lineno - 1):
            if 1 <= candidate <= len(lines):
                body = _pin_entries(lines[candidate - 1])
                if body is not None:
                    return body
        return None

    def local_pin(self, module: SourceModule, lineno: int) -> str | None:
        return self._local_pins.get((module.name, lineno))

    def attr_domain(self, cls: str, attr: str) -> str | None:
        classes = self.codebase.classes()
        seen: set[str] = set()
        queue = [cls]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            found = self.attr_domains.get(current, {}).get(attr)
            if found is not None:
                return found
            info = classes.get(current)
            if info is not None:
                queue.extend(info.bases)
        return None

    def global_domain(self, module: SourceModule, name: str) -> str:
        dotted = f"{module.name}.{name}"
        found = self.global_domains.get(dotted)
        if found is not None:
            return found
        imported = self.codebase.import_table(module).get(name)
        if imported is not None:
            return self.global_domains.get(imported, PLAIN)
        return PLAIN

    def _spec(self, module: SourceModule, lineno: int, text: str) -> str | None:
        spec = parse_spec(text)
        if spec is None:
            self.pin_errors.append((module.name, lineno, text.strip()))
        else:
            self.pin_count += 1
        return spec

    def _collect_pins(self) -> None:
        for name in sorted(self._relevant):
            module = self.codebase.modules[name]
            # Module-level bindings.
            for stmt in module.tree.body:
                targets: list[ast.expr] = []
                if isinstance(stmt, ast.Assign):
                    targets = stmt.targets
                elif isinstance(stmt, ast.AnnAssign):
                    targets = [stmt.target]
                if not targets:
                    continue
                body = self._pin_at(module, stmt.lineno)
                if body is None:
                    continue
                spec = self._spec(module, stmt.lineno, body)
                if spec is None:
                    continue
                for target in targets:
                    if isinstance(target, ast.Name):
                        self.global_domains[f"{name}.{target.id}"] = spec
            # Class-level attribute declarations.
            for stmt in module.tree.body:
                if not isinstance(stmt, ast.ClassDef):
                    continue
                cls = f"{name}.{stmt.name}"
                for child in stmt.body:
                    target = None
                    if isinstance(child, ast.AnnAssign) and isinstance(
                        child.target, ast.Name
                    ):
                        target = child.target.id
                    elif isinstance(child, ast.Assign) and all(
                        isinstance(t, ast.Name) for t in child.targets
                    ):
                        target = child.targets[0].id
                    if target is None:
                        continue
                    body = self._pin_at(module, child.lineno)
                    if body is None:
                        continue
                    spec = self._spec(module, child.lineno, body)
                    if spec is not None:
                        self.attr_domains.setdefault(cls, {})[target] = spec

        for qualname in sorted(self.graph.functions):
            info = self.graph.functions[qualname]
            if info.module not in self._relevant:
                continue
            module = self.codebase.modules[info.module]
            # Signature pins on (or above) the def line.
            body = self._pin_at(module, info.node.lineno)
            if body is not None:
                for entry in _split_top(body):
                    key, eq, raw = entry.partition("=")
                    if not eq:
                        self.pin_errors.append(
                            (info.module, info.node.lineno, entry)
                        )
                        continue
                    spec = self._spec(module, info.node.lineno, raw)
                    if spec is None:
                        continue
                    key = key.strip()
                    if key == "returns":
                        self.returns[qualname] = spec
                    elif key == info.self_name or key in info.params:
                        self.param_pins.setdefault(qualname, {})[key] = spec
                    else:
                        self.pin_errors.append(
                            (info.module, info.node.lineno, entry)
                        )
            # Attribute pins on self-assignments, local-assignment pins.
            for node in ast.walk(info.node):
                targets: list[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, ast.AnnAssign):
                    targets = [node.target]
                if not targets:
                    continue
                pin_body = self._pin_at(module, node.lineno)
                if pin_body is None:
                    continue
                entries = _split_top(pin_body)
                if not entries or "=" in entries[0]:
                    continue
                spec = self._spec(module, node.lineno, pin_body)
                if spec is None:
                    continue
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == info.self_name
                        and info.cls is not None
                    ):
                        self.attr_domains.setdefault(info.cls, {})[
                            target.attr
                        ] = spec
                    elif isinstance(target, ast.Name):
                        self._local_pins[(info.module, node.lineno)] = spec

    # -- the fixed point ----------------------------------------------------

    def _scope_functions(self) -> list[str]:
        return [
            qualname
            for qualname in sorted(self.graph.functions)
            if self.graph.functions[qualname].module in self._relevant
        ]

    def _solve(self) -> None:
        scope = self._scope_functions()
        pinned_returns = set(self.returns)
        # Inference rounds: propagate return domains through the call
        # graph until stable (pins are never overwritten).
        for _ in range(4):
            changed = False
            for qualname in scope:
                flow = _FlowScan(self, self.graph.functions[qualname]).run(
                    record=False
                )
                if qualname in pinned_returns:
                    continue
                previous = self.returns.get(qualname, PLAIN)
                if flow.returns != previous:
                    if flow.returns == PLAIN:
                        self.returns.pop(qualname, None)
                    else:
                        self.returns[qualname] = flow.returns
                    changed = True
            if not changed:
                break
        # Recording pass: events against the stable signature map.
        for qualname in scope:
            flow = _FlowScan(self, self.graph.functions[qualname]).run(
                record=True
            )
            self.events[qualname] = flow.events

    # -- reporting ----------------------------------------------------------

    def summary_payload(self) -> dict:
        """JSON-ready digest for ``repro lint --domains-json``."""
        functions = []
        for qualname in sorted(self.events):
            info = self.graph.functions[qualname]
            returns = self.returns.get(qualname, PLAIN)
            params = self.param_pins.get(qualname, {})
            if returns == PLAIN and not params and not self.events[qualname]:
                continue
            functions.append(
                {
                    "function": qualname,
                    "module": info.module,
                    "line": info.line,
                    "returns": returns,
                    "params": dict(sorted(params.items())),
                    "events": [
                        {
                            "kind": event.kind,
                            "line": event.line,
                            "message": event.message,
                        }
                        for event in self.events[qualname]
                    ],
                }
            )
        event_totals: dict[str, int] = {}
        for events in self.events.values():
            for event in events:
                event_totals[event.kind] = event_totals.get(event.kind, 0) + 1
        return {
            "modules_analyzed": sorted(self._relevant),
            "pins": self.pin_count,
            "pin_errors": [
                {"module": module, "line": line, "text": text}
                for module, line, text in self.pin_errors
            ],
            "attr_domains": {
                cls: dict(sorted(attrs.items()))
                for cls, attrs in sorted(self.attr_domains.items())
            },
            "functions": functions,
            "events": dict(sorted(event_totals.items())),
        }


def domains_for(codebase: Codebase, config: LintConfig) -> DomainAnalysis:
    """The (cached) domain analysis for this codebase + config."""
    cached = getattr(codebase, "_domains_analysis", None)
    if cached is not None and cached.config is config:
        return cached
    analysis = DomainAnalysis(codebase, config)
    codebase._domains_analysis = analysis
    return analysis
