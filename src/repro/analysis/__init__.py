"""repro.analysis — the invariant lint suite.

The reproduction's correctness rests on conventions that ordinary
linters cannot see: frozen AST nodes dispatched by ``isinstance``
chains, a content-addressed result cache whose soundness depends on
per-task ``version`` salts tracking function source, bit-deterministic
solver output, and a strict import-layering DAG.  This package turns
those implicit proof-lab invariants into machine-checked ones:

* :mod:`repro.analysis.framework`   — source loader, class graph,
  :class:`Finding` records, inline suppressions, baselines, the runner;
* :mod:`repro.analysis.dispatch`    — dispatch-exhaustiveness over the
  FC / FO[EQ] / spanner / regex-formula node hierarchies;
* :mod:`repro.analysis.cachesound`  — every registered engine task's
  dotted path must resolve and its ``version`` must match the recorded
  source hash in ``versions.lock``;
* :mod:`repro.analysis.determinism` — no wall-clock, unseeded
  randomness, entropy reads (``os.urandom``, ``uuid.uuid1/uuid4``),
  environment reads, ``id()`` logic, ``hash()``-keyed ordering or raw
  set iteration in solver/engine modules;
* :mod:`repro.analysis.purity`      — ``lru_cache`` sites must be pure
  (no mutable defaults, no ``global``/``nonlocal``, no closures);
* :mod:`repro.analysis.layering`    — the package import DAG
  ``words → {fc, fcreg} → {ef, foeq} → {spanners, semilinear} → core →
  engine`` with no upward imports;
* :mod:`repro.analysis.frozen`      — AST node discipline: syntax-module
  dataclasses are ``frozen=True`` with hashable field types;
* :mod:`repro.analysis.callgraph`   — project-wide call graph: function
  index, resolved call sites with argument roots, attr-type inference;
* :mod:`repro.analysis.effects`     — fixed-point effect inference
  assigning every function a summary over the effect-atom lattice;
* :mod:`repro.analysis.effectrules` — the four ``effects.*`` rules
  (purity-propagation, assignment-purity, memo-key-completeness,
  worker-isolation) consuming those summaries;
* :mod:`repro.analysis.cli`         — the ``python -m repro lint``
  command (``--rule`` globs, ``--json``, ``--effects-json``) and the CI
  gate.
"""

from __future__ import annotations

from repro.analysis.framework import (
    Checker,
    Codebase,
    Finding,
    LintConfig,
    all_checkers,
    default_config,
    run_checkers,
)

__all__ = [
    "Checker",
    "Codebase",
    "Finding",
    "LintConfig",
    "all_checkers",
    "default_config",
    "run_checkers",
]
