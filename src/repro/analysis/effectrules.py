"""The four ``effects.*`` rules over the inferred summaries.

All consume :func:`repro.analysis.effects.analysis_for` (one shared
call graph + fixed point per lint run):

* ``effects.purity-propagation`` — every ``lru_cache`` site must be
  *transitively* pure: the local checks in :mod:`repro.analysis.purity`
  cannot see a helper three calls down that reads a mutated global;
* ``effects.assignment-purity`` — an ``_assignment_pure`` extension
  atom promises the batched sweep (:mod:`repro.fc.sweep`) that its
  truth depends only on the assigned values, so its ``_evaluate`` may
  neither read the per-word structure parameter nor reach impure code
  (the PR-4 ``_WordView.constant`` bug class);
* ``effects.memo-key-completeness`` — a family-wide memo's stored value
  may only depend on names derivable from the key expression, the memo
  root's own state (``self``-interned), module-level constants, and
  region-local derivations; reading anything else (say, a per-word
  ``ctx``) poisons the memo across words;
* ``effects.worker-isolation`` — functions reachable from registered
  engine task ``fn``s run inside forked workers whose module state is
  thrown away; assigning module-level state there is at best lost and
  at worst a race, except through the trusted counter modules and the
  artifact-store channel (``repro.store``): workers *may* publish
  artifacts, but only via the declared store modules — an inline
  ``effects[store]`` pin outside them is flagged, so the channel cannot
  be widened ad hoc.

Intentional exemptions are written *next to the code* as
``# repro-lint: allow[effects.<rule>] reason`` comments.
"""

from __future__ import annotations

import ast
import builtins
from typing import Iterator

from repro.analysis.effects import analysis_for
from repro.analysis.framework import Checker, Codebase, Finding, LintConfig
from repro.analysis.purity import _is_lru_cached

__all__ = [
    "EffectAssignmentPurityChecker",
    "EffectPurityPropagationChecker",
    "MemoKeyCompletenessChecker",
    "WorkerIsolationChecker",
]

_BUILTIN_NAMES = frozenset(dir(builtins))

#: Atoms every rule tolerates: effort counters are exempt by design, and
#: the ``store`` channel is too — an artifact-store probe returns either
#: exactly the value the cold computation would produce (content-
#: addressed, salt-versioned) or a miss, so it cannot change any cached
#: result.  Reaching storage *around* the channel still infers
#: ``io``/``unknown`` and fails these rules.
_TOLERATED = frozenset({"counter", "store"})


def _module_of(codebase: Codebase, analysis, qualname: str):
    return codebase.modules[analysis.graph.functions[qualname].module]


class EffectPurityPropagationChecker(Checker):
    name = "effects.purity-propagation"
    description = (
        "lru_cache sites must be transitively pure across the call "
        "graph (counter writes exempt)"
    )

    def check(
        self, codebase: Codebase, config: LintConfig
    ) -> Iterator[Finding]:
        analysis = analysis_for(codebase, config)
        graph = analysis.graph
        for qualname in sorted(graph.functions):
            info = graph.functions[qualname]
            if not _is_lru_cached(info.node):
                continue
            summary = analysis.summaries.get(qualname, frozenset())
            for atom in sorted(summary - _TOLERATED):
                chain = "; ".join(analysis.explain(qualname, atom))
                yield self.finding(
                    codebase,
                    _module_of(codebase, analysis, qualname),
                    analysis.first_step_line(qualname, atom),
                    f"lru_cache function {info.name}() is not transitively "
                    f"pure: {atom} via {chain}",
                    hint=(
                        "cached results must be a pure function of the "
                        "arguments; make the reachable code pure, route "
                        "effort through the counter modules, or suppress "
                        "with a reason"
                    ),
                )


def _assignment_pure_classes(
    codebase: Codebase, config: LintConfig
) -> list[str]:
    """Classes declaring ``_assignment_pure`` (constant or property)."""
    flagged: list[str] = []
    for module in codebase.iter_modules((config.package,)):
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for child in node.body:
                declares = False
                if isinstance(child, ast.Assign):
                    declares = any(
                        isinstance(t, ast.Name) and t.id == "_assignment_pure"
                        for t in child.targets
                    )
                elif isinstance(child, ast.AnnAssign):
                    declares = (
                        isinstance(child.target, ast.Name)
                        and child.target.id == "_assignment_pure"
                    )
                elif isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    declares = child.name == "_assignment_pure"
                if declares:
                    flagged.append(f"{module.name}.{node.name}")
                    break
    return sorted(flagged)


class EffectAssignmentPurityChecker(Checker):
    name = "effects.assignment-purity"
    description = (
        "_assignment_pure extension atoms may not read per-word "
        "structure or reach impure code"
    )

    def check(
        self, codebase: Codebase, config: LintConfig
    ) -> Iterator[Finding]:
        analysis = analysis_for(codebase, config)
        graph = analysis.graph
        targets: dict[str, str] = {}  # _evaluate qualname → flagged class
        for cls in _assignment_pure_classes(codebase, config):
            for candidate in sorted({cls} | codebase.subclasses(cls)):
                evaluate = graph.resolve_method(candidate, "_evaluate")
                if evaluate is not None:
                    targets.setdefault(evaluate, candidate)
        for qualname in sorted(targets):
            cls = targets[qualname]
            info = graph.functions[qualname]
            module = _module_of(codebase, analysis, qualname)
            yield from self._structure_reads(
                codebase, module, cls, info
            )
            summary = analysis.summaries.get(qualname, frozenset())
            for atom in sorted(summary - _TOLERATED):
                chain = "; ".join(analysis.explain(qualname, atom))
                yield self.finding(
                    codebase,
                    module,
                    analysis.first_step_line(qualname, atom),
                    f"_evaluate of _assignment_pure atom {cls} must infer "
                    f"pure but has {atom} via {chain}",
                    hint=(
                        "family-wide memos replay this atom's result across "
                        "words; anything beyond the assigned values breaks "
                        "the sweep"
                    ),
                )

    def _structure_reads(
        self, codebase: Codebase, module, cls: str, info
    ) -> Iterator[Finding]:
        if not info.params:
            return
        structure = info.params[0]  # (self,) structure, assignment
        for node in ast.walk(info.node):
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id == structure
            ):
                yield self.finding(
                    codebase,
                    module,
                    node.lineno,
                    f"_assignment_pure atom {cls} reads the per-word "
                    f"structure parameter {structure!r} in _evaluate",
                    hint=(
                        "an assignment-pure atom's truth may depend only on "
                        "the assigned values — structure reads poison "
                        "family-wide memos (the _WordView.constant bug "
                        "class); gate the read behind _assignment_pure or "
                        "suppress with a reason"
                    ),
                )


class MemoKeyCompletenessChecker(Checker):
    name = "effects.memo-key-completeness"
    description = (
        "family-wide memo values may only depend on key-derived, "
        "memo-root, or module-constant state"
    )

    def check(
        self, codebase: Codebase, config: LintConfig
    ) -> Iterator[Finding]:
        analysis = analysis_for(codebase, config)
        graph = analysis.graph
        memo_modules = getattr(config, "memo_modules", ())
        for qualname in sorted(graph.functions):
            info = graph.functions[qualname]
            if info.module not in memo_modules:
                continue
            module = codebase.modules[info.module]
            yield from self._check_function(codebase, module, info)

    # -- one function ------------------------------------------------------

    def _check_function(
        self, codebase: Codebase, module, info
    ) -> Iterator[Finding]:
        nodes = list(ast.walk(info.node))
        gets = [
            node
            for node in nodes
            if isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Call)
            and isinstance(node.value.func, ast.Attribute)
            and node.value.func.attr in ("get", "pop")
            and node.value.args
        ]
        stores = [
            node
            for node in nodes
            if isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Subscript)
        ]
        for get in gets:
            memo_expr = get.value.func.value
            key_expr = get.value.args[0]
            memo_src = ast.unparse(memo_expr)
            key_src = ast.unparse(key_expr)
            store = next(
                (
                    s
                    for s in sorted(stores, key=lambda s: s.lineno)
                    if s.lineno > get.lineno
                    and ast.unparse(s.targets[0].value) == memo_src
                    and ast.unparse(s.targets[0].slice) == key_src
                ),
                None,
            )
            if store is None:
                continue
            if not self._self_rooted(info, get, memo_expr):
                # Only memos hanging off the family object are
                # *family-wide*; a plain-local working dict (e.g. a
                # backtracking frame) or a parameter may legitimately
                # cache per-call state.
                continue
            yield from self._check_region(
                codebase, module, info, get, store, memo_expr, key_expr,
                memo_src, key_src,
            )

    @staticmethod
    def _self_rooted(info, get, memo_expr) -> bool:
        """Is the memo a ``self`` attribute chain, or a one-hop alias?

        Accepts ``self._tables`` directly and ``states = self._states``
        followed by operations on ``states``.
        """
        if not info.self_name:
            return False

        def chain_base(expr):
            while isinstance(expr, (ast.Attribute, ast.Subscript)):
                expr = expr.value
            return expr

        base = chain_base(memo_expr)
        if not isinstance(base, ast.Name):
            return False
        if base.id == info.self_name:
            return base is not memo_expr  # a chain, not bare ``self``
        for node in ast.walk(info.node):
            if (
                isinstance(node, ast.Assign)
                and node.lineno <= get.lineno
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id == base.id
            ):
                value_base = chain_base(node.value)
                if (
                    isinstance(value_base, ast.Name)
                    and value_base.id == info.self_name
                    and value_base is not node.value
                ):
                    return True
        return False

    def _check_region(
        self, codebase, module, info, get, store,
        memo_expr, key_expr, memo_src, key_src,
    ) -> Iterator[Finding]:
        fn = info.node
        region = [
            node
            for node in ast.walk(fn)
            if hasattr(node, "lineno")
            and get.lineno < node.lineno <= store.lineno
        ]
        fn_locals = set(info.params)
        if info.self_name:
            fn_locals.add(info.self_name)
        for node in ast.walk(fn):
            if isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                fn_locals.add(node.id)

        def names_of(expr: ast.expr) -> set[str]:
            return {
                n.id for n in ast.walk(expr) if isinstance(n, ast.Name)
            }

        allowed = set(_BUILTIN_NAMES)
        allowed |= names_of(key_expr) | names_of(memo_expr)
        for default in get.value.args[1:]:
            allowed |= names_of(default)
        if info.self_name:
            allowed.add(info.self_name)
        for node in region:
            if isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                allowed.add(node.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.Lambda)):
                args = node.args
                for arg in args.posonlyargs + args.args + args.kwonlyargs:
                    allowed.add(arg.arg)
        # Single-name assignments before the get: unfold allowed names
        # backward (the key's inputs are key-derived) and derive forward
        # (locals computed purely from allowed names are allowed).
        pre_defs: list[tuple[str, set[str]]] = []
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Assign)
                and node.lineno <= get.lineno
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                pre_defs.append((node.targets[0].id, names_of(node.value)))
        changed = True
        while changed:
            changed = False
            for target, value_names in pre_defs:
                if target in allowed and not value_names <= allowed:
                    allowed |= value_names
                    changed = True
                elif target not in allowed and value_names and (
                    value_names <= allowed
                ):
                    allowed.add(target)
                    changed = True
        reported: set[str] = set()
        for node in sorted(
            (
                n
                for n in region
                if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
            ),
            key=lambda n: (n.lineno, n.col_offset),
        ):
            name = node.id
            if name in allowed or name in reported:
                continue
            if name not in fn_locals:
                continue  # module-scope constant/function/class
            reported.add(name)
            yield self.finding(
                codebase,
                module,
                node.lineno,
                f"memo {memo_src} stores a value that depends on {name!r}, "
                f"which is not derivable from the key {key_src}",
                hint=(
                    "widen the memo key, derive the value from key/"
                    "memo-root state only, or suppress with a reason "
                    "explaining why the dependency is word-independent"
                ),
            )


class WorkerIsolationChecker(Checker):
    name = "effects.worker-isolation"
    description = (
        "engine task closures may not assign module-level state outside "
        "the trusted counter modules, and may reach the artifact store "
        "only through the declared store modules"
    )

    def check(
        self, codebase: Codebase, config: LintConfig
    ) -> Iterator[Finding]:
        roots = self._task_roots(config)
        if not roots:
            return
        analysis = analysis_for(codebase, config)
        graph = analysis.graph
        parents: dict[str, str | None] = {}
        queue = [root for root in roots if root in graph.functions]
        for root in queue:
            parents.setdefault(root, None)
        while queue:
            current = queue.pop(0)
            for site in graph.scans[current].calls:
                for callee, _summary in analysis._callee_summary(site):
                    if callee not in parents:
                        parents[callee] = current
                        queue.append(callee)
        counters = set(getattr(config, "counter_modules", ()))
        stores = set(getattr(config, "store_modules", ()))
        for qualname in sorted(parents):
            info = graph.functions[qualname]
            if info.module in counters or info.module in stores:
                continue
            seeds = analysis.seeds.get(qualname, {})
            declared = graph.scans[qualname].declared
            if declared is not None and "store" in declared:
                # The store effect is a *channel*, not a suppression: a
                # worker may publish artifacts, but only by calling into
                # the store modules, whose declared summaries propagate
                # the atom on their own.  An inline pin outside them
                # would let arbitrary storage code masquerade as the
                # trusted channel.
                yield self.finding(
                    codebase,
                    codebase.modules[info.module],
                    info.line,
                    f"task-reachable function {info.name}() declares the "
                    f"store effect inline; only the store modules "
                    f"({', '.join(sorted(stores)) or 'none configured'}) "
                    f"may declare it",
                    hint=(
                        "route artifact reads/writes through "
                        "repro.store.runtime.load/publish — the channel's "
                        "declared summary propagates the store atom to "
                        "callers without a pin"
                    ),
                )
            if declared is not None and "mutates-global" not in declared:
                continue
            if "mutates-global" not in seeds and not (
                declared and "mutates-global" in declared
            ):
                continue
            line, detail = seeds.get(
                "mutates-global", (info.line, "declared mutates-global")
            )
            chain: list[str] = []
            step: str | None = qualname
            while step is not None:
                chain.append(analysis._short(step))
                step = parents.get(step)
            chain.reverse()
            yield self.finding(
                codebase,
                codebase.modules[info.module],
                line,
                f"task-reachable function {info.name}() assigns "
                f"module-level state ({detail}); reached via "
                f"{' → '.join(chain)}",
                hint=(
                    "forked workers throw this state away (or race on "
                    "it); keep task closures stateless, or route effort "
                    "through the counter modules"
                ),
            )

    @staticmethod
    def _task_roots(config: LintConfig) -> list[str]:
        roots = list(getattr(config, "task_roots", ()))
        if not roots and config.registry_builder:
            from repro.engine.spec import resolve_function

            builder = resolve_function(config.registry_builder)
            roots = builder().fn_paths()
        return sorted({root.replace(":", ".") for root in roots})
