"""Frozen-AST discipline for the syntax modules.

Formula and spanner nodes are used as dict keys, memo-table entries and
members of frozensets throughout the solver stack, and the engine's
cache keys hash their reprs.  That only works if every node class is an
immutable value: a ``@dataclass(frozen=True)`` whose fields are
hashable.  This rule checks, for every dataclass in the configured
syntax modules:

* the decorator says ``frozen=True``;
* no field is annotated with an unhashable container
  (``list``/``dict``/``set``/``bytearray`` — use ``tuple`` /
  ``frozenset`` / ``Mapping``-free value types instead).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.framework import Checker, Codebase, Finding, LintConfig

__all__ = ["FrozenAstChecker"]

_UNHASHABLE = {"list", "dict", "set", "bytearray", "List", "Dict", "Set"}


def _annotation_unhashable(annotation: str) -> bool:
    """True when the field annotation names an unhashable container."""
    try:
        tree = ast.parse(annotation, mode="eval").body
    except SyntaxError:
        return False
    # Unwrap Optional[...] / unions: any unhashable member poisons the type.
    candidates = [tree]
    while candidates:
        node = candidates.pop()
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            candidates.extend([node.left, node.right])
        elif isinstance(node, ast.Subscript):
            value = node.value
            if isinstance(value, ast.Name) and value.id in {
                "Optional",
                "Union",
            }:
                candidates.append(node.slice)
            elif isinstance(value, ast.Name) and value.id in _UNHASHABLE:
                return True
        elif isinstance(node, ast.Tuple):
            candidates.extend(node.elts)
        elif isinstance(node, ast.Name) and node.id in _UNHASHABLE:
            return True
    return False


class FrozenAstChecker(Checker):
    name = "frozen-ast"
    description = (
        "syntax-module dataclasses must be frozen=True with hashable "
        "field types"
    )

    def check(
        self, codebase: Codebase, config: LintConfig
    ) -> Iterator[Finding]:
        syntax_modules = set(config.syntax_modules)
        for qualname in sorted(codebase.classes()):
            info = codebase.classes()[qualname]
            if info.module not in syntax_modules or not info.is_dataclass:
                continue
            module = codebase.modules[info.module]
            if not info.frozen:
                yield self.finding(
                    codebase,
                    module,
                    info.line,
                    f"AST node {info.name} is a dataclass without "
                    "frozen=True",
                    hint="@dataclass(frozen=True) keeps nodes hashable "
                    "value objects",
                )
            for field_name, annotation, line in info.fields:
                if _annotation_unhashable(annotation):
                    yield self.finding(
                        codebase,
                        module,
                        line,
                        f"AST node {info.name}.{field_name} is annotated "
                        f"with unhashable type {annotation!r}",
                        hint="use tuple/frozenset so the node stays "
                        "hashable",
                    )
