"""Dispatch-exhaustiveness: every ``isinstance`` chain over a node
hierarchy must handle every concrete node class or end in a catch-all.

The ASTs of FC, FO[EQ], the spanner algebra and regex formulas are
closed sums dispatched by ``isinstance`` chains (``fc.semantics.evaluate``
is the archetype).  Adding a node class without extending every dispatch
site produces *silent* misbehaviour — a fall-through ``None``/no-yield —
unless the site ends in a catch-all (an ``else`` branch, statements after
the chain, or a trailing ``raise``).  This rule finds chains that test
two or more classes of one hierarchy and neither cover all concrete
classes of that hierarchy nor have a catch-all tail.

Concrete classes are the leaf subclasses declared in the hierarchy's
home module; subclasses declared elsewhere (e.g. the FC[REG] constraint
atoms) are protocol-based extension points, not required arms.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from repro.analysis.framework import (
    Checker,
    Codebase,
    Finding,
    LintConfig,
    SourceModule,
)

__all__ = ["DispatchExhaustivenessChecker"]


@dataclass
class _Chain:
    """One maximal run of consecutive ``isinstance`` tests on a subject."""

    subject: str  # ast.dump of the tested expression
    line: int
    tested: list[ast.expr]  # class references from every arm
    has_catchall: bool  # else-branch, opaque elif, or trailing statements


def _isinstance_parts(test: ast.expr) -> tuple[str, list[ast.expr]] | None:
    """(subject dump, class refs) for an ``isinstance(subj, C)`` test."""
    if not (
        isinstance(test, ast.Call)
        and isinstance(test.func, ast.Name)
        and test.func.id == "isinstance"
        and len(test.args) == 2
        and not test.keywords
    ):
        return None
    subject, classes = test.args
    refs = (
        list(classes.elts) if isinstance(classes, ast.Tuple) else [classes]
    )
    return ast.dump(subject), refs


def _iter_chains(block: list[ast.stmt]) -> Iterator[_Chain]:
    """Maximal runs of consecutive isinstance-``if`` statements."""
    current: _Chain | None = None
    for statement in block:
        unit = (
            _parse_if_unit(statement)
            if isinstance(statement, ast.If)
            else None
        )
        if unit is None:
            if current is not None:
                current.has_catchall = True  # non-if statement after chain
                yield current
                current = None
            continue
        subject, refs, catchall, line = unit
        if current is not None and current.subject != subject:
            current.has_catchall = True  # the next if-statement is a tail
            yield current
            current = None
        if current is None:
            current = _Chain(subject, line, [], False)
        current.tested.extend(refs)
        if catchall:
            current.has_catchall = True
            yield current
            current = None
    if current is not None:
        yield current


def _parse_if_unit(
    node: ast.If,
) -> tuple[str, list[ast.expr], bool, int] | None:
    """Digest one if/elif/else statement testing a single subject.

    Returns ``(subject, class refs, has_catchall, line)`` or ``None`` when
    the leading test is not an ``isinstance`` call.  A non-isinstance
    ``elif`` makes the unit opaque, which is treated as a catch-all
    (conservative: no finding for mixed-condition chains).
    """
    parts = _isinstance_parts(node.test)
    if parts is None:
        return None
    subject, refs = parts
    line = node.lineno
    orelse = node.orelse
    while len(orelse) == 1 and isinstance(orelse[0], ast.If):
        tail = _isinstance_parts(orelse[0].test)
        if tail is None or tail[0] != subject:
            return subject, refs, True, line
        refs = refs + tail[1]
        orelse = orelse[0].orelse
    return subject, refs, bool(orelse), line


def _iter_blocks(fn: ast.FunctionDef) -> Iterator[list[ast.stmt]]:
    """Every statement list of ``fn``, without descending into nested
    functions (those are visited as functions in their own right) and
    without re-visiting ``elif`` continuations as separate blocks."""
    stack: list[list[ast.stmt]] = [fn.body]
    while stack:
        block = stack.pop()
        yield block
        for statement in block:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(statement, ast.If):
                stack.append(statement.body)
                orelse = statement.orelse
                while len(orelse) == 1 and isinstance(orelse[0], ast.If):
                    stack.append(orelse[0].body)
                    orelse = orelse[0].orelse
                if orelse:
                    stack.append(orelse)
            elif isinstance(statement, (ast.For, ast.AsyncFor, ast.While)):
                stack.append(statement.body)
                if statement.orelse:
                    stack.append(statement.orelse)
            elif isinstance(statement, (ast.With, ast.AsyncWith)):
                stack.append(statement.body)
            elif isinstance(statement, ast.Try):
                stack.append(statement.body)
                for handler in statement.handlers:
                    stack.append(handler.body)
                if statement.orelse:
                    stack.append(statement.orelse)
                if statement.finalbody:
                    stack.append(statement.finalbody)


class DispatchExhaustivenessChecker(Checker):
    name = "dispatch-exhaustiveness"
    description = (
        "isinstance-chain dispatch over a node hierarchy must handle every "
        "concrete node class or end in a catch-all"
    )

    def check(
        self, codebase: Codebase, config: LintConfig
    ) -> Iterator[Finding]:
        hierarchies = {
            root: {
                "members": codebase.subclasses(root) | {root},
                "required": codebase.concrete_subclasses(root, home),
            }
            for root, home in sorted(config.hierarchies.items())
        }
        for module in codebase.iter_modules(config.dispatch_prefixes):
            for node in ast.walk(module.tree):
                if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                for block in _iter_blocks(node):
                    for chain in _iter_chains(block):
                        yield from self._check_chain(
                            codebase, module, node, chain, hierarchies
                        )

    def _check_chain(
        self,
        codebase: Codebase,
        module: SourceModule,
        fn: ast.FunctionDef,
        chain: _Chain,
        hierarchies: dict[str, dict[str, set[str]]],
    ) -> Iterator[Finding]:
        if chain.has_catchall:
            return
        resolved = set()
        for ref in chain.tested:
            name = codebase.resolve_name(module, ref)
            if name is not None:
                resolved.add(name)
        # The chain belongs to the hierarchy it tests the most classes of.
        best_root, best_overlap = None, set()
        for root, data in hierarchies.items():
            overlap = resolved & data["members"]
            if len(overlap) > len(best_overlap):
                best_root, best_overlap = root, overlap
        if best_root is None or len(best_overlap) < 2:
            return
        handled: set[str] = set()
        for name in best_overlap:
            handled.add(name)
            handled.update(codebase.subclasses(name))
        missing = hierarchies[best_root]["required"] - handled
        if missing:
            short = ", ".join(sorted(n.rsplit(".", 1)[1] for n in missing))
            root_name = best_root.rsplit(".", 1)[1]
            yield self.finding(
                codebase,
                module,
                chain.line,
                f"dispatch over {root_name} in {fn.name}() misses concrete "
                f"node(s) {short} and has no catch-all",
                hint=(
                    "add the missing isinstance arm(s), or end the chain "
                    "with an else/raise catch-all"
                ),
            )
