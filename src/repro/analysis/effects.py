"""Fixed-point effect inference over the project call graph.

Every function in the analysed package gets a *summary*: a set of
effect atoms drawn from a finite lattice ordered by set inclusion.
``pure`` is the empty set; ``unknown`` is the practical top (a dynamic
call we cannot resolve could do anything).  The atoms:

========================  ====================================================
``io``                    filesystem / process / stdout interaction
``mutates-arg``           assigns into state reachable from a parameter
``mutates-self``          assigns into state reachable from ``self``
``mutates-global``        assigns module-level bindings
``reads-global-mutable``  reads a module-level container some function writes
``nondeterministic``      wall clock, randomness, environment, ``id()``
``counter``               writes process-wide effort counters (trusted)
``store``                 reads/publishes persistent artifacts (trusted)
``unknown``               an unresolvable dynamic call — anything possible
========================  ====================================================

Inference is a classic monotone fixed point: each function is seeded
with the atoms of its own statements (:mod:`repro.analysis.callgraph`
supplies stores, global reads, and call sites with receiver roots),
then call edges propagate callee summaries into callers.  At an edge,
``mutates-self`` is *translated*: it stays ``mutates-self`` when the
receiver is ``self``, becomes ``mutates-arg`` through a parameter
receiver, ``mutates-global`` through a module-level receiver, and is
absorbed entirely by constructor calls and fresh locals (mutating an
object you just built is pure from the outside).  ``mutates-arg`` is
tracked *per parameter* — the inferred atom is ``mutates-arg:<name>``
— so translation follows exactly the argument bound to the mutated
parameter; a caller passing a fresh accumulator list absorbs the
effect instead of inheriting it.

Functions in the configured *counter modules* (``repro.kernel.stats``,
``repro.cachestats``) carry the declared summary ``{counter}`` — effort
accounting is exempt by design.  Functions in the *store modules*
(``repro.store.runtime`` and friends) likewise carry ``{store}``: the
artifact store is a content-addressed hydration channel whose hits are
bit-identical to the cold computation, so reaching it through the
declared channel is as benign as a counter bump — while reaching
storage *around* the channel still infers ``io``/``unknown`` and is
flagged.  A ``# repro-lint: effects[pure]`` comment on a ``def`` pins a
summary where inference is too weak (document the reason next to it).

Every (function, atom) pair records *provenance* — the call edge or the
local statement that introduced the atom — so rules can render a
witness chain from the flagged site down to the offending statement.
"""

from __future__ import annotations

from repro.analysis.callgraph import CallGraph, CallSite, FunctionScan
from repro.analysis.framework import Codebase, LintConfig

__all__ = ["ATOMS", "EffectAnalysis", "analysis_for", "atom_family"]

#: Lattice atoms in canonical (report) order.
ATOMS = (
    "counter",
    "io",
    "mutates-arg",
    "mutates-global",
    "mutates-self",
    "nondeterministic",
    "reads-global-mutable",
    "store",
    "unknown",
)

_PURE_BUILTINS = frozenset({
    "abs", "all", "any", "ascii", "bin", "bool", "bytes", "callable", "chr",
    "complex", "dict", "dir", "divmod", "enumerate", "filter", "float",
    "format", "frozenset", "getattr", "hasattr", "hash", "hex", "int",
    "isinstance", "issubclass", "iter", "len", "list", "map", "max",
    "memoryview", "min", "next", "object", "oct", "ord", "pow", "range",
    "repr", "reversed", "round", "set", "slice", "sorted", "str", "sum",
    "super", "tuple", "type", "vars", "zip",
    # Exception constructors (``raise ValueError(...)``).
    "ArithmeticError", "AssertionError", "AttributeError", "BaseException",
    "Exception", "FileNotFoundError", "IndexError", "KeyError",
    "KeyboardInterrupt", "LookupError", "NameError", "NotImplementedError",
    "OSError", "OverflowError", "RecursionError", "RuntimeError",
    "StopIteration", "SystemExit", "TypeError", "ValueError",
    "ZeroDivisionError",
})

_IO_BUILTINS = frozenset({"open", "print", "input", "breakpoint",
                          "__import__"})
_NONDET_BUILTINS = frozenset({"id"})

#: setattr-family externals mutate their first argument.
_SETATTR_FAMILY = frozenset({
    "setattr", "delattr", "object.__setattr__", "object.__delattr__",
})

_PURE_EXTERNAL_HEADS = frozenset({
    "abc", "argparse", "array", "ast", "bisect", "collections", "copy",
    "dataclasses", "decimal", "enum", "fractions", "functools", "hashlib",
    "heapq", "itertools", "json", "math", "numbers", "operator", "re",
    "statistics", "string", "struct", "textwrap", "traceback", "typing",
    "unicodedata",
})

_IO_HEADS = frozenset({
    "atexit", "importlib", "io", "logging", "multiprocessing", "pathlib",
    "shutil", "socket", "subprocess", "sys", "tempfile", "threading",
    "warnings",
})

_NONDET_HEADS = frozenset({"random", "secrets"})

_CLOCKISH = frozenset({
    "time", "time_ns", "ctime", "localtime", "gmtime", "now", "utcnow",
    "today", "perf_counter", "perf_counter_ns", "monotonic", "monotonic_ns",
})

_MUTATING_METHODS = frozenset({
    "add", "append", "appendleft", "cache_clear", "clear", "discard",
    "difference_update", "extend", "insert", "intersection_update", "pop",
    "popitem", "popleft", "remove", "reverse", "setdefault", "sort",
    "symmetric_difference_update", "update", "write", "writelines",
    "__setitem__", "__delitem__",
})

_PURE_METHODS = frozenset({
    # str
    "capitalize", "casefold", "center", "count", "decode", "encode",
    "endswith", "expandtabs", "find", "format", "format_map", "index",
    "isalnum", "isalpha", "isascii", "isdecimal", "isdigit", "isidentifier",
    "islower", "isnumeric", "isprintable", "isspace", "istitle", "isupper",
    "join", "ljust", "lower", "lstrip", "maketrans", "partition",
    "removeprefix", "removesuffix", "replace", "rfind", "rindex", "rjust",
    "rpartition", "rsplit", "rstrip", "split", "splitlines", "startswith",
    "strip", "swapcase", "title", "translate", "upper", "zfill",
    # container reads
    "copy", "difference", "get", "intersection", "isdisjoint", "issubset",
    "issuperset", "items", "keys", "symmetric_difference", "union", "values",
    # misc read-only
    "as_integer_ratio", "bit_length", "cache_info", "digest", "hex",
    "hexdigest", "to_bytes", "__contains__", "__len__",
})


def _classify_external(dotted: str, package: str) -> frozenset[str]:
    """Effect atoms of a call out of the analysed package."""
    parts = dotted.split(".")
    head, last = parts[0], parts[-1]
    if "." not in dotted:  # bare builtin
        if dotted in _PURE_BUILTINS:
            return frozenset()
        if dotted in _IO_BUILTINS:
            return frozenset({"io"})
        if dotted in _NONDET_BUILTINS:
            return frozenset({"nondeterministic"})
        return frozenset({"unknown"})
    if dotted in _SETATTR_FAMILY:
        return frozenset({"mutates-self"})  # translated via the receiver
    if dotted in ("os.urandom", "os.getenv", "os.environ"):
        return frozenset({"nondeterministic"})
    if head in _NONDET_HEADS:
        return frozenset({"nondeterministic"})
    if head == "uuid" and last in ("uuid1", "uuid4"):
        return frozenset({"nondeterministic"})
    if head in ("time", "datetime", "date") and last in _CLOCKISH:
        return frozenset({"nondeterministic"})
    if head == "os":
        return frozenset({"io"})
    if head in _IO_HEADS:
        return frozenset({"io"})
    if head in _PURE_EXTERNAL_HEADS:
        return frozenset()
    if head == package or head == "builtins":
        # An internal dotted name the graph could not resolve.
        return frozenset({"unknown"})
    return frozenset({"unknown"})


def _mutation_atoms(root: str | None, constructor: bool) -> frozenset[str]:
    """What mutating *this receiver* means from the caller's viewpoint.

    Parameter receivers yield the *indexed* atom ``mutates-arg:<name>``
    so a call edge can translate precisely: a caller passing a fresh
    list into the mutated parameter absorbs the effect instead of
    inheriting a blanket ``mutates-arg``.
    """
    if constructor or root is None or root in ("fresh", "local"):
        return frozenset()
    if root == "self":
        return frozenset({"mutates-self"})
    if root.startswith("param:"):
        return frozenset({"mutates-arg:" + root[len("param:"):]})
    if root.startswith(("global:", "class:", "func:", "module:")):
        return frozenset({"mutates-global"})
    if root.startswith("external:"):
        return frozenset({"io"})
    return frozenset({"unknown"})


def atom_family(atom: str) -> str:
    """Collapse an indexed atom (``mutates-arg:flat``) to its family."""
    return atom.partition(":")[0]


class EffectAnalysis:
    """Summaries + provenance for every function of a codebase."""

    def __init__(self, codebase: Codebase, config: LintConfig) -> None:
        self.codebase = codebase
        self.config = config
        self.graph = CallGraph(codebase)
        #: qualname → effect atoms (empty set = pure)
        self.summaries: dict[str, frozenset[str]] = {}
        #: qualname → {atom → (line, detail)} for *locally* seeded atoms
        self.seeds: dict[str, dict[str, tuple[int, str]]] = {}
        #: (qualname, atom) → ("seed", line, detail)
        #:                  | ("call", line, callee qualname, callee atom)
        self.provenance: dict[tuple[str, str], tuple] = {}
        self._declared: dict[str, frozenset[str]] = {}
        self._solve()

    # -- inference ---------------------------------------------------------

    def _declared_summary(self, qualname: str) -> frozenset[str] | None:
        cached = self._declared.get(qualname)
        if cached is not None:
            return cached
        scan = self.graph.scans[qualname]
        if scan.declared is not None:
            self._declared[qualname] = scan.declared
            return scan.declared
        module = self.graph.functions[qualname].module
        counters = getattr(self.config, "counter_modules", ())
        if module in counters:
            declared = frozenset({"counter"})
            self._declared[qualname] = declared
            return declared
        stores = getattr(self.config, "store_modules", ())
        if module in stores:
            declared = frozenset({"store"})
            self._declared[qualname] = declared
            return declared
        return None

    def _seed(self, qualname: str) -> dict[str, tuple[int, str]]:
        scan = self.graph.scans[qualname]
        seeds: dict[str, tuple[int, str]] = {}

        def put(atom: str, line: int, detail: str) -> None:
            if atom not in seeds:
                seeds[atom] = (line, detail)

        for store in scan.stores:
            for atom in sorted(_mutation_atoms(store.root, False)):
                put(atom, store.line, f"assigns {store.detail}")
        for read in scan.global_reads:
            if self.graph.data_bindings.get(read.dotted) and (
                read.dotted in self.graph.mutated_globals
            ):
                put(
                    "reads-global-mutable", read.line,
                    f"reads mutated module-level {read.dotted}",
                )
        for site in scan.calls:
            for atom in sorted(self._local_call_atoms(site)):
                put(atom, site.line, f"calls {site.display}")
        return seeds

    def _local_call_atoms(self, site: CallSite) -> frozenset[str]:
        """Atoms a call site contributes *without* a resolved target."""
        if site.target is not None:
            return frozenset()  # handled by propagation
        if site.external is not None:
            atoms = _classify_external(site.external, self.config.package)
            if "mutates-self" in atoms:  # setattr family
                return _mutation_atoms(site.receiver, False)
            return atoms
        if site.method is not None:
            if site.method in _PURE_METHODS:
                return frozenset()
            if site.method in _MUTATING_METHODS:
                return _mutation_atoms(site.receiver, False)
            return frozenset({"unknown"})
        return frozenset({"unknown"})

    def _callee_summary(self, site: CallSite) -> list[tuple[str, frozenset[str]]]:
        """(callee qualname, summary) pairs a resolved site depends on."""
        target = site.target
        if target is None:
            return []
        if target in self.graph.functions:
            return [(target, self.summaries.get(target, frozenset()))]
        if site.constructor:
            out = []
            for ctor in ("__init__", "__post_init__"):
                fn = self.graph.resolve_method(target, ctor)
                if fn is not None:
                    out.append((fn, self.summaries.get(fn, frozenset())))
            return out
        return []

    def _solve(self) -> None:
        order = sorted(self.graph.scans)
        for qualname in order:
            declared = self._declared_summary(qualname)
            if declared is not None:
                self.summaries[qualname] = declared
                self.seeds[qualname] = {}
                continue
            seeds = self._seed(qualname)
            self.seeds[qualname] = seeds
            self.summaries[qualname] = frozenset(seeds)
            for atom, (line, detail) in seeds.items():
                self.provenance[(qualname, atom)] = ("seed", line, detail)
        changed = True
        while changed:
            changed = False
            for qualname in order:
                if self._declared_summary(qualname) is not None:
                    continue
                current = self.summaries[qualname]
                grown = set(current)
                scan = self.graph.scans[qualname]
                for site in scan.calls:
                    for callee, summary in self._callee_summary(site):
                        for callee_atom in sorted(summary):
                            translated = self._translate(
                                callee_atom, site, callee
                            )
                            for atom in sorted(translated):
                                if atom not in grown:
                                    grown.add(atom)
                                    self.provenance[(qualname, atom)] = (
                                        "call", site.line, callee, callee_atom,
                                    )
                if len(grown) != len(current):
                    self.summaries[qualname] = frozenset(grown)
                    changed = True

    def _translate(
        self, atom: str, site: CallSite, callee: str
    ) -> frozenset[str]:
        """A callee atom seen from the caller, through one call edge."""
        if atom == "mutates-self":
            return _mutation_atoms(site.receiver, site.constructor)
        if atom.startswith("mutates-arg"):
            root = self._argument_root(atom, site, callee)
            if root is not None:
                return _mutation_atoms(root, False)
            # Unindexed atom (a declared summary) or an unmatched
            # parameter (*args forwarding): union over every argument.
            out: set[str] = set()
            for arg_root in site.arg_roots:
                out |= _mutation_atoms(arg_root, False)
            for _, kw_root in site.kw_roots:
                out |= _mutation_atoms(kw_root, False)
            return frozenset(out)
        return frozenset({atom})

    def _argument_root(
        self, atom: str, site: CallSite, callee: str
    ) -> str | None:
        """The caller-side root bound to the mutated callee parameter."""
        _, _, param = atom.partition(":")
        if not param:
            return None
        info = self.graph.functions.get(callee)
        if info is None or param not in info.params:
            return None
        for keyword, root in site.kw_roots:
            if keyword == param:
                return root
        index = info.params.index(param)
        if index < len(site.arg_roots):
            return site.arg_roots[index]
        # Not passed at all — the callee mutates its default value.
        return "fresh"

    # -- reporting ---------------------------------------------------------

    def summary(self, qualname: str) -> frozenset[str] | None:
        return self.summaries.get(qualname)

    def _short(self, qualname: str) -> str:
        prefix = self.config.package + "."
        return qualname[len(prefix):] if qualname.startswith(prefix) else (
            qualname
        )

    def location(self, qualname: str, line: int | None = None) -> str:
        info = self.graph.functions[qualname]
        module = self.codebase.modules[info.module]
        return f"{self.codebase.relpath(module)}:{line or info.line}"

    def explain(self, qualname: str, atom: str) -> list[str]:
        """The witness chain from ``qualname`` down to the local seed."""
        steps: list[str] = []
        current, current_atom = qualname, atom
        for _ in range(24):  # chains are acyclic; this is a safety bound
            record = self.provenance.get((current, current_atom))
            if record is None:
                steps.append(f"{self._short(current)} [{current_atom}]")
                break
            if record[0] == "seed":
                _, line, detail = record
                steps.append(
                    f"{self._short(current)} {detail} "
                    f"({self.location(current, line)})"
                )
                break
            _, line, callee, callee_atom = record
            steps.append(
                f"{self._short(current)} → {self._short(callee)} "
                f"({self.location(current, line)})"
            )
            current, current_atom = callee, callee_atom
        return steps

    def first_step_line(self, qualname: str, atom: str) -> int:
        """The line *inside* ``qualname`` that introduces ``atom``."""
        record = self.provenance.get((qualname, atom))
        if record is None:
            return self.graph.functions[qualname].line
        return record[1] if record[0] == "seed" else record[1]

    def summary_payload(self) -> dict:
        """A sorted JSON-able dump of every inferred summary."""
        functions = []
        totals = {atom: 0 for atom in ATOMS}
        pure = 0
        for qualname in sorted(self.summaries):
            atoms = sorted(self.summaries[qualname])
            info = self.graph.functions[qualname]
            functions.append({
                "function": qualname,
                "module": info.module,
                "line": info.line,
                "effects": atoms,
                "pure": not atoms,
            })
            if not atoms:
                pure += 1
            for family in sorted({atom_family(atom) for atom in atoms}):
                totals[family] += 1
        return {
            "atoms": list(ATOMS),
            "functions": functions,
            "totals": {
                "functions": len(functions),
                "pure": pure,
                **{atom: totals[atom] for atom in ATOMS},
            },
        }


def analysis_for(codebase: Codebase, config: LintConfig) -> EffectAnalysis:
    """One shared :class:`EffectAnalysis` per (codebase, config) pair.

    The four ``effects.*`` rules all consume the same summaries; caching
    on the codebase object keeps ``python -m repro lint`` to one
    call-graph construction and one fixed point.
    """
    cached = getattr(codebase, "_effects_analysis", None)
    if cached is not None and cached.config is config:
        return cached
    analysis = EffectAnalysis(codebase, config)
    codebase._effects_analysis = analysis
    return analysis
