"""The four ``domains.*`` rules over the id-domain flow analysis.

Each rule reports one event kind recorded by
:class:`repro.analysis.domains.DomainAnalysis`:

* ``domains.no-cross-mix`` — ids from different domains compared,
  unioned, passed where another domain is declared, or used to index a
  container declared over another id space (plus malformed pins, so a
  typo'd declaration cannot silently disable itself);
* ``domains.bitset-universe`` — bitset and/or/xor/contains between
  masks minted over different intern tables;
* ``domains.universe-escape`` — ids witnessed out of an unrestricted
  ``bitset-pool`` candidate mask without first intersecting with the
  word's ``bitset-universe`` member mask (the PR-4 sweep bug class);
* ``domains.slot-discipline`` — a container declared
  ``map[slot, ...]`` subscripted with anything but a slot id.

Deliberate violations carry the standard suppression comment, e.g.
``# repro-lint: allow[domains.slot-discipline] reason``.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.domains import domains_for
from repro.analysis.framework import Checker, Codebase, Finding, LintConfig

__all__ = [
    "DomainsBitsetUniverseChecker",
    "DomainsNoCrossMixChecker",
    "DomainsSlotDisciplineChecker",
    "DomainsUniverseEscapeChecker",
]


class _DomainsChecker(Checker):
    """Shared plumbing: replay one event kind as findings."""

    kind = ""
    hint = ""

    def check(
        self, codebase: Codebase, config: LintConfig
    ) -> Iterator[Finding]:
        analysis = domains_for(codebase, config)
        scope = config.domain_modules or (config.package,)
        for qualname in sorted(analysis.events):
            info = analysis.graph.functions[qualname]
            if not any(
                info.module == prefix or info.module.startswith(prefix + ".")
                for prefix in scope
            ):
                continue
            module = codebase.modules[info.module]
            for event in analysis.events[qualname]:
                if event.kind != self.kind:
                    continue
                yield self.finding(
                    codebase,
                    module,
                    event.line,
                    f"{qualname} {event.message}",
                    hint=self.hint,
                )


class DomainsNoCrossMixChecker(_DomainsChecker):
    name = "domains.no-cross-mix"
    description = (
        "ids from different id domains may not be compared, unioned, "
        "stored over each other, or used to index another domain's "
        "tables without a declared translation"
    )
    kind = "mix"
    hint = (
        "translate explicitly through a pinned producer "
        "(# repro-lint: domain[returns=...]) or suppress a deliberate "
        "reinterpretation with # repro-lint: allow[domains.no-cross-mix]"
    )

    def check(
        self, codebase: Codebase, config: LintConfig
    ) -> Iterator[Finding]:
        analysis = domains_for(codebase, config)
        for module_name, line, text in analysis.pin_errors:
            yield self.finding(
                codebase,
                codebase.modules[module_name],
                line,
                f"malformed domain pin {text!r}",
                hint=(
                    "pin grammar: domain[returns=<spec>, <param>=<spec>] on "
                    "a def, domain[<spec>] on an assignment; specs are "
                    "plain | interval | slot | shard-lane | dfa-state | "
                    "intern:<role> | bitset-universe:<role> | "
                    "bitset-pool:<role> | iter[<spec>] | map[<spec>, <spec>]"
                ),
            )
        yield from super().check(codebase, config)


class DomainsBitsetUniverseChecker(_DomainsChecker):
    name = "domains.bitset-universe"
    description = (
        "bitset and/or/xor/contains are only defined between masks "
        "minted over the same intern table"
    )
    kind = "bitset"
    hint = (
        "masks carry their minting table's role; rebuild one side over "
        "the shared table (kernel.bitset.declare_universe / from_ids) "
        "instead of mixing id spaces"
    )


class DomainsUniverseEscapeChecker(_DomainsChecker):
    name = "domains.universe-escape"
    description = (
        "quantifier-scan and pool candidates must be intersected with "
        "the word's member mask before any id is witnessed"
    )
    kind = "escape"
    hint = (
        "apply `pool & table.mask` (bitset-pool & bitset-universe -> "
        "bitset-universe) before iter_ids — unrestricted pools may "
        "contain ids that are not factors of the current word"
    )


class DomainsSlotDisciplineChecker(_DomainsChecker):
    name = "domains.slot-discipline"
    description = (
        "relation tuples and environments are indexed only through "
        "declared slot maps"
    )
    kind = "slot"
    hint = (
        "derive the index from a pinned slot producer (e.g. "
        "SweepProgram._slot) or pin the decoding site with "
        "# repro-lint: allow[domains.slot-discipline] and a reason"
    )
