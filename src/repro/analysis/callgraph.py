"""Project-wide call-graph construction over the :class:`Codebase` index.

The effect analyzer (:mod:`repro.analysis.effects`) needs three things a
per-module AST walk cannot give it: *who calls whom* across module
boundaries, *what object a mutation lands on* (the receiver of an
``x.append(...)`` may be a fresh local, a parameter, ``self``-reachable
state, or a module global — only the last three are effects), and *which
module-level bindings are ever mutated* (reading a constant table is
pure; reading a dict some other function writes is not).  This module
answers all three with a purely syntactic pass:

* every top-level function and method gets a :class:`FunctionInfo`;
* each body is scanned once into a :class:`FunctionScan`: call sites
  with resolved targets where the receiver's type can be inferred
  (annotated dataclass fields, ``__init__`` assignments from annotated
  parameters or constructor calls, local aliases), store sites and
  module-global reads, each tagged with a *root* describing where the
  object came from;
* nested functions and lambdas are absorbed into their enclosing
  function — their statements contribute to the outer scan, and their
  parameters become plain locals.

Roots form a tiny grammar (see :data:`ROOT_KINDS`): ``self``,
``param:<name>``, ``local``, ``fresh`` (constructed here),
``global:<dotted>`` / ``class:<dotted>`` / ``func:<dotted>`` /
``module:<dotted>`` (module-scope bindings), ``external:<dotted>``
(stdlib / builtin), and ``unknown``.  Resolution is best-effort and
deterministic; anything dynamic degrades to ``unknown`` and the effect
lattice treats it as its top element.
"""

from __future__ import annotations

import ast
import builtins
import re
from dataclasses import dataclass, field, replace

from repro.analysis.framework import Codebase, SourceModule

__all__ = [
    "CallGraph",
    "CallSite",
    "FunctionInfo",
    "FunctionScan",
    "GlobalRead",
    "ROOT_KINDS",
    "StoreSite",
]

#: The root grammar for receivers/targets, documented for rule authors.
ROOT_KINDS = (
    "self", "param:", "local", "fresh", "global:", "class:", "func:",
    "module:", "external:", "unknown",
)

_BUILTIN_NAMES = frozenset(dir(builtins))

#: ``# repro-lint: effects[pure] reason`` on (or above) a ``def`` pins
#: the function's summary, bypassing inference (trusted declaration).
_DECLARED_RE = re.compile(r"repro-lint:\s*effects\[([^\]]*)\]")

#: Constructors whose module-level results are mutable containers.
_MUTABLE_CALLS = frozenset({
    "list", "dict", "set", "bytearray", "deque", "defaultdict",
    "Counter", "OrderedDict",
})


@dataclass(frozen=True)
class FunctionInfo:
    """One analysed function or method."""

    qualname: str  # "repro.fc.sweep.SweepProgram._eval"
    module: str
    cls: str | None  # owning class qualname, None for module functions
    name: str
    line: int
    params: tuple[str, ...]
    self_name: str | None  # first parameter for bound methods
    node: ast.FunctionDef | ast.AsyncFunctionDef = field(repr=False)


@dataclass(frozen=True)
class CallSite:
    """One call expression, with best-effort resolution."""

    line: int
    col: int
    target: str | None = None  # qualname of a codebase function/class
    external: str | None = None  # dotted stdlib/builtin name
    method: str | None = None  # attribute name for unresolved method calls
    receiver: str | None = None  # root of the receiver object, if any
    constructor: bool = False
    display: str = ""  # short source-ish text for messages
    arg_roots: tuple[str, ...] = ()  # roots of positional arguments
    kw_roots: tuple[tuple[str, str], ...] = ()  # (keyword, root) pairs


@dataclass(frozen=True)
class StoreSite:
    """One assignment/deletion whose target is not a plain local."""

    line: int
    root: str
    detail: str


@dataclass(frozen=True)
class GlobalRead:
    """A read of a module-level data binding."""

    line: int
    dotted: str


@dataclass(frozen=True)
class FunctionScan:
    """Everything the effect pass needs to know about one body."""

    qualname: str
    calls: tuple[CallSite, ...]
    stores: tuple[StoreSite, ...]
    global_reads: tuple[GlobalRead, ...]
    declared: frozenset[str] | None  # pinned summary, or None to infer


def _unparse_short(node: ast.AST, limit: int = 48) -> str:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover — unparse is total on 3.10+
        text = "<expr>"
    return text if len(text) <= limit else text[: limit - 1] + "…"


def _is_staticmethod(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for decorator in node.decorator_list:
        if isinstance(decorator, ast.Name) and decorator.id == "staticmethod":
            return True
    return False


def _param_names(args: ast.arguments) -> tuple[str, ...]:
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return tuple(names)


def _mutable_module_value(node: ast.expr) -> bool:
    """Is a module-level binding's value a mutable container?"""
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        target = node.func
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        return name in _MUTABLE_CALLS
    return False


class CallGraph:
    """The project-wide function index plus per-function scans."""

    def __init__(self, codebase: Codebase) -> None:
        self.codebase = codebase
        self.functions: dict[str, FunctionInfo] = {}
        #: class qualname → {method name → function qualname}
        self.class_methods: dict[str, dict[str, str]] = {}
        #: class qualname → {attribute → class qualname}
        self.attr_types: dict[str, dict[str, str]] = {}
        #: dotted module-level data binding → value-is-mutable
        self.data_bindings: dict[str, bool] = {}
        self.scans: dict[str, FunctionScan] = {}
        #: dotted data bindings some function stores into
        self.mutated_globals: set[str] = set()
        self._collect()
        self._infer_attr_types()
        for qualname in sorted(self.functions):
            self.scans[qualname] = _Scanner(
                self, self.functions[qualname]
            ).scan()
        for scan in self.scans.values():
            for store in scan.stores:
                if store.root.startswith("global:"):
                    self.mutated_globals.add(store.root[len("global:"):])

    # -- index construction ------------------------------------------------

    def _collect(self) -> None:
        for module in self.codebase.iter_modules():
            for statement in module.tree.body:
                if isinstance(
                    statement, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    self._register(module, statement, cls=None)
                elif isinstance(statement, ast.ClassDef):
                    cls = f"{module.name}.{statement.name}"
                    for child in statement.body:
                        if isinstance(
                            child, (ast.FunctionDef, ast.AsyncFunctionDef)
                        ):
                            self._register(module, child, cls=cls)
                elif isinstance(statement, ast.Assign):
                    for target in statement.targets:
                        if isinstance(target, ast.Name):
                            self.data_bindings[
                                f"{module.name}.{target.id}"
                            ] = _mutable_module_value(statement.value)
                elif isinstance(statement, ast.AnnAssign) and isinstance(
                    statement.target, ast.Name
                ):
                    if statement.value is not None:
                        self.data_bindings[
                            f"{module.name}.{statement.target.id}"
                        ] = _mutable_module_value(statement.value)

    def _register(
        self,
        module: SourceModule,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        cls: str | None,
    ) -> None:
        qualname = f"{cls or module.name}.{node.name}"
        params = _param_names(node.args)
        self_name = None
        if cls is not None and params and not _is_staticmethod(node):
            self_name = params[0]
            params = params[1:]
        self.functions[qualname] = FunctionInfo(
            qualname=qualname,
            module=module.name,
            cls=cls,
            name=node.name,
            line=node.lineno,
            params=params,
            self_name=self_name,
            node=node,
        )
        if cls is not None:
            self.class_methods.setdefault(cls, {})[node.name] = qualname

    # -- attribute typing ---------------------------------------------------

    def resolve_annotation(
        self, module: SourceModule, node: ast.expr | None
    ) -> str | None:
        """The codebase class an annotation denotes, if any."""
        if node is None:
            return None
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                node = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            # "X | None" — the optional part carries the type.
            left = self.resolve_annotation(module, node.left)
            return left or self.resolve_annotation(module, node.right)
        if isinstance(node, (ast.Name, ast.Attribute)):
            resolved = self.codebase.resolve_name(module, node)
            if resolved in self.codebase.classes():
                return resolved
        return None

    def _infer_attr_types(self) -> None:
        classes = self.codebase.classes()
        # Field annotations first, ctor assignments second: typing
        # ``self._cat_a = table_a.cat`` needs the *other* class's field
        # table to already exist.
        for qualname in sorted(classes):
            info = classes[qualname]
            module = self.codebase.modules.get(info.module)
            if module is None:
                continue
            table = self.attr_types.setdefault(qualname, {})
            for name, annotation_src, _line in info.fields:
                try:
                    annotation = ast.parse(annotation_src, mode="eval").body
                except SyntaxError:
                    continue
                resolved = self.resolve_annotation(module, annotation)
                if resolved is not None:
                    table[name] = resolved
        for qualname in sorted(classes):
            module = self.codebase.modules.get(classes[qualname].module)
            if module is None:
                continue
            table = self.attr_types[qualname]
            for ctor in ("__init__", "__post_init__"):
                fn = self.functions.get(f"{qualname}.{ctor}")
                if fn is not None:
                    self._attr_types_from_ctor(module, qualname, fn, table)

    def _attr_types_from_ctor(
        self,
        module: SourceModule,
        cls: str,
        fn: FunctionInfo,
        table: dict[str, str],
    ) -> None:
        annotations: dict[str, str] = {}
        for arg in fn.node.args.posonlyargs + fn.node.args.args + \
                fn.node.args.kwonlyargs:
            resolved = self.resolve_annotation(module, arg.annotation)
            if resolved is not None:
                annotations[arg.arg] = resolved
        for statement in ast.walk(fn.node):
            target = None
            value = None
            if isinstance(statement, ast.Assign) and len(statement.targets) == 1:
                target, value = statement.targets[0], statement.value
            elif isinstance(statement, ast.AnnAssign):
                target = statement.target
                resolved = self.resolve_annotation(module, statement.annotation)
                if (
                    resolved is not None
                    and isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == fn.self_name
                ):
                    table.setdefault(target.attr, resolved)
                continue
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == fn.self_name
            ):
                continue
            if isinstance(value, ast.Name) and value.id in annotations:
                table.setdefault(target.attr, annotations[value.id])
            elif isinstance(value, ast.Call) and isinstance(
                value.func, (ast.Name, ast.Attribute)
            ):
                resolved = self.codebase.resolve_name(module, value.func)
                if resolved in self.codebase.classes():
                    table.setdefault(target.attr, resolved)
            elif isinstance(value, ast.Attribute):
                # ``self._cat_a = table_a.cat`` with an annotated param:
                # walk the chain through already-built field tables.
                chain: list[str] = []
                node = value
                while isinstance(node, ast.Attribute):
                    chain.append(node.attr)
                    node = node.value
                if isinstance(node, ast.Name) and node.id in annotations:
                    current: str | None = annotations[node.id]
                    for attr in reversed(chain):
                        current = self.attr_types.get(
                            current or "", {}
                        ).get(attr)
                        if current is None:
                            break
                    if current is not None:
                        table.setdefault(target.attr, current)

    # -- method resolution --------------------------------------------------

    def resolve_method(self, cls: str | None, name: str) -> str | None:
        """The defining function qualname for ``cls.name``, walking bases."""
        seen: set[str] = set()
        queue = [cls] if cls else []
        classes = self.codebase.classes()
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            found = self.class_methods.get(current, {}).get(name)
            if found is not None:
                return found
            info = classes.get(current)
            if info is not None:
                queue.extend(info.bases)
        return None

    def declared_effects(
        self, module: SourceModule, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> frozenset[str] | None:
        lines = module.lines
        candidates = []
        if 1 <= node.lineno <= len(lines):
            candidates.append(lines[node.lineno - 1])
        if node.lineno >= 2:
            candidates.append(lines[node.lineno - 2])
        for text in candidates:
            match = _DECLARED_RE.search(text)
            if match is not None:
                atoms = {
                    chunk.strip()
                    for chunk in match.group(1).split(",")
                    if chunk.strip()
                }
                atoms.discard("pure")
                return frozenset(atoms)
        return None


class _Scanner:
    """One pass over a function body, producing its :class:`FunctionScan`."""

    def __init__(self, graph: CallGraph, info: FunctionInfo) -> None:
        self.graph = graph
        self.info = info
        self.module = graph.codebase.modules[info.module]
        self.imports = graph.codebase.import_table(self.module)
        self.param_types: dict[str, str] = {}
        self.locals: set[str] = set()
        self.import_bound: set[str] = set()
        self.nested_defs: set[str] = set()
        self.declared_globals: set[str] = set()
        self.alias_root: dict[str, str] = {}
        self.alias_type: dict[str, str] = {}
        self.alias_callable: dict[str, tuple[str, str]] = {}
        self.nodes: list[ast.AST] = []

    # -- scanning -----------------------------------------------------------

    def scan(self) -> FunctionScan:
        node = self.info.node
        module = self.module
        ignore = self._ignored_ids(node)
        self.nodes = [
            child for child in ast.walk(node) if id(child) not in ignore
        ]
        self._collect_bindings(node)
        for arg in node.args.posonlyargs + node.args.args + \
                node.args.kwonlyargs:
            resolved = self.graph.resolve_annotation(module, arg.annotation)
            if resolved is not None and arg.arg != self.info.self_name:
                self.param_types[arg.arg] = resolved
        self._alias_pass()
        calls: list[CallSite] = []
        stores: list[StoreSite] = []
        reads: list[GlobalRead] = []
        for child in self.nodes:
            if isinstance(child, ast.Call):
                site = self._call_site(child)
                if site is not None:
                    if child.keywords:
                        site = replace(
                            site, kw_roots=self._kw_roots(child)
                        )
                    calls.append(site)
            elif isinstance(child, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    child.targets
                    if isinstance(child, ast.Assign)
                    else [child.target]
                )
                if isinstance(child, ast.AnnAssign) and child.value is None:
                    continue
                for target in targets:
                    stores.extend(self._store_sites(target))
            elif isinstance(child, ast.Delete):
                for target in child.targets:
                    stores.extend(self._store_sites(target))
            elif isinstance(child, ast.Global):
                for name in child.names:
                    stores.append(StoreSite(
                        child.lineno,
                        f"global:{module.name}.{name}",
                        f"global {name}",
                    ))
            elif isinstance(child, ast.Name) and isinstance(
                child.ctx, ast.Load
            ):
                root, _ = self._name_root_type(child.id)
                if root.startswith("global:"):
                    dotted = root[len("global:"):]
                    if dotted in self.graph.data_bindings:
                        reads.append(GlobalRead(child.lineno, dotted))
        key = lambda s: (s.line, getattr(s, "col", 0))
        return FunctionScan(
            qualname=self.info.qualname,
            calls=tuple(sorted(calls, key=lambda s: (s.line, s.col))),
            stores=tuple(sorted(stores, key=key)),
            global_reads=tuple(sorted(reads, key=key)),
            declared=self.graph.declared_effects(module, node),
        )

    def _ignored_ids(self, node: ast.FunctionDef) -> set[int]:
        """Subtrees that never execute inside the body: annotations,
        decorator lists, and the outer function's own defaults."""
        ignore: set[int] = set()

        def drop(subtree: ast.AST | None) -> None:
            if subtree is not None:
                ignore.update(id(n) for n in ast.walk(subtree))

        for child in ast.walk(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                arguments = child.args
                for arg in arguments.posonlyargs + arguments.args + \
                        arguments.kwonlyargs:
                    drop(arg.annotation)
                for arg in (arguments.vararg, arguments.kwarg):
                    if arg is not None:
                        drop(arg.annotation)
                drop(child.returns)
                for decorator in child.decorator_list:
                    drop(decorator)
                if child is node:
                    for default in arguments.defaults:
                        drop(default)
                    for default in arguments.kw_defaults:
                        drop(default)
            elif isinstance(child, ast.AnnAssign):
                drop(child.annotation)
        return ignore

    def _collect_bindings(self, node: ast.FunctionDef) -> None:
        self.locals.update(self.info.params)
        if self.info.self_name:
            self.locals.add(self.info.self_name)
        for child in self.nodes:
            if isinstance(child, ast.Name) and isinstance(
                child.ctx, (ast.Store, ast.Del)
            ):
                self.locals.add(child.id)
            elif isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) and child is not node:
                self.nested_defs.add(child.name)
                self.locals.add(child.name)
                self.locals.update(_param_names(child.args))
            elif isinstance(child, ast.Lambda):
                self.locals.update(_param_names(child.args))
            elif isinstance(child, ast.ExceptHandler) and child.name:
                self.locals.add(child.name)
            elif isinstance(child, ast.Global):
                self.declared_globals.update(child.names)
            elif isinstance(child, (ast.Import, ast.ImportFrom)):
                # Function-local imports bind locals, but the bound name
                # still *resolves* — the module import table covers every
                # import statement in the file, so a deferred
                # ``from repro.ef import equiv_k`` must not degrade its
                # call sites to dynamic "local" dispatch.
                for alias in child.names:
                    name = alias.asname or alias.name.split(".")[0]
                    self.locals.add(name)
                    self.import_bound.add(name)
        self.locals -= self.declared_globals

    def _alias_pass(self) -> None:
        assignments = sorted(
            (
                child
                for child in self.nodes
                if isinstance(child, ast.Assign)
                and len(child.targets) == 1
                and isinstance(child.targets[0], ast.Name)
            ),
            key=lambda child: (child.lineno, child.col_offset),
        )
        for child in assignments:
            name = child.targets[0].id
            value = child.value
            if isinstance(value, (ast.Name, ast.Attribute, ast.Subscript)):
                root, ctype = self._resolve_chain(value)
                self.alias_root[name] = root
                if ctype is not None:
                    self.alias_type[name] = ctype
                callable_target = self._callable_of_chain(value)
                if callable_target is not None:
                    self.alias_callable[name] = callable_target
            elif isinstance(value, ast.Call):
                root, ctype = self._call_value(value)
                self.alias_root[name] = root
                if ctype is not None:
                    self.alias_type[name] = ctype

    # -- resolution ---------------------------------------------------------

    def _name_root_type(self, name: str) -> tuple[str, str | None]:
        if name == self.info.self_name:
            return "self", self.info.cls
        if name in self.param_types:
            return f"param:{name}", self.param_types[name]
        if name in self.info.params:
            return f"param:{name}", None
        if name in self.alias_root:
            return self.alias_root[name], self.alias_type.get(name)
        if name in self.import_bound:
            resolved = self._import_root(name)
            if resolved is not None:
                return resolved
        if name in self.locals:
            return "local", None
        graph = self.graph
        dotted = f"{self.module.name}.{name}"
        if dotted in graph.codebase.classes() and (
            graph.codebase.classes()[dotted].module == self.module.name
        ):
            return f"class:{dotted}", None
        if dotted in graph.functions:
            return f"func:{dotted}", None
        if dotted in graph.data_bindings:
            return f"global:{dotted}", None
        resolved = self._import_root(name)
        if resolved is not None:
            return resolved
        if name in _BUILTIN_NAMES:
            return f"external:{name}", None
        return "unknown", None

    def _import_root(self, name: str) -> tuple[str, str | None] | None:
        """Resolve an import-table name to its root, if present."""
        imported = self.imports.get(name)
        if imported is None:
            return None
        graph = self.graph
        if imported in graph.codebase.modules:
            return f"module:{imported}", None
        if imported in graph.codebase.classes():
            return f"class:{imported}", None
        if imported in graph.functions:
            return f"func:{imported}", None
        if imported in graph.data_bindings:
            return f"global:{imported}", None
        return f"external:{imported}", None

    def _resolve_chain(self, expr: ast.expr) -> tuple[str, str | None]:
        """(root, receiver class) for a Name/Attribute/Subscript chain."""
        steps: list[str | None] = []  # attr name, or None for a subscript
        node = expr
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            steps.append(node.attr if isinstance(node, ast.Attribute) else None)
            node = node.value
        steps.reverse()
        if isinstance(node, ast.Name):
            root, ctype = self._name_root_type(node.id)
        elif isinstance(node, ast.Call):
            root, ctype = self._call_value(node)
        else:
            return "unknown", None
        graph = self.graph
        for step in steps:
            if step is None:  # subscript: element type unknown
                ctype = None
                continue
            if root.startswith("module:"):
                dotted = f"{root[len('module:'):]}.{step}"
                if dotted in graph.codebase.modules:
                    root, ctype = f"module:{dotted}", None
                elif dotted in graph.codebase.classes():
                    root, ctype = f"class:{dotted}", None
                elif dotted in graph.functions:
                    root, ctype = f"func:{dotted}", None
                elif dotted in graph.data_bindings:
                    root, ctype = f"global:{dotted}", None
                else:
                    root, ctype = "unknown", None
                continue
            if root.startswith("external:"):
                root = f"external:{root[len('external:'):]}.{step}"
                ctype = None
                continue
            ctype = graph.attr_types.get(ctype or "", {}).get(step)
        return root, ctype

    def _callable_of_chain(
        self, expr: ast.expr
    ) -> tuple[str, str] | None:
        """(function qualname, receiver root) when a chain names a bound
        method or a function — supports ``intern = self.family.intern``."""
        if not isinstance(expr, ast.Attribute):
            if isinstance(expr, ast.Name):
                root, _ = self._name_root_type(expr.id)
                if root.startswith("func:"):
                    return root[len("func:"):], "local"
            return None
        base_root, base_type = self._resolve_chain(expr.value)
        if base_root.startswith("module:"):
            dotted = f"{base_root[len('module:'):]}.{expr.attr}"
            if dotted in self.graph.functions:
                return dotted, "local"
            return None
        target = self.graph.resolve_method(base_type, expr.attr)
        if target is not None:
            return target, base_root
        return None

    def _call_value(self, call: ast.Call) -> tuple[str, str | None]:
        """Root/type of a call *result* (for alias and chain bases)."""
        site = self._call_site(call)
        if site is not None and site.constructor and site.target:
            return "fresh", site.target
        if site is not None and site.target in self.graph.functions:
            # A factory with a class-valued return annotation types its
            # result: ``solver_for(w, v).duplicator_wins(...)`` resolves
            # through ``-> GameSolver``.  The root stays "local", not
            # "fresh" — a cached factory may hand back a shared object,
            # so mutations through the result are not absorbed as
            # construction-time initialisation.
            info = self.graph.functions[site.target]
            module = self.graph.codebase.modules[info.module]
            returned = self.graph.resolve_annotation(
                module, info.node.returns
            )
            if returned is not None:
                return "local", returned
        return "local", None

    # -- extraction ---------------------------------------------------------

    def _store_sites(self, target: ast.expr) -> list[StoreSite]:
        if isinstance(target, (ast.Tuple, ast.List)):
            out: list[StoreSite] = []
            for element in target.elts:
                out.extend(self._store_sites(element))
            return out
        if isinstance(target, ast.Starred):
            return self._store_sites(target.value)
        if isinstance(target, ast.Name):
            if target.id in self.declared_globals:
                return [StoreSite(
                    target.lineno,
                    f"global:{self.module.name}.{target.id}",
                    f"{target.id} = …",
                )]
            return []
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            root, _ = self._resolve_chain(target.value)
            return [StoreSite(
                target.lineno, root, _unparse_short(target)
            )]
        return []

    def _arg_roots(self, call: ast.Call) -> tuple[str, ...]:
        roots = []
        for argument in call.args:
            node = argument.value if isinstance(
                argument, ast.Starred
            ) else argument
            if isinstance(node, (ast.Name, ast.Attribute, ast.Subscript)):
                roots.append(self._resolve_chain(node)[0])
            elif isinstance(node, ast.Call):
                roots.append(self._call_value(node)[0])
            else:
                roots.append("fresh")
        return tuple(roots)

    def _kw_roots(self, call: ast.Call) -> tuple[tuple[str, str], ...]:
        roots = []
        for keyword in call.keywords:
            if keyword.arg is None:
                continue  # **kwargs expansion — unmatchable
            node = keyword.value
            if isinstance(node, (ast.Name, ast.Attribute, ast.Subscript)):
                root, _ = self._resolve_chain(node)
                roots.append((keyword.arg, root))
            else:
                roots.append((keyword.arg, "fresh"))
        return tuple(roots)

    def _call_site(self, call: ast.Call) -> CallSite | None:
        func = call.func
        line, col = call.lineno, call.col_offset
        arg_roots = self._arg_roots(call)
        if isinstance(func, ast.Name):
            name = func.id
            if name in self.nested_defs:
                return None  # absorbed into this scan
            if name in self.alias_callable:
                target, receiver = self.alias_callable[name]
                return CallSite(
                    line, col, target=target, receiver=receiver,
                    display=f"{name}()", arg_roots=arg_roots,
                )
            root, _ = self._name_root_type(name)
            return self._site_for_root(
                call, root, display=f"{name}()", arg_roots=arg_roots
            )
        if isinstance(func, ast.Attribute):
            attr = func.attr
            if (
                isinstance(func.value, ast.Call)
                and isinstance(func.value.func, ast.Name)
                and func.value.func.id == "super"
            ):
                target = None
                info = self.graph.codebase.classes().get(self.info.cls or "")
                if info is not None:
                    for base in info.bases:
                        target = self.graph.resolve_method(base, attr)
                        if target is not None:
                            break
                return CallSite(
                    line, col, target=target, method=attr, receiver="self",
                    display=f"super().{attr}()", arg_roots=arg_roots,
                )
            root, ctype = self._resolve_chain(func.value)
            display = f"{_unparse_short(func.value, 24)}.{attr}()"
            if root.startswith("module:"):
                dotted = f"{root[len('module:'):]}.{attr}"
                if dotted in self.graph.functions:
                    return CallSite(
                        line, col, target=dotted, display=display,
                        arg_roots=arg_roots,
                    )
                if dotted in self.graph.codebase.classes():
                    return CallSite(
                        line, col, target=dotted, constructor=True,
                        display=display, arg_roots=arg_roots,
                    )
                return CallSite(
                    line, col, method=attr, receiver=root, display=display,
                    arg_roots=arg_roots,
                )
            if root.startswith("class:"):
                cls = root[len("class:"):]
                target = self.graph.resolve_method(cls, attr)
                if target is not None:
                    # C.m(obj) — the receiver is the first argument.
                    receiver = arg_roots[0] if arg_roots else "unknown"
                    return CallSite(
                        line, col, target=target, receiver=receiver,
                        display=display, arg_roots=arg_roots[1:],
                    )
                return CallSite(
                    line, col, method=attr, receiver=root, display=display,
                    arg_roots=arg_roots,
                )
            if root.startswith("external:"):
                dotted = f"{root[len('external:'):]}.{attr}"
                receiver = None
                if dotted in ("object.__setattr__", "object.__delattr__"):
                    receiver = arg_roots[0] if arg_roots else "unknown"
                return CallSite(
                    line, col, external=dotted, receiver=receiver,
                    display=display, arg_roots=arg_roots,
                )
            if ctype is not None:
                target = self.graph.resolve_method(ctype, attr)
                if target is not None:
                    return CallSite(
                        line, col, target=target, receiver=root,
                        display=display, arg_roots=arg_roots,
                    )
            return CallSite(
                line, col, method=attr, receiver=root, display=display,
                arg_roots=arg_roots,
            )
        return CallSite(
            line, col, receiver="unknown",
            display=f"{_unparse_short(func, 24)}()", arg_roots=arg_roots,
        )

    def _site_for_root(
        self,
        call: ast.Call,
        root: str,
        display: str,
        arg_roots: tuple[str, ...],
    ) -> CallSite:
        line, col = call.lineno, call.col_offset
        if root.startswith("func:"):
            return CallSite(
                line, col, target=root[len("func:"):], display=display,
                arg_roots=arg_roots,
            )
        if root.startswith("class:"):
            return CallSite(
                line, col, target=root[len("class:"):], constructor=True,
                display=display, arg_roots=arg_roots,
            )
        if root.startswith("external:"):
            dotted = root[len("external:"):]
            receiver = None
            if dotted in ("setattr", "delattr"):
                receiver = arg_roots[0] if arg_roots else "unknown"
            return CallSite(
                line, col, external=dotted, receiver=receiver,
                display=display, arg_roots=arg_roots,
            )
        # Calling a parameter, a local value, or module data: dynamic.
        return CallSite(
            line, col, receiver=root if root != "local" else "unknown",
            display=display, arg_roots=arg_roots,
        )
