"""Import layering: the package DAG admits no upward imports.

The reproduction is layered bottom-up as

    words → kernel → {fc, fcreg} → {ef, foeq} → {spanners, semilinear}
          → core → engine → analysis

where a package may import from its own layer or any layer below, never
above.  Upward imports create initialisation cycles and — worse for a
proof lab — let substrate modules depend on experiment-orchestration
semantics.  Two escape hatches exist: *leaf* modules (e.g.
``repro.cachestats``) sit below the whole DAG and may be imported from
anywhere, and *unconstrained* entry points (``repro.__main__``) sit
above it.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.framework import (
    Checker,
    Codebase,
    Finding,
    LintConfig,
    SourceModule,
)

__all__ = ["ImportLayeringChecker"]


class ImportLayeringChecker(Checker):
    name = "import-layering"
    description = (
        "packages may import their own layer or below; never upward "
        "along words → kernel → {fc,fcreg} → {ef,foeq} → "
        "{spanners,semilinear} → core → engine"
    )

    def check(
        self, codebase: Codebase, config: LintConfig
    ) -> Iterator[Finding]:
        layer_of: dict[str, int] = {}
        for index, group in enumerate(config.layers):
            for package in group:
                layer_of[f"{config.package}.{package}"] = index
        leaves = set(config.leaf_modules)
        unconstrained = set(config.unconstrained_modules)

        for module in codebase.iter_modules():
            if module.name in unconstrained:
                continue
            importer_package = self._package_of(module.name, layer_of, leaves)
            seen: set[tuple[int, str]] = set()
            for node, target in self._imports(codebase, module):
                if not (
                    target == config.package
                    or target.startswith(config.package + ".")
                ):
                    continue
                if target in leaves or target in unconstrained:
                    continue
                imported_package = self._package_of(target, layer_of, leaves)
                if imported_package is None:
                    continue
                if (node.lineno, imported_package) in seen:
                    continue
                seen.add((node.lineno, imported_package))
                if importer_package == "leaf":
                    yield self.finding(
                        codebase,
                        module,
                        node.lineno,
                        f"leaf module {module.name} imports {target}; leaf "
                        "modules sit below the DAG and must not import "
                        "package code",
                    )
                    continue
                if importer_package is None:
                    continue  # unlayered top-level module
                if layer_of[imported_package] > layer_of[importer_package]:
                    yield self.finding(
                        codebase,
                        module,
                        node.lineno,
                        f"{module.name} (layer "
                        f"{self._short(importer_package)}) imports upward "
                        f"from {target} (layer "
                        f"{self._short(imported_package)})",
                        hint=(
                            "move the shared code below both layers (cf. "
                            "repro.cachestats) or invert the dependency"
                        ),
                    )

    @staticmethod
    def _short(package: str) -> str:
        return package.rsplit(".", 1)[1]

    @staticmethod
    def _package_of(
        name: str, layer_of: dict[str, int], leaves: set[str]
    ) -> str | None:
        """The layered package a dotted module belongs to.

        Returns ``"leaf"`` for leaf modules, ``None`` for modules outside
        every layer (e.g. ``repro`` itself).
        """
        if name in leaves:
            return "leaf"
        parts = name.split(".")
        for cut in range(len(parts), 1, -1):
            prefix = ".".join(parts[:cut])
            if prefix in layer_of:
                return prefix
        return None

    @staticmethod
    def _imports(
        codebase: Codebase, module: SourceModule
    ) -> Iterator[tuple[ast.stmt, str]]:
        """Every imported dotted module name, with its AST node."""
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    yield node, alias.name
            elif isinstance(node, ast.ImportFrom):
                base = Codebase.resolve_import_base(module, node)
                if base is None:
                    continue
                yield node, base
                # ``from repro import cachestats`` imports the submodule
                # even though the base is just ``repro``.
                for alias in node.names:
                    yield node, f"{base}.{alias.name}"
