"""The checker framework behind ``python -m repro lint``.

Small, dependency-free static-analysis plumbing:

* :class:`Codebase` loads every module of a package once, parses it with
  :mod:`ast`, and derives shared indexes (per-module import tables, the
  class graph with dataclass/frozen/field facts);
* :class:`Finding` is one diagnostic with a stable fingerprint, so
  findings can be baselined across runs;
* :class:`Checker` is the rule interface; concrete rules live in the
  sibling modules and are assembled by :func:`all_checkers`;
* inline suppressions — a ``# repro-lint: allow[rule] reason`` comment
  on (or directly above) the flagged line — acknowledge a finding in
  the source itself, next to the code that needs the exemption.

Everything is deterministic: modules, classes and findings are visited
and emitted in sorted order.
"""

from __future__ import annotations

import ast
import fnmatch
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Sequence

__all__ = [
    "Checker",
    "ClassInfo",
    "Codebase",
    "Finding",
    "LintConfig",
    "SourceModule",
    "all_checkers",
    "apply_baseline",
    "default_config",
    "load_baseline",
    "run_checkers",
    "select_checkers",
    "write_baseline",
]


# ---------------------------------------------------------------------------
# Findings.


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic: where, what rule, what is wrong, how to fix it."""

    path: str  # source-root-relative posix path, e.g. "repro/fc/syntax.py"
    line: int
    rule: str
    message: str
    severity: str = "error"
    hint: str = ""

    @property
    def fingerprint(self) -> str:
        """Line-independent identity used for baseline matching."""
        return f"{self.rule}::{self.path}::{self.message}"

    def to_json_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "hint": self.hint,
            "fingerprint": self.fingerprint,
        }

    def render(self) -> str:
        text = f"{self.path}:{self.line}: [{self.rule}] {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


# ---------------------------------------------------------------------------
# Source loading and shared indexes.


@dataclass(frozen=True)
class SourceModule:
    """One parsed module of the analysed package."""

    name: str  # dotted, e.g. "repro.fc.syntax"
    path: Path
    text: str = field(repr=False)
    tree: ast.Module = field(repr=False)
    is_package: bool = False

    @property
    def lines(self) -> list[str]:
        return self.text.splitlines()

    def package_parts(self) -> tuple[str, ...]:
        """The dotted path of the package *containing* this module."""
        parts = tuple(self.name.split("."))
        return parts if self.is_package else parts[:-1]


@dataclass(frozen=True)
class ClassInfo:
    """Static facts about one class definition."""

    qualname: str  # "repro.fc.syntax.Concat"
    module: str
    name: str
    line: int
    bases: tuple[str, ...]  # qualified where resolvable, raw name otherwise
    is_dataclass: bool
    frozen: bool
    # (field name, annotation source text, line) per annotated field.
    fields: tuple[tuple[str, str, int], ...]


def _dataclass_facts(node: ast.ClassDef) -> tuple[bool, bool]:
    """(is_dataclass, frozen) from the decorator list."""
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name != "dataclass":
            continue
        frozen = False
        if isinstance(decorator, ast.Call):
            for keyword in decorator.keywords:
                if keyword.arg == "frozen":
                    frozen = (
                        isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is True
                    )
        return True, frozen
    return False, False


class Codebase:
    """Every module under ``src_root/package``, parsed once, plus indexes."""

    def __init__(self, src_root: Path, package: str = "repro") -> None:
        self.src_root = Path(src_root).resolve()
        self.package = package
        self.modules: dict[str, SourceModule] = {}
        package_dir = self.src_root / package
        if not package_dir.is_dir():
            raise FileNotFoundError(
                f"package directory not found: {package_dir}"
            )
        for path in sorted(package_dir.rglob("*.py")):
            relative = path.relative_to(self.src_root)
            parts = list(relative.with_suffix("").parts)
            is_package = parts[-1] == "__init__"
            if is_package:
                parts = parts[:-1]
            name = ".".join(parts)
            text = path.read_text(encoding="utf-8")
            tree = ast.parse(text, filename=str(path))
            self.modules[name] = SourceModule(name, path, text, tree, is_package)
        self._by_relpath = {
            self.relpath(module): module for module in self.modules.values()
        }
        self._classes: dict[str, ClassInfo] | None = None
        self._import_tables: dict[str, dict[str, str]] = {}

    # -- paths ------------------------------------------------------------

    def relpath(self, module: SourceModule) -> str:
        return module.path.relative_to(self.src_root).as_posix()

    def module_for_path(self, relpath: str) -> SourceModule | None:
        return self._by_relpath.get(relpath)

    def iter_modules(
        self, prefixes: Sequence[str] = ()
    ) -> Iterator[SourceModule]:
        """Modules in sorted name order, optionally prefix-filtered."""
        for name in sorted(self.modules):
            if not prefixes or any(
                name == p or name.startswith(p + ".") for p in prefixes
            ):
                yield self.modules[name]

    # -- imports ----------------------------------------------------------

    def import_table(self, module: SourceModule) -> dict[str, str]:
        """Map each imported local name to its fully qualified target."""
        cached = self._import_tables.get(module.name)
        if cached is not None:
            return cached
        table: dict[str, str] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        table[alias.asname] = alias.name
                    else:
                        # ``import a.b.c`` binds ``a``.
                        head = alias.name.split(".")[0]
                        table[head] = head
            elif isinstance(node, ast.ImportFrom):
                base = self.resolve_import_base(module, node)
                if base is None:
                    continue
                for alias in node.names:
                    local = alias.asname or alias.name
                    table[local] = f"{base}.{alias.name}" if base else alias.name
        self._import_tables[module.name] = table
        return table

    @staticmethod
    def resolve_import_base(
        module: SourceModule, node: ast.ImportFrom
    ) -> str | None:
        """Absolute dotted module a ``from … import`` pulls from."""
        if node.level == 0:
            return node.module
        package = list(module.package_parts())
        drop = node.level - 1
        if drop > len(package):
            return None
        if drop:
            package = package[:-drop]
        if node.module:
            package.append(node.module)
        return ".".join(package)

    def resolve_name(self, module: SourceModule, expr: ast.expr) -> str | None:
        """Qualify a Name/Attribute reference using the import table."""
        if isinstance(expr, ast.Name):
            local = f"{module.name}.{expr.id}"
            if local in self.classes():
                return local
            return self.import_table(module).get(expr.id)
        if isinstance(expr, ast.Attribute):
            head = self.resolve_name(module, expr.value)
            if head is None:
                return None
            return f"{head}.{expr.attr}"
        return None

    # -- classes ----------------------------------------------------------

    def classes(self) -> dict[str, ClassInfo]:
        if self._classes is None:
            self._classes = {}
            # Two passes: register names first so local bases resolve.
            declared: list[tuple[SourceModule, ast.ClassDef]] = []
            for module in self.iter_modules():
                for node in ast.walk(module.tree):
                    if isinstance(node, ast.ClassDef):
                        declared.append((module, node))
                        qualname = f"{module.name}.{node.name}"
                        self._classes[qualname] = ClassInfo(
                            qualname, module.name, node.name, node.lineno,
                            (), False, False, (),
                        )
            for module, node in declared:
                bases = []
                for base in node.bases:
                    resolved = self.resolve_name(module, base)
                    bases.append(resolved or ast.unparse(base))
                is_dataclass, frozen = _dataclass_facts(node)
                fields = tuple(
                    (
                        statement.target.id,
                        ast.unparse(statement.annotation),
                        statement.lineno,
                    )
                    for statement in node.body
                    if isinstance(statement, ast.AnnAssign)
                    and isinstance(statement.target, ast.Name)
                )
                qualname = f"{module.name}.{node.name}"
                self._classes[qualname] = ClassInfo(
                    qualname, module.name, node.name, node.lineno,
                    tuple(bases), is_dataclass, frozen, fields,
                )
        return self._classes

    def subclasses(self, root: str) -> set[str]:
        """Transitive subclasses of ``root`` (qualified names; root excluded)."""
        children: dict[str, set[str]] = {}
        for info in self.classes().values():
            for base in info.bases:
                children.setdefault(base, set()).add(info.qualname)
        found: set[str] = set()
        stack = [root]
        while stack:
            for child in children.get(stack.pop(), ()):
                if child not in found:
                    found.add(child)
                    stack.append(child)
        return found

    def concrete_subclasses(self, root: str, home_module: str) -> set[str]:
        """Leaf subclasses of ``root`` declared in its home module.

        Subclasses declared elsewhere are *extension* nodes (e.g. FC[REG]
        constraint atoms extending the FC ``Formula`` hierarchy through
        protocol hooks) and are not required dispatch arms.
        """
        in_home = {
            name
            for name in self.subclasses(root)
            if self.classes()[name].module == home_module
        }
        return {
            name
            for name in in_home
            if not (self.subclasses(name) & in_home)
        }


# ---------------------------------------------------------------------------
# Configuration.


@dataclass(frozen=True)
class LintConfig:
    """What the checkers look at; defaults describe this repository."""

    src_root: Path
    package: str = "repro"
    # Import layering, bottom layer first; packages in the same tuple may
    # import each other freely.
    layers: tuple[tuple[str, ...], ...] = (
        # repro.store sits at the bottom with repro.words: the artifact
        # store must be importable from every hydration site (kernel,
        # fc, ef) and depends on nothing above it.
        ("words", "store"),
        ("kernel",),
        ("fc", "fcreg"),
        ("ef", "foeq"),
        ("spanners", "semilinear"),
        ("core",),
        ("engine",),
        # repro.serve rides on top of the engine (it warms via run_tasks
        # and answers queries with the same task functions).
        ("serve",),
        ("analysis",),
    )
    # Top-level modules below the whole DAG (importable from any layer,
    # may import nothing from the package).
    leaf_modules: tuple[str, ...] = ("repro.cachestats",)
    # Top-level entry points above the whole DAG.
    unconstrained_modules: tuple[str, ...] = ("repro", "repro.__main__")
    # Dispatch hierarchies: root class → module whose leaf subclasses form
    # the closed set of required arms.
    hierarchies: Mapping[str, str] = field(
        default_factory=lambda: {
            "repro.fc.syntax.Formula": "repro.fc.syntax",
            "repro.foeq.syntax.PFormula": "repro.foeq.syntax",
            "repro.spanners.spanner.Spanner": "repro.spanners.spanner",
            "repro.spanners.regex_formulas.RegexFormula": (
                "repro.spanners.regex_formulas"
            ),
        }
    )
    # Where isinstance-dispatch over those hierarchies is checked.
    dispatch_prefixes: tuple[str, ...] = (
        "repro.fc",
        "repro.fcreg",
        "repro.foeq",
        "repro.ef",
        "repro.spanners",
        "repro.core",
        "repro.semilinear",
    )
    # Modules whose dataclasses must be frozen ASTs with hashable fields.
    syntax_modules: tuple[str, ...] = (
        "repro.fc.syntax",
        "repro.foeq.syntax",
        "repro.fcreg.constraints",
        "repro.spanners.spanner",
        "repro.spanners.regex_formulas",
    )
    # Packages that must be bit-deterministic (witness search + caching).
    # repro.fc.sweep and repro.foeq joined when the batched sweep
    # evaluator and the kernel-backed position-game solver landed: both
    # feed content-addressed engine results, so iteration order in their
    # search/memo code is load-bearing.
    determinism_prefixes: tuple[str, ...] = (
        "repro.ef",
        "repro.engine",
        "repro.fc.sweep",
        # Bounded decompositions flow into store-fingerprinted formulas;
        # automaton construction order must not depend on string hashing.
        "repro.fcreg",
        "repro.foeq",
        "repro.kernel",
        # Artifact keys and payloads feed content-addressed hydration;
        # any iteration-order leak here poisons records on disk.
        "repro.store",
    )
    # Modules whose functions carry the trusted {counter} effect summary
    # (process-wide effort accounting, exempt from the purity rules).
    counter_modules: tuple[str, ...] = (
        "repro.cachestats",
        "repro.kernel.stats",
        "repro.store.stats",
    )
    # Modules whose functions carry the trusted {store} effect summary —
    # the artifact-store channel.  Hydration code may reach persistent
    # storage only by calling into these; effects.worker-isolation flags
    # inline ``effects[store]`` pins anywhere else.
    store_modules: tuple[str, ...] = (
        "repro.store",
        "repro.store.backends",
        "repro.store.core",
        "repro.store.runtime",
    )
    # Modules whose get-then-store memo dicts must satisfy
    # effects.memo-key-completeness (family-wide caches).
    memo_modules: tuple[str, ...] = (
        "repro.fc.sweep",
        "repro.foeq.compiled",
        "repro.kernel.sweep",
    )
    # Explicit worker-isolation roots (dotted ``pkg.mod:fn`` paths); when
    # empty, the registered engine tasks from ``registry_builder`` are used.
    task_roots: tuple[str, ...] = ()
    # Entry points that may execute on two or more threads at once —
    # the serve daemon's handler threads (one per connection, all running
    # the same code) plus the lifecycle calls that race against them.
    # Globs over function qualnames are allowed: the ``op_*`` handlers
    # are reached through a ``getattr`` dispatch the call graph cannot
    # resolve, so they are enumerated as roots of their own.
    thread_roots: tuple[str, ...] = (
        "repro.serve.daemon._Handler.handle",
        "repro.serve.daemon.ReproServer.answer",
        "repro.serve.daemon.ReproServer.begin_shutdown",
        "repro.serve.daemon.ReproServer.server_close",
        "repro.serve.service.QueryService.dispatch",
        "repro.serve.service.QueryService.op_*",
    )
    # Classes whose instances are shared across the thread roots (the
    # server/service singletons).  ``repro.analysis.concurrency`` closes
    # this seed set over field annotations, subclasses, and the classes
    # returned by lru_cached thread-reachable factories (an lru cache is
    # itself process-global, so its cached objects are shared too).
    thread_shared_classes: tuple[str, ...] = (
        "repro.serve.daemon.ReproServer",
        "repro.serve.service.QueryService",
    )
    # Modules the ``domains.*`` rules report on (empty = whole package);
    # the flow analysis itself only walks pin-reachable modules either way.
    domain_modules: tuple[str, ...] = ()
    # Modules providing the trusted bitset primitives the id-domain flow
    # models natively (iter_ids / from_ids / contains / declare_universe).
    bitset_modules: tuple[str, ...] = ("repro.kernel.bitset",)
    # Dotted path of the engine registry builder, and the version lock.
    registry_builder: str | None = "repro.engine.experiments:build_default_registry"
    lock_path: Path | None = None

    def resolved_lock_path(self) -> Path:
        if self.lock_path is not None:
            return Path(self.lock_path)
        return self.src_root / self.package / "analysis" / "versions.lock"


def default_config() -> LintConfig:
    """The configuration for this repository's own source tree."""
    return LintConfig(src_root=Path(__file__).resolve().parents[2])


# ---------------------------------------------------------------------------
# Checker interface and runner.


class Checker:
    """One lint rule.  Subclasses set ``name`` and implement ``check``."""

    name: str = ""
    description: str = ""

    def check(
        self, codebase: Codebase, config: LintConfig
    ) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        codebase: Codebase,
        module: SourceModule,
        line: int,
        message: str,
        hint: str = "",
        severity: str = "error",
    ) -> Finding:
        return Finding(
            path=codebase.relpath(module),
            line=line,
            rule=self.name,
            message=message,
            severity=severity,
            hint=hint,
        )


def all_checkers() -> list[Checker]:
    """Every registered rule, in stable name order."""
    from repro.analysis.cachesound import CacheSoundnessChecker
    from repro.analysis.concurrency import (
        AtomicCountersChecker,
        ForkSafetyChecker,
        GuardedByChecker,
        SharedStateRaceChecker,
    )
    from repro.analysis.determinism import DeterminismChecker
    from repro.analysis.dispatch import DispatchExhaustivenessChecker
    from repro.analysis.domainrules import (
        DomainsBitsetUniverseChecker,
        DomainsNoCrossMixChecker,
        DomainsSlotDisciplineChecker,
        DomainsUniverseEscapeChecker,
    )
    from repro.analysis.effectrules import (
        EffectAssignmentPurityChecker,
        EffectPurityPropagationChecker,
        MemoKeyCompletenessChecker,
        WorkerIsolationChecker,
    )
    from repro.analysis.frozen import FrozenAstChecker
    from repro.analysis.layering import ImportLayeringChecker
    from repro.analysis.purity import LruCachePurityChecker

    checkers = [
        AtomicCountersChecker(),
        CacheSoundnessChecker(),
        DeterminismChecker(),
        DispatchExhaustivenessChecker(),
        DomainsBitsetUniverseChecker(),
        DomainsNoCrossMixChecker(),
        DomainsSlotDisciplineChecker(),
        DomainsUniverseEscapeChecker(),
        EffectAssignmentPurityChecker(),
        EffectPurityPropagationChecker(),
        ForkSafetyChecker(),
        GuardedByChecker(),
        MemoKeyCompletenessChecker(),
        SharedStateRaceChecker(),
        WorkerIsolationChecker(),
        FrozenAstChecker(),
        ImportLayeringChecker(),
        LruCachePurityChecker(),
    ]
    return sorted(checkers, key=lambda checker: checker.name)


def select_checkers(
    rules: Sequence[str], checkers: Sequence[Checker]
) -> list[Checker]:
    """The checkers matching the rule names/globs (``effects.*`` works).

    Raises ``ValueError`` on a pattern that matches nothing, preserving
    the old exact-name error behaviour.
    """
    selected: list[Checker] = []
    unmatched: list[str] = []
    for pattern in rules:
        matched = [
            checker
            for checker in checkers
            if fnmatch.fnmatchcase(checker.name, pattern)
        ]
        if not matched:
            unmatched.append(pattern)
        for checker in matched:
            if checker not in selected:
                selected.append(checker)
    if unmatched:
        available = ", ".join(sorted(c.name for c in checkers))
        raise ValueError(
            f"unknown rule(s): {', '.join(sorted(unmatched))}; "
            f"available: {available}"
        )
    return selected


_SUPPRESS_RE = re.compile(r"repro-lint:\s*allow\[([^\]]+)\]")


def _is_suppressed(finding: Finding, codebase: Codebase) -> bool:
    """True when an inline allow-comment covers the finding's rule."""
    module = codebase.module_for_path(finding.path)
    if module is None:
        return False
    lines = module.lines
    candidates = []
    if 1 <= finding.line <= len(lines):
        candidates.append(lines[finding.line - 1])
    if 2 <= finding.line <= len(lines) + 1:
        candidates.append(lines[finding.line - 2])
    for text in candidates:
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        allowed = {chunk.strip() for chunk in match.group(1).split(",")}
        if finding.rule in allowed or "*" in allowed:
            return True
    return False


def run_checkers(
    config: LintConfig,
    rules: Sequence[str] | None = None,
    checkers: Sequence[Checker] | None = None,
    codebase: Codebase | None = None,
) -> tuple[list[Finding], list[Finding]]:
    """Run the (selected) rules.  Returns ``(active, suppressed)``.

    Pass ``codebase`` to share one parsed tree (and its cached effect
    analysis) with the caller — ``--effects-json`` relies on this.
    """
    selected = list(checkers) if checkers is not None else all_checkers()
    if rules:
        selected = select_checkers(rules, selected)
    if codebase is None:
        codebase = Codebase(config.src_root, config.package)
    collected: list[Finding] = []
    for checker in selected:
        collected.extend(checker.check(codebase, config))
    collected.sort()
    active = [f for f in collected if not _is_suppressed(f, codebase)]
    suppressed = [f for f in collected if _is_suppressed(f, codebase)]
    return active, suppressed


# ---------------------------------------------------------------------------
# Baselines.


def load_baseline(path: Path) -> set[str]:
    """The set of baselined finding fingerprints (empty if absent)."""
    if not Path(path).exists():
        return set()
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    entries = payload.get("findings", []) if isinstance(payload, dict) else []
    return {entry["fingerprint"] for entry in entries}


def write_baseline(path: Path, findings: Iterable[Finding]) -> None:
    """Persist findings as the accepted baseline (sorted, with context)."""
    entries = [
        {
            "fingerprint": finding.fingerprint,
            "path": finding.path,
            "rule": finding.rule,
            "message": finding.message,
        }
        for finding in sorted(findings)
    ]
    Path(path).write_text(
        json.dumps({"findings": entries}, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def apply_baseline(
    findings: Sequence[Finding], fingerprints: set[str]
) -> tuple[list[Finding], list[Finding]]:
    """Split findings into ``(new, baselined)``."""
    new = [f for f in findings if f.fingerprint not in fingerprints]
    baselined = [f for f in findings if f.fingerprint in fingerprints]
    return new, baselined
