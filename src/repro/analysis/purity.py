"""Purity of ``lru_cache`` sites.

A memoised function is only sound if its result is a pure function of
its arguments.  The repo instruments a handful of hot constructors with
``functools.lru_cache`` (see ``repro.cachestats``); this rule flags the
ways such a site can silently go impure:

* mutable default arguments — the default is captured once, shared
  across calls, and mutates under the cache's feet;
* ``global`` / ``nonlocal`` statements in the body — the cached value
  then depends on (or mutates) state outside the argument tuple;
* definition nested inside another function — the closure captures
  enclosing locals that are invisible to the cache key, and the cache
  itself leaks (one per enclosing call).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.framework import Checker, Codebase, Finding, LintConfig

__all__ = ["LruCachePurityChecker"]

_MUTABLE_CONSTRUCTORS = {"list", "dict", "set", "bytearray", "defaultdict"}


def _is_lru_cached(node: ast.FunctionDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id in {
            "lru_cache",
            "cache",
        }:
            return True
        if isinstance(target, ast.Attribute) and target.attr in {
            "lru_cache",
            "cache",
        }:
            return True
    return False


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CONSTRUCTORS
    )


class LruCachePurityChecker(Checker):
    name = "lru-cache-purity"
    description = (
        "lru_cache functions must not take mutable defaults, touch "
        "global/nonlocal state, or close over enclosing scopes"
    )

    def check(
        self, codebase: Codebase, config: LintConfig
    ) -> Iterator[Finding]:
        for module in codebase.iter_modules((config.package,)):
            nested: set[int] = set()
            for node in ast.walk(module.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    for child in ast.walk(node):
                        if child is not node and isinstance(
                            child, (ast.FunctionDef, ast.AsyncFunctionDef)
                        ):
                            nested.add(id(child))
            for node in ast.walk(module.tree):
                if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if not _is_lru_cached(node):
                    continue
                yield from self._check_site(
                    codebase, module, node, nested=id(node) in nested
                )

    def _check_site(
        self, codebase: Codebase, module, node: ast.FunctionDef, nested: bool
    ) -> Iterator[Finding]:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_default(default):
                yield self.finding(
                    codebase,
                    module,
                    default.lineno,
                    f"lru_cache function {node.name}() has a mutable "
                    "default argument",
                    hint="use None + an in-body fallback, or a tuple",
                )
        for statement in ast.walk(node):
            if isinstance(statement, (ast.Global, ast.Nonlocal)):
                keyword = (
                    "global"
                    if isinstance(statement, ast.Global)
                    else "nonlocal"
                )
                yield self.finding(
                    codebase,
                    module,
                    statement.lineno,
                    f"lru_cache function {node.name}() declares "
                    f"{keyword} {', '.join(statement.names)}",
                    hint="cached results must be pure in their arguments",
                )
        if nested:
            yield self.finding(
                codebase,
                module,
                node.lineno,
                f"lru_cache function {node.name}() is defined inside "
                "another function",
                hint=(
                    "hoist it to module level: closures hide state from "
                    "the cache key and the cache never dies"
                ),
            )
