"""The ``python -m repro lint`` command.

Runs the invariant checkers over the source tree and reports findings
with file:line anchors.  Exit status: 0 when every finding is baselined
or suppressed inline, 1 when new findings exist (this is the CI gate),
2 on usage errors.

Maintenance verbs:

* ``--update-lock``     regenerate ``versions.lock`` after intentionally
                        changing an engine task (refuses to paper over a
                        source change without a version bump);
* ``--write-baseline``  accept the current findings as the baseline;
* ``--list-rules``      show every rule with its one-line contract.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.framework import (
    Codebase,
    all_checkers,
    apply_baseline,
    default_config,
    load_baseline,
    run_checkers,
    select_checkers,
    write_baseline,
)

__all__ = ["add_lint_parser", "check_rule_fixtures", "cmd_lint"]


def add_lint_parser(commands: argparse._SubParsersAction) -> None:
    lint = commands.add_parser(
        "lint",
        help="run the invariant lint suite",
        description=(
            "Machine-check the repo's structural invariants: dispatch "
            "exhaustiveness, cache-version soundness, determinism, "
            "lru_cache purity, import layering, and frozen-AST "
            "discipline."
        ),
    )
    lint.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="NAME",
        help=(
            "run only matching rules (repeatable; globs like "
            "'effects.*' work; see --list-rules)"
        ),
    )
    lint.add_argument(
        "--json",
        dest="json_path",
        default=None,
        metavar="PATH",
        help="also write a machine-readable report to PATH",
    )
    lint.add_argument(
        "--effects-json",
        dest="effects_json_path",
        default=None,
        metavar="PATH",
        help=(
            "also write the inferred effect summary of every function "
            "to PATH"
        ),
    )
    lint.add_argument(
        "--domains-json",
        dest="domains_json_path",
        default=None,
        metavar="PATH",
        help=(
            "also write the id-domain flow summary (pins, inferred "
            "signatures, events) to PATH"
        ),
    )
    lint.add_argument(
        "--check-rule-fixtures",
        dest="rule_fixture_dir",
        nargs="?",
        const="",
        default=None,
        metavar="DIR",
        help=(
            "verify every registered rule has a seeded-violation fixture "
            "test (checker class referenced under DIR, default "
            "tests/analysis) and exit"
        ),
    )
    lint.add_argument(
        "--baseline",
        nargs="?",
        const="",
        default=None,
        metavar="PATH",
        help=(
            "tolerate findings recorded in the baseline file (default "
            "path: src/repro/analysis/baseline.json)"
        ),
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="record the current findings as the accepted baseline",
    )
    lint.add_argument(
        "--update-lock",
        action="store_true",
        help="regenerate the cache-soundness versions.lock",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )


def _default_baseline_path(config) -> Path:
    return config.src_root / config.package / "analysis" / "baseline.json"


def check_rule_fixtures(fixture_dir: Path) -> list[str]:
    """Rules registered without a seeded-violation fixture test.

    Every checker must be exercised by at least one test module under
    ``fixture_dir`` that references its class by name (the convention
    throughout ``tests/analysis``: instantiate the checker against a
    seeded fixture package and assert it fires, plus a clean twin).
    A rule nobody can demonstrate firing is a rule that may have
    silently stopped working.
    """
    corpus = "\n".join(
        path.read_text(encoding="utf-8")
        for path in sorted(fixture_dir.glob("test_*.py"))
    )
    failures = []
    for checker in all_checkers():
        cls = type(checker).__name__
        if cls not in corpus:
            failures.append(
                f"rule {checker.name} ({cls}) has no fixture test under "
                f"{fixture_dir} — add a seeded violation + clean twin"
            )
    return failures


def cmd_lint(args: argparse.Namespace) -> int:
    config = default_config()

    if args.list_rules:
        for checker in all_checkers():
            print(f"{checker.name:<24s} {checker.description}")
        return 0

    if args.rule_fixture_dir is not None:
        fixture_dir = (
            Path(args.rule_fixture_dir)
            if args.rule_fixture_dir
            else config.src_root.parent / "tests" / "analysis"
        )
        if not fixture_dir.is_dir():
            print(f"error: no such fixture dir: {fixture_dir}", file=sys.stderr)
            return 2
        failures = check_rule_fixtures(fixture_dir)
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(
            f"ok: every rule has a fixture test under {fixture_dir} "
            f"({len(all_checkers())} rule(s))"
        )
        return 0

    if args.update_lock:
        from repro.analysis.cachesound import update_lock

        outcome = update_lock(config)
        if not outcome["written"]:
            print(
                "refusing to update versions.lock: these tasks changed "
                "source without a version bump:",
                file=sys.stderr,
            )
            for name in outcome["needs_bump"]:
                print(f"  {name}", file=sys.stderr)
            print(
                "bump each task's version in the registry first.",
                file=sys.stderr,
            )
            return 1
        print(f"versions.lock updated at {config.resolved_lock_path()}")
        return 0

    codebase = Codebase(config.src_root, config.package)
    try:
        ran = select_checkers(args.rule or ["*"], all_checkers())
        active, suppressed = run_checkers(
            config, rules=args.rule, codebase=codebase
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    baseline_path = _default_baseline_path(config)
    if args.baseline:  # explicit path given
        baseline_path = Path(args.baseline)

    if args.write_baseline:
        write_baseline(baseline_path, active)
        print(f"baseline with {len(active)} finding(s) → {baseline_path}")
        return 0

    fingerprints = (
        load_baseline(baseline_path)
        if args.baseline is not None or baseline_path.exists()
        else set()
    )
    new, baselined = apply_baseline(active, fingerprints)

    for finding in new:
        print(finding.render())
    summary = (
        f"{len(new)} finding(s), {len(baselined)} baselined, "
        f"{len(suppressed)} suppressed inline "
        f"({len(ran)} rule(s) over {config.src_root / config.package})"
    )
    print(("FAIL: " if new else "ok: ") + summary)

    if args.json_path:
        by_fingerprint = lambda f: f.fingerprint  # noqa: E731

        payload = {
            "findings": [
                f.to_json_dict() for f in sorted(new, key=by_fingerprint)
            ],
            "baselined": [
                f.to_json_dict()
                for f in sorted(baselined, key=by_fingerprint)
            ],
            "suppressed": [
                f.to_json_dict()
                for f in sorted(suppressed, key=by_fingerprint)
            ],
            "rules": [
                {"name": checker.name, "description": checker.description}
                for checker in sorted(ran, key=lambda c: c.name)
            ],
            "summary": {
                "findings": len(new),
                "baselined": len(baselined),
                "suppressed": len(suppressed),
                "rules": sorted(checker.name for checker in ran),
            },
        }
        Path(args.json_path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"lint report written to {args.json_path}")

    if args.effects_json_path:
        from repro.analysis.effects import analysis_for

        payload = analysis_for(codebase, config).summary_payload()
        Path(args.effects_json_path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"effect summaries written to {args.effects_json_path}")

    if args.domains_json_path:
        from repro.analysis.domains import domains_for

        payload = domains_for(codebase, config).summary_payload()
        Path(args.domains_json_path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"domain summaries written to {args.domains_json_path}")

    return 1 if new else 0
