"""The Fooling Lemma (Lemma 4.12) and its consequence (Prop 4.13).

Statement: for ``w₁, w₂, w₃ ∈ Σ*``, co-primitive ``u, v ∈ Σ⁺`` and
injective ``f``, if ``w₁·uᵖ·w₂·v^{f(p)}·w₃ ∈ L(φ)`` for all p, then also
``w₁·u^s·w₂·v^t·w₃ ∈ L(φ)`` for some ``s, t`` with ``f(s) ≠ t`` — so the
language ``{w₁·uᵖ·w₂·v^{f(p)}·w₃}`` is not FC-definable.

The proof chains the Primitive Power Lemma and the Pseudo-Congruence Lemma
(twice).  The executable artefact is a *fooling pair*: for a requested rank
``k``, two words

    member(p)  = w₁·uᵖ·w₂·v^{f(p)}·w₃      (in the language)
    foil(p,q)  = w₁·u^q·w₂·v^{f(p)}·w₃     (outside, since f injective)

that the lemma asserts are ≡_k, together with the full round-budget
bookkeeping of the chained applications — which unary equivalence rank the
construction ultimately rests on, and at what rank that premise could be
certified by the exact solver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.pow2 import KNOWN_MINIMAL_PAIRS, pow2_witness
from repro.ef.equivalence import equiv_k
from repro.words.conjugacy import are_coprimitive, stable_intersection_bound
from repro.words.factors import common_factors

__all__ = ["FoolingBudget", "FoolingPair", "fooling_budget", "fooling_pair"]


@dataclass(frozen=True)
class FoolingBudget:
    """Round bookkeeping for one Fooling Lemma application at rank ``k``.

    The proof runs, from the inside out:

    1. Primitive Power on ``u``: needs ``aᵖ ≡_{inner+3} a^q`` to get
       ``uᵖ ≡_inner u^q``;
    2. Pseudo-Congruence gluing ``w₁ · uᵖ · w₂`` (two applications with
       overheads r₁ = shared factors of w₁ and u-powers, r₂ = of the left
       part and w₂);
    3. Pseudo-Congruence gluing the left block with ``v^{f(p)}·w₃``
       (overhead r₃ = stabilised shared factors of u-powers and v-powers,
       Lemma 4.10).

    ``unary_rank`` is the rank of the unary premise the whole chain rests
    on; ``certified_rank`` is the highest rank ≤ unary_rank at which an
    actual (p, q) witness pair is exactly known (see
    ``core.pow2.KNOWN_MINIMAL_PAIRS``).
    """

    k: int
    r1: int
    r2: int
    r3: int
    inner: int
    unary_rank: int
    certified_rank: int

    @property
    def fully_certified(self) -> bool:
        """Whether the unary premise is certifiable at its full rank."""
        return self.certified_rank >= self.unary_rank


def _shared_factor_bound(fixed: str, base: str, probe: int = 8) -> int:
    """max length of factors shared by ``fixed`` and any power of ``base``.

    ``fixed`` is a fixed word, so its factor set is finite and the shared
    set stabilises once the power's length passes ``2·|fixed|``; probing at
    that exponent is exact.
    """
    if not fixed:
        return 0
    exponent = max(probe, (2 * len(fixed)) // len(base) + 2)
    return max(len(x) for x in common_factors(fixed, base * exponent))


def fooling_budget(
    k: int, w1: str, u: str, w2: str, v: str, w3: str
) -> FoolingBudget:
    """Compute the round budgets of the Fooling Lemma proof at rank ``k``."""
    if not are_coprimitive(u, v):
        raise ValueError(f"{u!r} and {v!r} are not co-primitive")
    r3 = max(
        stable_intersection_bound(u, v),
        _shared_factor_bound(w2, u),
        _shared_factor_bound(w2, v),
        _shared_factor_bound(w1 + w2, v),
        _shared_factor_bound(w3, u),
        _shared_factor_bound(w3, v),
    )
    outer = k + r3 + 2  # left block must be ≡ at this rank
    r1 = _shared_factor_bound(w1, u)
    r2 = _shared_factor_bound(w2, u)
    inner = outer + r1 + 2 + r2 + 2  # two Pseudo-Congruence applications
    unary_rank = inner + 3  # Primitive Power premise
    certified = max(
        (rank for rank in KNOWN_MINIMAL_PAIRS if rank <= unary_rank),
        default=0,
    )
    return FoolingBudget(k, r1, r2, r3, inner, unary_rank, certified)


@dataclass(frozen=True)
class FoolingPair:
    """A concrete fooling pair produced by :func:`fooling_pair`."""

    member: str
    foil: str
    p: int
    q: int
    budget: FoolingBudget

    def verify_equivalence(self, k: int, alphabet: str) -> bool:
        """Exact-solver check ``member ≡_k foil`` (small k only)."""
        return equiv_k(self.member, self.foil, k, alphabet)


def fooling_pair(
    k: int,
    w1: str,
    u: str,
    w2: str,
    v: str,
    w3: str,
    f: Callable[[int], int] = lambda p: p,
    max_exponent: int = 64,
) -> FoolingPair:
    """Instantiate the Fooling Lemma at rank ``k``.

    Picks the unary witness pair (p, q) at the highest certifiable rank
    (up to the budget's required rank) and assembles

        member = w₁·uᵖ·w₂·v^{f(p)}·w₃,   foil = w₁·u^q·w₂·v^{f(p)}·w₃.

    ``budget.fully_certified`` tells whether the unary premise was
    certified at the rank the proof demands (only possible for trivial
    budgets) or at the best exactly-known rank — the structural content of
    the pair (member in / foil out, by injectivity of f) is exact either
    way, and ``FoolingPair.verify_equivalence`` can check the conclusion
    directly for small k.
    """
    budget = fooling_budget(k, w1, u, w2, v, w3)
    witness = pow2_witness(
        min(budget.unary_rank, budget.certified_rank), max_exponent
    )
    p, q = witness.p, witness.q
    member = w1 + u * p + w2 + v * f(p) + w3
    foil = w1 + u * q + w2 + v * f(p) + w3
    return FoolingPair(member, foil, p, q, budget)
