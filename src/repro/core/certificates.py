"""Machine-checkable result bundles.

The reproduction's headline results — witness pairs, exact ≡_k verdicts,
synthesised separating sentences, reduction agreements — are serialised
into a plain-JSON bundle that a reviewer can re-verify *without trusting
the game solver*: every entry carries enough data for an independent
re-check (the witness words and membership claims, and for synthesised
sentences the formula text that ``repro.fc.parser`` + the model checker
validate directly).

``generate_bundle`` builds the bundle; ``verify_bundle`` re-checks every
claim with the model checker and oracles only (no game search), returning
the list of failures (empty on success).
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.pow2 import KNOWN_MINIMAL_PAIRS
from repro.core.witnesses import WITNESS_FAMILIES
from repro.ef.synthesis import SynthesisFailure, synthesize_distinguishing_sentence
from repro.fc.display import to_text
from repro.fc.parser import parse_fc
from repro.fc.semantics import defines_language_member
from repro.fc.syntax import quantifier_rank
from repro.words.generators import PAPER_LANGUAGES

__all__ = ["generate_bundle", "verify_bundle", "bundle_to_json"]


def _synthesis_entries(max_length: int = 3, k: int = 2) -> list[dict]:
    """Separating-sentence certificates for all short ≢_k pairs."""
    from repro.ef.equivalence import equiv_k
    from repro.words.generators import words_up_to

    entries = []
    words = list(words_up_to("ab", max_length))
    for i, w in enumerate(words):
        for v in words[i + 1 :]:
            if equiv_k(w, v, k, alphabet="ab"):
                continue
            try:
                phi = synthesize_distinguishing_sentence(w, v, k, "ab")
            except SynthesisFailure:  # pragma: no cover - solver agrees
                continue
            entries.append(
                {
                    "kind": "separating-sentence",
                    "left": w,
                    "right": v,
                    "rank": k,
                    "formula": to_text(phi),
                    "alphabet": "ab",
                }
            )
    return entries


def generate_bundle(
    synthesis_max_length: int = 3, witness_ranks: tuple[int, ...] = (0, 1)
) -> dict[str, Any]:
    """Produce the certificate bundle (a JSON-serialisable dict)."""
    witnesses = []
    for name in sorted(WITNESS_FAMILIES):
        family = WITNESS_FAMILIES[name]
        for k in witness_ranks:
            pair = family.pair(k)
            witnesses.append(
                {
                    "kind": "language-witness",
                    "language": name,
                    "paper_ref": family.paper_ref,
                    "rank": k,
                    "member": pair.member,
                    "foil": pair.foil,
                    "unary_pair": [pair.p, pair.q],
                }
            )
    return {
        "schema": "repro.certificates/1",
        "unary_minimal_pairs": {
            str(k): list(pair) for k, pair in sorted(KNOWN_MINIMAL_PAIRS.items())
        },
        "language_witnesses": witnesses,
        "separating_sentences": _synthesis_entries(synthesis_max_length),
    }


def verify_bundle(bundle: dict[str, Any]) -> list[str]:
    """Independently re-check every claim in a bundle.

    Uses only the membership oracles and the model checker — the game
    solver is *not* consulted, so a verifier need not trust it.  Returns
    human-readable failure descriptions (empty = all claims check out).
    """
    failures: list[str] = []
    if bundle.get("schema") != "repro.certificates/1":
        failures.append(f"unknown schema {bundle.get('schema')!r}")
        return failures
    for entry in bundle.get("language_witnesses", []):
        oracle = PAPER_LANGUAGES.get(entry["language"])
        if oracle is None:
            failures.append(f"unknown language {entry['language']!r}")
            continue
        if entry["member"] not in oracle:
            failures.append(
                f"{entry['language']}: claimed member {entry['member']!r} "
                "is not in the language"
            )
        if entry["foil"] in oracle:
            failures.append(
                f"{entry['language']}: claimed foil {entry['foil']!r} "
                "is in the language"
            )
    for entry in bundle.get("separating_sentences", []):
        try:
            phi = parse_fc(entry["formula"], entry["alphabet"])
        except Exception as error:  # noqa: BLE001 - reported, not raised
            failures.append(f"unparseable certificate: {error}")
            continue
        if quantifier_rank(phi) > entry["rank"]:
            failures.append(
                f"certificate for ({entry['left']!r}, {entry['right']!r}) "
                f"exceeds rank {entry['rank']}"
            )
        if not defines_language_member(
            entry["left"], phi, entry["alphabet"]
        ):
            failures.append(
                f"certificate false on left word {entry['left']!r}"
            )
        if defines_language_member(entry["right"], phi, entry["alphabet"]):
            failures.append(
                f"certificate true on right word {entry['right']!r}"
            )
    return failures


def bundle_to_json(bundle: dict[str, Any]) -> str:
    """Serialise a bundle to stable, human-diffable JSON."""
    return json.dumps(bundle, indent=2, ensure_ascii=False, sort_keys=True)
