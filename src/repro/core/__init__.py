"""The paper's contribution as an executable inexpressibility toolkit.

Lemma 3.6 witnesses (``pow2``), the Pseudo-Congruence and Primitive Power
Lemmas as certified operations, the Fooling Lemma, the witness families
for the six non-FC languages, and the Theorem 5.8 relation reductions.
"""

from repro.core.certificates import (
    bundle_to_json,
    generate_bundle,
    verify_bundle,
)
from repro.core.fooling import (
    FoolingBudget,
    FoolingPair,
    fooling_budget,
    fooling_pair,
)
from repro.core.inexpressibility import (
    BOUNDING_SEQUENCES,
    LanguageReport,
    RelationReport,
    language_report,
    relation_report,
)
from repro.core.pow2 import (
    KNOWN_MINIMAL_PAIRS,
    Pow2Witness,
    pow2_semilinearity_evidence,
    pow2_witness,
)
from repro.core.primitive_power import PrimitivePowerInstance
from repro.core.pseudo_congruence import PseudoCongruenceInstance, round_overhead
from repro.core.relations import (
    OracleAtom,
    PSI_REDUCTIONS,
    PsiReduction,
    RELATIONS,
    add_rel,
    morph_rel,
    mult_rel,
    num_a,
    oracle_for,
    perm_rel,
    psi_reduction,
    rev_rel,
    scatt_rel,
    shuff_rel,
)
from repro.core.witnesses import (
    WITNESS_FAMILIES,
    WitnessFamily,
    WitnessPair,
    witness_family,
)

__all__ = [
    "bundle_to_json",
    "generate_bundle",
    "verify_bundle",
    "FoolingBudget",
    "FoolingPair",
    "fooling_budget",
    "fooling_pair",
    "BOUNDING_SEQUENCES",
    "LanguageReport",
    "RelationReport",
    "language_report",
    "relation_report",
    "KNOWN_MINIMAL_PAIRS",
    "Pow2Witness",
    "pow2_semilinearity_evidence",
    "pow2_witness",
    "PrimitivePowerInstance",
    "PseudoCongruenceInstance",
    "round_overhead",
    "OracleAtom",
    "PSI_REDUCTIONS",
    "PsiReduction",
    "RELATIONS",
    "add_rel",
    "morph_rel",
    "mult_rel",
    "num_a",
    "oracle_for",
    "perm_rel",
    "psi_reduction",
    "rev_rel",
    "scatt_rel",
    "shuff_rel",
    "WITNESS_FAMILIES",
    "WitnessFamily",
    "WitnessPair",
    "witness_family",
]
