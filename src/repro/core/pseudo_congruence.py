"""The Pseudo-Congruence Lemma (Lemma 4.4) as a certified operation.

Statement: if ``Facs(w₁) ∩ Facs(w₂) = Facs(v₁) ∩ Facs(v₂)``, and with
``r = max{|u| : u ∈ Facs(w₁) ∩ Facs(w₂)}`` both ``w₁ ≡_{k+r+2} v₁`` and
``w₂ ≡_{k+r+2} v₂`` hold, then ``w₁·w₂ ≡_k v₁·v₂``.

This module packages the lemma as an *instance* object that

* checks the side condition and computes ``r``,
* builds the composed Duplicator strategy from the proof
  (:class:`repro.ef.composition.PseudoCongruenceDuplicator`) with look-up
  strategies of the caller's choice (exact-solver strategies by default),
* verifies the composed strategy exhaustively against every Spoiler line
  (a machine check of the proof on this instance), and
* optionally cross-checks the conclusion ``w₁w₂ ≡_k v₁v₂`` with the exact
  solver.

The exact solver can only certify look-up equivalences for small round
counts, so fully-provisioned instances (look-ups winning k+r+2 rounds)
are limited to small k and r; the harness reports precisely which premise
level it could certify.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ef.composition import PseudoCongruenceDuplicator
from repro.ef.equivalence import equiv_k, solver_for
from repro.ef.game import GameArena
from repro.ef.strategies import (
    IdentityDuplicator,
    SolverDuplicator,
    VerificationResult,
    exhaustively_verify_duplicator,
)
from repro.fc.structures import word_structure
from repro.words.factors import common_factors

__all__ = ["PseudoCongruenceInstance", "round_overhead"]


def round_overhead(w1: str, w2: str) -> int:
    """The lemma's ``r``: length of the longest shared factor of w₁, w₂."""
    return max(len(u) for u in common_factors(w1, w2))


@dataclass
class PseudoCongruenceInstance:
    """One application of Lemma 4.4: ``w₁·w₂ ≡_k v₁·v₂``.

    ``alphabet`` fixes the signature τ_Σ for all four words and both
    concatenations.
    """

    w1: str
    w2: str
    v1: str
    v2: str
    k: int
    alphabet: str

    def __post_init__(self) -> None:
        if common_factors(self.w1, self.w2) != common_factors(self.v1, self.v2):
            raise ValueError(
                "side condition violated: Facs(w1) ∩ Facs(w2) ≠ "
                "Facs(v1) ∩ Facs(v2)"
            )

    @property
    def r(self) -> int:
        return round_overhead(self.w1, self.w2)

    @property
    def lookup_rounds(self) -> int:
        """The round budget the proof demands of the look-up games."""
        return self.k + self.r + 2

    def premises_hold(self, lookup_rounds: int | None = None) -> bool:
        """Check ``w₁ ≡_n v₁`` and ``w₂ ≡_n v₂`` with the exact solver,
        where ``n`` defaults to the proof's ``k + r + 2``.

        Feasible only for small ``n``; identical word pairs short-circuit.
        """
        n = self.lookup_rounds if lookup_rounds is None else lookup_rounds
        return equiv_k(self.w1, self.v1, n, self.alphabet) and equiv_k(
            self.w2, self.v2, n, self.alphabet
        )

    def _lookup(self, w: str, v: str, rounds: int):
        if w == v:
            return IdentityDuplicator()
        solver = solver_for(w, v, self.alphabet)
        return SolverDuplicator(solver, rounds)

    def build_duplicator(
        self, lookup_rounds: int | None = None
    ) -> PseudoCongruenceDuplicator:
        """Construct the proof's composed Duplicator strategy.

        Look-up strategies are exact-solver strategies with
        ``lookup_rounds`` total rounds (default: the proof's k+r+2).
        Equal word pairs get the identity strategy, which wins any number
        of rounds.
        """
        rounds = self.lookup_rounds if lookup_rounds is None else lookup_rounds
        return PseudoCongruenceDuplicator(
            self.w1,
            self.w2,
            self.v1,
            self.v2,
            self._lookup(self.w1, self.v1, rounds),
            self._lookup(self.w2, self.v2, rounds),
        )

    def arena(self) -> GameArena:
        """The k-round arena on ``w₁w₂`` vs ``v₁v₂``."""
        return GameArena(
            word_structure(self.w1 + self.w2, self.alphabet),
            word_structure(self.v1 + self.v2, self.alphabet),
            self.k,
        )

    def verify_strategy(
        self, lookup_rounds: int | None = None
    ) -> VerificationResult:
        """Machine-check the composed strategy against every Spoiler line.

        Exhaustive over the k-round game tree; cost O((|A|+|B|)^k).
        """
        return exhaustively_verify_duplicator(
            self.arena(), lambda: self.build_duplicator(lookup_rounds)
        )

    def verify_conclusion(self) -> bool:
        """Cross-check ``w₁w₂ ≡_k v₁v₂`` directly with the exact solver."""
        return equiv_k(
            self.w1 + self.w2, self.v1 + self.v2, self.k, self.alphabet
        )
