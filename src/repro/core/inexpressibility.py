"""The top-level inexpressibility report generator.

Ties the whole toolkit together: for each language the paper treats, and
each relation of Theorem 5.8, assemble the full evidence chain —

1. witness pairs (member ∈ L, foil ∉ L) from the paper's construction,
2. exact ≡_k verification of the pair for solver-feasible ranks,
3. boundedness of the target language (so Lemma 5.4 lifts the result from
   FC to FC[REG], hence to generalized core spanners),
4. reduction agreement for the relations (L(ψ) ∩ Σ^{≤n} = L ∩ Σ^{≤n}).

This is what the ``inexpressibility_report`` example script prints and
what the E15/E17 benchmarks time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.relations import PSI_REDUCTIONS, oracle_for
from repro.core.witnesses import WITNESS_FAMILIES, WitnessPair
from repro.fc.semantics import defines_language_members
from repro.fcreg.bounded import is_bounded_by
from repro.words.generators import PAPER_LANGUAGES, words_up_to

__all__ = [
    "LanguageReport",
    "RelationReport",
    "language_report",
    "relation_report",
    "BOUNDING_SEQUENCES",
]

#: Explicit bounding sequences witnessing that each paper language is a
#: bounded language (the Lemma 5.4 side condition): L ⊆ w₁*·w₂*⋯wₙ*.
BOUNDING_SEQUENCES: dict[str, list[str]] = {
    "anbn": ["a", "b"],
    "ai_bj_leq": ["a", "b"],
    "L1": ["a", "ba"],
    "L2": ["a", "ba"],
    "L3": ["b", "a", "b"],
    "L4": ["b", "a", "b"],
    "L5": ["abaabb", "bbaaba"],
    "L6": ["a", "b", "ab"],
}


@dataclass
class LanguageReport:
    """Evidence that one paper language is not FC- (hence not FC[REG]-)
    definable."""

    language: str
    paper_ref: str
    pairs: list[WitnessPair] = field(default_factory=list)
    memberships_ok: bool = True
    equivalences: dict[int, bool] = field(default_factory=dict)
    bounded: bool = True

    @property
    def verdict(self) -> str:
        if not self.memberships_ok or not self.bounded:
            return "FAILED"
        if self.equivalences and not all(self.equivalences.values()):
            return "EQUIV-CHECK-FAILED"
        return "confirmed"


def language_report(
    name: str,
    ranks: tuple[int, ...] = (0, 1),
    verify_equivalence_up_to: int = 1,
    boundedness_probe: int = 12,
) -> LanguageReport:
    """Assemble the inexpressibility evidence for one language.

    ``ranks`` selects the k's for which witness pairs are built;
    ``verify_equivalence_up_to`` caps the exact-solver ≡_k cross-checks
    (the solver cost grows steeply with both rank and word length).
    """
    family = WITNESS_FAMILIES[name]
    oracle = PAPER_LANGUAGES[name]
    report = LanguageReport(name, family.paper_ref)
    for k in ranks:
        pair = family.pair(k)
        report.pairs.append(pair)
        if not pair.verify_memberships(oracle):
            report.memberships_ok = False
        if k <= verify_equivalence_up_to:
            report.equivalences[k] = pair.verify_equivalence(oracle.alphabet)
    sequence = BOUNDING_SEQUENCES[name]
    report.bounded = all(
        is_bounded_by(word, sequence)
        for word in oracle.members_up_to(boundedness_probe)
    )
    return report


@dataclass
class RelationReport:
    """Evidence that one Theorem 5.8 relation is not FC[REG]-definable."""

    relation: str
    target_language: str
    reduction_agrees: bool
    first_disagreement: str | None
    note: str


def relation_report(name: str, max_length: int = 8) -> RelationReport:
    """Check the ψ-reduction for one relation on ``Σ^{≤max_length}``.

    Builds ψ with the relation's oracle atom (the semantics any defining
    formula would have) and compares L(ψ) against the target language.
    """
    reduction = PSI_REDUCTIONS[name]
    oracle_language = PAPER_LANGUAGES[reduction.target_language]
    psi = reduction.build(oracle_for(name))
    first_bad: str | None = None
    # Batched sweep: one compiled program for ψ across the whole grid,
    # sharing chain decompositions, regex filters and oracle-atom truth
    # between words (the oracle atom is assignment-pure, so its verdict
    # per value tuple is memoised family-wide).
    memberships = defines_language_members(
        psi,
        oracle_language.alphabet,
        words_up_to(oracle_language.alphabet, max_length),
        scope=max_length,
    )
    for word, in_psi in memberships:
        if in_psi != (word in oracle_language):
            first_bad = word
            break
    return RelationReport(
        name,
        reduction.target_language,
        first_bad is None,
        first_bad,
        reduction.note,
    )
