"""Witness families for the paper's non-FC languages.

Lemma 3.5 (obs:equivToLang): L is not FC-definable if for every k there
are ``w ∈ L`` and ``v ∉ L`` with ``w ≡_k v``.  For each language treated
by the paper — ``aⁿbⁿ`` (Example 4.5), ``L₁`` (Prop 4.6), and L₁…L₆
(Lemma 4.14) — this module constructs the concrete witness pair the
paper's proof prescribes, parameterised by the unary Lemma 3.6 pair the
chain bootstraps from.

Each :class:`WitnessFamily` records the *required* unary rank for a target
rank k (the bookkeeping of the chained lemmas) and builds pairs either
fully-certified (when the required rank ≤ 2, the exact solver's reach) or
from the best exactly-known unary pair, flagged as such.  Membership of
the two words (member ∈ L, foil ∉ L) is always checked against the
ground-truth oracle, and ``verify_pair`` cross-checks ``member ≡_k foil``
with the exact solver where tractable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.pow2 import KNOWN_MINIMAL_PAIRS, pow2_witness
from repro.ef.equivalence import equiv_k
from repro.words.generators import (
    L5_LEFT,
    L5_RIGHT,
    PAPER_LANGUAGES,
    LanguageOracle,
)

__all__ = ["WitnessPair", "WitnessFamily", "WITNESS_FAMILIES", "witness_family"]


@dataclass(frozen=True)
class WitnessPair:
    """A (member, foil) pair claimed ≡_k by the paper's construction."""

    language: str
    k: int
    member: str
    foil: str
    p: int
    q: int
    required_unary_rank: int
    certified_unary_rank: int

    @property
    def fully_certified(self) -> bool:
        return self.certified_unary_rank >= self.required_unary_rank

    def verify_memberships(self, oracle: LanguageOracle) -> bool:
        """member ∈ L and foil ∉ L (always cheap, always exact)."""
        return self.member in oracle and self.foil not in oracle

    def verify_equivalence(self, alphabet: str, k: int | None = None) -> bool:
        """Exact-solver check of ``member ≡_k foil`` (small k only)."""
        rank = self.k if k is None else k
        return equiv_k(self.member, self.foil, rank, alphabet)


@dataclass(frozen=True)
class WitnessFamily:
    """A language plus its paper-prescribed witness construction.

    ``rank_overhead``: the proof's bookkeeping — the unary premise rank is
    ``k + rank_overhead``.  ``build`` maps the unary pair (p, q) to
    (member, foil).
    """

    language: str
    oracle: LanguageOracle
    rank_overhead: int
    build: Callable[[int, int], tuple[str, str]]
    paper_ref: str

    def pair(self, k: int, max_exponent: int = 64) -> WitnessPair:
        """Build the rank-k witness pair.

        Uses the unary pair at rank ``min(k + rank_overhead, best known)``;
        the returned pair records both the required and the certified rank.
        """
        required = k + self.rank_overhead
        certified = max(
            (rank for rank in KNOWN_MINIMAL_PAIRS if rank <= required),
            default=0,
        )
        witness = pow2_witness(min(required, certified), max_exponent)
        member, foil = self.build(witness.p, witness.q)
        return WitnessPair(
            self.language,
            k,
            member,
            foil,
            witness.p,
            witness.q,
            required,
            certified,
        )


def _pair_anbn(p: int, q: int) -> tuple[str, str]:
    # Example 4.5 (r = 0): a^q b^p ≡_k a^p b^p; member is a^p b^p.
    return "a" * p + "b" * p, "a" * q + "b" * p


def _pair_l1(p: int, q: int) -> tuple[str, str]:
    # Prop 4.6 (r = 1): a^q (ba)^q ≡_k a^p (ba)^q.
    return "a" * q + "ba" * q, "a" * p + "ba" * q


def _pair_l2(p: int, q: int) -> tuple[str, str]:
    # L2 = {a^i (ba)^j | 1 ≤ i ≤ j}: a^p (ba)^q is in (p ≤ q); swapping the
    # a-block exponent to q > q is impossible, so vary the (ba) block via
    # the Primitive Power Lemma instead: a^q (ba)^q ∈ L2, a^q (ba)^p ∉ L2.
    return "a" * q + "ba" * q, "a" * q + "ba" * p


def _pair_l3(p: int, q: int) -> tuple[str, str]:
    # L3 at n = 0 degenerates to a^m b^m (the paper's own reduction).
    return "a" * p + "b" * p, "a" * q + "b" * p


def _pair_l4(p: int, q: int) -> tuple[str, str]:
    # L4 at n = 1: b a^m b^m; vary the trailing block (r = 1).
    return "b" + "a" * p + "b" * p, "b" + "a" * p + "b" * q


def _pair_l5(p: int, q: int) -> tuple[str, str]:
    # L5 via the Fooling Lemma with u = abaabb, v = bbaaba, f = id.
    return L5_LEFT * p + L5_RIGHT * p, L5_LEFT * q + L5_RIGHT * p


def _pair_l6(p: int, q: int) -> tuple[str, str]:
    # L6: vary the a-block; a^p b^p (ab)^p ∈ L6, a^q b^p (ab)^p ∉ L6.
    return "a" * p + "b" * p + "ab" * p, "a" * q + "b" * p + "ab" * p


#: The paper's witness constructions, keyed by language name.
#: rank_overhead values follow the proofs:
#:   anbn/L3: r=0 congruence                       → k+2
#:   L1:      r=1 congruence (Prop 4.6 uses k+3)   → k+3
#:   L2:      Primitive Power (k+3) then r=1 glue  → k+6
#:   L4:      r=1 congruence (proof uses k+3)      → k+3
#:   L5:      Fooling Lemma chain (see fooling.py) → k+10 (computed bound)
#:   L6:      Example 4.5 at k+4, then r=2 glue    → k+6
WITNESS_FAMILIES: dict[str, WitnessFamily] = {
    "anbn": WitnessFamily(
        "anbn", PAPER_LANGUAGES["anbn"], 2, _pair_anbn, "Example 4.5"
    ),
    "L1": WitnessFamily(
        "L1", PAPER_LANGUAGES["L1"], 3, _pair_l1, "Proposition 4.6"
    ),
    "L2": WitnessFamily(
        "L2", PAPER_LANGUAGES["L2"], 6, _pair_l2, "Lemma 4.14 (L2)"
    ),
    "L3": WitnessFamily(
        "L3", PAPER_LANGUAGES["L3"], 2, _pair_l3, "Lemma 4.14 (L3, n=0 slice)"
    ),
    "L4": WitnessFamily(
        "L4", PAPER_LANGUAGES["L4"], 3, _pair_l4, "Lemma 4.14 (L4, n=1 slice)"
    ),
    "L5": WitnessFamily(
        "L5", PAPER_LANGUAGES["L5"], 10, _pair_l5, "Lemma 4.14 (L5, Fooling)"
    ),
    "L6": WitnessFamily(
        "L6", PAPER_LANGUAGES["L6"], 6, _pair_l6, "Lemma 4.14 (L6)"
    ),
}


def witness_family(name: str) -> WitnessFamily:
    """Look up a witness family by the paper's language name."""
    try:
        return WITNESS_FAMILIES[name]
    except KeyError:
        raise KeyError(
            f"unknown language {name!r}; available: "
            f"{sorted(WITNESS_FAMILIES)}"
        ) from None
