"""The Primitive Power Lemma (Lemma 4.8) as a certified operation.

Statement: if ``aᵖ ≡_{k+3} a^q`` then ``wᵖ ≡_k w^q`` for every primitive
word ``w``.  As with the Pseudo-Congruence Lemma, this module wraps one
application into an instance object that can

* certify the premise with the (fast, unary) exact solver,
* build the proof's Duplicator strategy (exp_w look-up + Lemma 4.7
  refactoring) and machine-check it against every Spoiler line,
* cross-check the conclusion with the exact solver directly.

Premise feasibility: ``aᵖ ≡_{k+3} a^q`` with p ≠ q is only certifiable for
k + 3 ≤ 2 by exact search (the minimal ≡₃ pair exceeds exponent 48), so
fully-provisioned non-trivial instances need k < 0 — the harness therefore
also supports *under-provisioned* look-ups (fewer than k+3 rounds) and
*identity* instances (p = q), and reports which level it certified.  The
conclusion cross-check is premise-free and is run wherever tractable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ef.composition import PrimitivePowerDuplicator
from repro.ef.equivalence import equiv_k, solver_for
from repro.ef.game import GameArena
from repro.ef.strategies import (
    IdentityDuplicator,
    SolverDuplicator,
    VerificationResult,
    exhaustively_verify_duplicator,
)
from repro.ef.unary import unary_equiv_k
from repro.fc.structures import word_structure
from repro.words.primitivity import is_primitive

__all__ = ["PrimitivePowerInstance"]


@dataclass
class PrimitivePowerInstance:
    """One application of Lemma 4.8: ``baseᵖ ≡_k base^q``."""

    base: str
    p: int
    q: int
    k: int
    alphabet: str

    def __post_init__(self) -> None:
        if not is_primitive(self.base):
            raise ValueError(f"{self.base!r} is not primitive")
        missing = set(self.base) - set(self.alphabet)
        if missing:
            raise ValueError(f"alphabet misses letters {sorted(missing)}")

    @property
    def lookup_rounds(self) -> int:
        """The proof's look-up budget: k + 3."""
        return self.k + 3

    def premise_holds(self, lookup_rounds: int | None = None) -> bool:
        """``aᵖ ≡_n a^q`` via the fast unary solver (default n = k+3)."""
        n = self.lookup_rounds if lookup_rounds is None else lookup_rounds
        return unary_equiv_k(self.p, self.q, n)

    def build_duplicator(
        self, lookup_rounds: int | None = None
    ) -> PrimitivePowerDuplicator:
        """The proof's strategy: exp_w projection + unary look-up game."""
        rounds = self.lookup_rounds if lookup_rounds is None else lookup_rounds
        if self.p == self.q:
            lookup = IdentityDuplicator()
        else:
            solver = solver_for("a" * self.p, "a" * self.q, "a")
            lookup = SolverDuplicator(solver, rounds)
        return PrimitivePowerDuplicator(self.base, self.p, self.q, lookup)

    def arena(self) -> GameArena:
        return GameArena(
            word_structure(self.base * self.p, self.alphabet),
            word_structure(self.base * self.q, self.alphabet),
            self.k,
        )

    def verify_strategy(
        self, lookup_rounds: int | None = None
    ) -> VerificationResult:
        """Machine-check the strategy against every Spoiler line (k rounds)."""
        return exhaustively_verify_duplicator(
            self.arena(), lambda: self.build_duplicator(lookup_rounds)
        )

    def verify_conclusion(self) -> bool:
        """Cross-check ``baseᵖ ≡_k base^q`` with the generic exact solver."""
        return equiv_k(
            self.base * self.p, self.base * self.q, self.k, self.alphabet
        )
