"""Lemma 3.6 (pow2), executable.

The lemma: for every k there exist p ≠ q with ``aᵖ ≡_k a^q``.  The paper's
proof is indirect (``{a^{2ⁿ}}`` is not semi-linear, hence not FC-definable,
hence distinguishing all pairs at some fixed rank is impossible).  The
executable version has two faces:

* the *witness search* — find the minimal such pair by exact game solving
  (:func:`pow2_witness`), which is the building block every later
  experiment bootstraps from;
* the *non-semi-linearity evidence* — show that the length set {2ⁿ} has no
  eventually-periodic structure on any probed window
  (:func:`pow2_semilinearity_evidence`), mirroring the proof's engine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ef.unary import minimal_equivalent_pair, unary_equiv_k
from repro.semilinear.unary import detect_eventual_periodicity, powers_of_two

__all__ = ["Pow2Witness", "pow2_witness", "pow2_semilinearity_evidence"]

#: Exactly-known minimal pairs (p, q) with aᵖ ≡_k a^q, solver-verified.
#: Recomputing them is cheap for k ≤ 1 and takes seconds for k = 2; the
#: table lets higher layers (Pseudo-Congruence instances, witness
#: generators) bootstrap instantly.  k = 3 is beyond the exact solver's
#: feasible range (no pair exists below exponent 48; see EXPERIMENTS.md).
KNOWN_MINIMAL_PAIRS: dict[int, tuple[int, int]] = {
    0: (1, 2),
    1: (3, 4),
    2: (12, 14),
}


@dataclass(frozen=True)
class Pow2Witness:
    """A verified pair ``aᵖ ≡_k a^q`` with ``p < q``."""

    k: int
    p: int
    q: int

    def words(self, letter: str = "a") -> tuple[str, str]:
        return letter * self.p, letter * self.q


def pow2_witness(
    k: int, max_exponent: int = 64, verify: bool = True
) -> Pow2Witness:
    """Return the minimal Lemma 3.6 witness for rank ``k``.

    Uses the precomputed table when available (optionally re-verifying the
    equivalence with the exact solver); otherwise runs the bounded search.
    Raises ``LookupError`` when no pair exists under ``max_exponent`` —
    the lemma guarantees existence, but not within any concrete bound, and
    for k ≥ 3 the minimal pair lies beyond the exact solver's reach.
    """
    known = KNOWN_MINIMAL_PAIRS.get(k)
    if known is not None:
        p, q = known
        if verify and not unary_equiv_k(p, q, k):
            raise AssertionError(
                f"table entry ({p}, {q}) for k={k} failed re-verification"
            )
        return Pow2Witness(k, p, q)
    pair = minimal_equivalent_pair(k, max_exponent)
    if pair is None:
        raise LookupError(
            f"no pair p < q ≤ {max_exponent} with a^p ≡_{k} a^q; "
            "Lemma 3.6 guarantees one exists at larger exponents"
        )
    return Pow2Witness(k, *pair)


def pow2_semilinearity_evidence(bound: int = 512) -> dict:
    """Evidence that ``{2ⁿ}`` is not semi-linear (the proof's engine).

    Probes ``{2ⁿ} ∩ {0..bound}`` for an eventually-periodic structure and
    reports the outcome plus the doubling gaps.  A semi-linear set would
    exhibit a (threshold, period) pair on a window this large; ``{2ⁿ}``
    exhibits none because its gaps grow without bound.
    """
    sample = powers_of_two(bound)
    detected = detect_eventual_periodicity(sample, bound)
    ordered = sorted(sample)
    gaps = [b - a for a, b in zip(ordered, ordered[1:])]
    return {
        "bound": bound,
        "members": ordered,
        "gaps": gaps,
        "gaps_strictly_increasing": gaps == sorted(set(gaps)),
        "eventually_periodic": detected,
    }
