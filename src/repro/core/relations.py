"""Theorem 5.8: relations not selectable by generalized core spanners.

The relations — Num_a, Add, Mult, Scatt, Perm, Rev, Shuff, Morph_h — are
implemented as plain predicates, and the proof's reduction formulas
ψ₁…ψ₆, ψ₅′, ψ_morph are implemented as *higher-order builders*: given any
formula (or oracle) standing in for the hypothetical φ_R, they produce the
FC[REG] sentence whose language the proof claims equals Lᵢ.

The executable experiment (E17) plugs in an :class:`OracleAtom` — an atom
whose truth is the Python predicate itself, i.e. the semantics a defining
formula *would* have — and checks ``L(ψᵢ) ∩ Σ^{≤n} = Lᵢ ∩ Σ^{≤n}``.
Combined with Lᵢ ∉ L(FC) (the witness families) and Lemma 5.4 (Lᵢ is
bounded), this machine-checks the reduction step of the theorem.

Two small corrections to the paper's appendix formulas, both validated by
the agreement check (see EXPERIMENTS.md):

* ψ₂ uses ``(x ∈̇ a+)`` rather than ``a*`` — with ``a*`` the defined
  language is {aⁱ(ba)ʲ | 0 ≤ i ≤ j}, not L₂'s 1 ≤ i ≤ j;
* ψ₆ adds the constraint ``(z ∈̇ (ab)*)`` — without it the shuffle block
  is unconstrained and the language properly contains L₆.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

from repro.fc.builders import phi_whole_word
from repro.fc.structures import BOTTOM, WordStructure
from repro.fc.syntax import Exists, Formula, Term, Var, conjunction
from repro.fc.sugar import chain
from repro.fcreg.constraints import in_regex
from repro.words.generators import (
    in_shuffle,
    is_permutation,
    is_scattered_subword,
)
from repro.words.morphisms import PAPER_MORPHISM, Morphism

__all__ = [
    "OracleAtom",
    "RELATIONS",
    "num_a",
    "add_rel",
    "mult_rel",
    "scatt_rel",
    "perm_rel",
    "rev_rel",
    "shuff_rel",
    "morph_rel",
    "psi_reduction",
    "PSI_REDUCTIONS",
    "PsiReduction",
    "oracle_for",
]


@dataclass(frozen=True, repr=False)
class OracleAtom(Formula):
    """An atom whose truth is an arbitrary Python predicate on factors.

    Stands in for the hypothetical defining formula φ_R in the Theorem 5.8
    reductions: it has exactly the semantics such a formula would have
    (true iff the predicate holds on the assigned factors).  Rank 0.
    """

    variables: tuple[Var, ...]
    predicate: Callable[..., bool]
    name: str = "R"

    #: Truth depends only on the assigned values (never on the structure),
    #: so batched sweeps may memoise it per value tuple (repro.fc.sweep).
    _assignment_pure = True

    def __repr__(self) -> str:
        args = ", ".join(v.name for v in self.variables)
        return f"{self.name}({args})"

    def _quantifier_rank(self) -> int:
        return 0

    def _atom_terms(self) -> Iterator[Term]:
        yield from self.variables

    def _substitute(self, mapping: dict) -> "OracleAtom":
        replaced = tuple(mapping.get(v, v) for v in self.variables)
        return OracleAtom(replaced, self.predicate, self.name)

    # repro-lint: effects[pure] predicate is contractually a pure function of the string values — the _assignment_pure declaration relies on it
    def _evaluate(self, structure: WordStructure, assignment: dict) -> bool:
        values = []
        for variable in self.variables:
            value = assignment[variable]
            if value is BOTTOM:
                return False
            values.append(value)
        return self.predicate(*values)


# --- the relations -----------------------------------------------------------


def num_a(x: str, y: str, letter: str = "a") -> bool:
    """Num_a = {(x, y) : |x|_a = |y|_a}."""
    return x.count(letter) == y.count(letter)


def add_rel(x: str, y: str, z: str) -> bool:
    """Add = {(x, y, z) : |z| = |x| + |y|}."""
    return len(z) == len(x) + len(y)


def mult_rel(x: str, y: str, z: str) -> bool:
    """Mult = {(x, y, z) : |z| = |x| · |y|}."""
    return len(z) == len(x) * len(y)


def scatt_rel(x: str, y: str) -> bool:
    """Scatt = {(x, y) : x ⊑_scatt y}."""
    return is_scattered_subword(x, y)


def perm_rel(x: str, y: str) -> bool:
    """Perm = {(x, y) : x is a permutation of y}."""
    return is_permutation(x, y)


def rev_rel(x: str, y: str) -> bool:
    """Rev = {(x, y) : x is the reverse of y}."""
    return x == y[::-1]


def shuff_rel(x: str, y: str, z: str) -> bool:
    """Shuff = {(x, y, z) : z ∈ x ⧢ y}."""
    return in_shuffle(z, x, y)


def morph_rel(x: str, y: str, morphism: Morphism = PAPER_MORPHISM) -> bool:
    """Morph_h = {(x, y) : y = h(x)} (default: the proof's a↦b, b↦b)."""
    try:
        return morphism(x) == y
    except ValueError:
        return False


#: name → (predicate, arity)
RELATIONS: dict[str, tuple[Callable[..., bool], int]] = {
    "Num_a": (num_a, 2),
    "Add": (add_rel, 3),
    "Mult": (mult_rel, 3),
    "Scatt": (scatt_rel, 2),
    "Perm": (perm_rel, 2),
    "Rev": (rev_rel, 2),
    "Shuff": (shuff_rel, 3),
    "Morph_h": (morph_rel, 2),
}


# --- the ψ reductions ----------------------------------------------------------


@dataclass(frozen=True)
class PsiReduction:
    """One Theorem 5.8 reduction: relation name, target language name,
    the regular-constraint patterns per block, and the formula builder."""

    relation: str
    target_language: str
    build: Callable[[Formula], Formula]
    note: str = ""


def _blocks(
    u: Var, variables: Sequence[Var], patterns: Sequence[str | None]
) -> list[Formula]:
    """``φ_w(u) ∧ (u ≐ x₁⋯xₙ) ∧ ⋀ (xᵢ ∈̇ γᵢ)`` (None = unconstrained)."""
    parts: list[Formula] = [phi_whole_word(u), chain(u, list(variables))]
    for variable, pattern in zip(variables, patterns):
        if pattern is not None:
            parts.append(in_regex(variable, pattern))
    return parts


def _close(u: Var, variables: Sequence[Var], body: Formula) -> Formula:
    result = body
    for variable in reversed(list(variables)):
        result = Exists(variable, result)
    return Exists(u, result)


def _psi(
    patterns: Sequence[str | None],
    atom_vars: Sequence[int],
    include_empty_word: bool = False,
) -> Callable[[Formula], Formula]:
    """Build ψ := ∃u,x₁…xₙ: blocks ∧ φ_R(x_{i₁}, …), where the relation
    atom receives the block variables selected by ``atom_vars`` and
    ``relation_formula`` is substituted in for φ_R.

    ``include_empty_word`` adds the disjunct "the input is ε" — needed
    when the block patterns use ``+`` but the target language contains ε
    (the ψ₆ case).
    """

    def builder(relation_formula: Formula) -> Formula:
        from repro.fc.builders import phi_epsilon
        from repro.fc.syntax import Or, free_variables, substitute

        u = Var("𝔲")
        variables = [Var(f"x{i + 1}") for i in range(len(patterns))]
        free = sorted(free_variables(relation_formula), key=lambda v: v.name)
        wanted = [variables[i] for i in atom_vars]
        if len(free) != len(wanted):
            raise ValueError(
                f"relation formula has {len(free)} free variables, reduction "
                f"expects {len(wanted)}"
            )
        atom = substitute(relation_formula, dict(zip(free, wanted)))
        body = conjunction(_blocks(u, variables, patterns) + [atom])
        psi = _close(u, variables, body)
        if include_empty_word:
            empty_u = Var("𝔲ε")
            empty_case = Exists(
                empty_u,
                conjunction([phi_whole_word(empty_u), phi_epsilon(empty_u)]),
            )
            psi = Or(empty_case, psi)
        return psi

    return builder


#: The paper's reductions (appendix, proof of Theorem 5.8), with the two
#: corrections described in the module docstring.
PSI_REDUCTIONS: dict[str, PsiReduction] = {
    "Num_a": PsiReduction(
        "Num_a", "L1", _psi(["a*", "(ba)*"], [0, 1])
    ),
    "Scatt": PsiReduction(
        "Scatt",
        "L2",
        _psi(["a+", "(ba)*"], [0, 1]),
        note="paper's ψ₂ uses a*; a+ is needed for L₂'s 1 ≤ i",
    ),
    "Add": PsiReduction(
        "Add", "L3", _psi(["b*", "a*", "b*"], [0, 1, 2])
    ),
    "Mult": PsiReduction(
        "Mult", "L4", _psi(["b*", "a*", "b*"], [0, 1, 2])
    ),
    "Perm": PsiReduction(
        "Perm", "L5", _psi(["(abaabb)*", "(bbaaba)*"], [0, 1])
    ),
    "Rev": PsiReduction(
        "Rev", "L5", _psi(["(abaabb)*", "(bbaaba)*"], [0, 1])
    ),
    "Shuff": PsiReduction(
        "Shuff",
        "L6",
        _psi(["a+", "b+", "(ab)*"], [0, 1, 2], include_empty_word=True),
        note="paper's ψ₆ leaves the shuffle block unconstrained and, via "
        "a⁺/b⁺, misses ε ∈ L₆; we add (z ∈̇ (ab)*) and the ε disjunct",
    ),
    "Morph_h": PsiReduction(
        "Morph_h", "anbn", _psi(["a*", None], [0, 1])
    ),
}


def psi_reduction(relation: str) -> PsiReduction:
    """Look up the reduction for a Theorem 5.8 relation."""
    try:
        return PSI_REDUCTIONS[relation]
    except KeyError:
        raise KeyError(
            f"unknown relation {relation!r}; available: "
            f"{sorted(PSI_REDUCTIONS)}"
        ) from None


def oracle_for(relation: str) -> OracleAtom:
    """The :class:`OracleAtom` with the exact semantics φ_R would have."""
    predicate, arity = RELATIONS[relation]
    variables = tuple(Var(f"r{i}") for i in range(arity))
    return OracleAtom(variables, predicate, relation)
