"""Query evaluation behind the serve daemon, socket-free.

:class:`QueryService` owns the semantic dispatch: one method per
protocol op, each taking the validated request object and returning the
``result`` payload.  The daemon wraps this in the wire envelope; tests
drive it directly.  The service holds no sockets and no threads — the
only shared state is the process-global artifact store (activated by the
daemon before serving) and the kernel's interning caches, both of which
are already safe under the daemon's thread-per-connection model because
every query path funnels through ``lru_cache``/store reads.
"""

from __future__ import annotations

from typing import Any

from repro.serve.protocol import PROTOCOL_VERSION, ProtocolError
from repro.store import runtime as store_runtime
from repro.store import stats as store_stats

__all__ = ["QueryService"]


class QueryService:
    """Answers protocol queries against the loaded reproduction stack."""

    def dispatch(self, request: dict[str, Any]) -> Any:
        """The ``result`` payload for a validated ``request``."""
        handler = getattr(self, f"op_{request['op']}")
        return handler(request)

    def op_ping(self, request: dict[str, Any]) -> dict[str, Any]:
        return {"protocol": PROTOCOL_VERSION}

    def op_stats(self, request: dict[str, Any]) -> dict[str, Any]:
        store = store_runtime.active()
        return {
            "store": store.describe() if store is not None else None,
            "counters": store_stats.snapshot(),
        }

    def op_membership(self, request: dict[str, Any]) -> dict[str, Any]:
        from repro.fc.builders import paper_formula
        from repro.fc.parser import FCParseError, parse_fc
        from repro.fc.semantics import defines_language_member
        from repro.fc.syntax import free_variables

        word = request["word"]
        named = request.get("formula")
        text = request.get("text")
        if (named is None) == (text is None):
            raise ProtocolError(
                "membership: pass exactly one of 'formula' (a paper "
                "formula name) or 'text' (FC syntax)"
            )
        if named is not None:
            try:
                phi, alphabet = paper_formula(named)
            except KeyError as error:
                raise ProtocolError(f"membership: {error.args[0]}") from None
            alphabet = request.get("alphabet") or alphabet
        else:
            alphabet = (
                request.get("alphabet") or "".join(sorted(set(word))) or "a"
            )
            try:
                phi = parse_fc(text, alphabet)
            except FCParseError as error:
                raise ProtocolError(f"membership: parse error: {error}")
            if free_variables(phi):
                names = sorted(v.name for v in free_variables(phi))
                raise ProtocolError(
                    f"membership: formula is open (free: {names})"
                )
        return {
            "word": word,
            "alphabet": alphabet,
            "member": defines_language_member(word, phi, alphabet),
        }

    def op_equiv(self, request: dict[str, Any]) -> dict[str, Any]:
        from repro.ef.equivalence import equiv_k

        w, v, k = request["w"], request["v"], request["k"]
        if k < 0:
            raise ProtocolError("equiv: k must be ≥ 0")
        return {
            "w": w,
            "v": v,
            "k": k,
            "equivalent": equiv_k(w, v, k, request.get("alphabet")),
        }

    def op_rank(self, request: dict[str, Any]) -> dict[str, Any]:
        from repro.ef.equivalence import distinguishing_rank

        w, v = request["w"], request["v"]
        max_k = request.get("max_k", 3)
        if max_k < 0:
            raise ProtocolError("rank: max_k must be ≥ 0")
        return {
            "w": w,
            "v": v,
            "max_k": max_k,
            "rank": distinguishing_rank(w, v, max_k, request.get("alphabet")),
        }

    def op_spanner(self, request: dict[str, Any]) -> dict[str, Any]:
        from repro.spanners import extract

        document = request["document"]
        try:
            spanner = extract(request["pattern"])
        except ValueError as error:
            raise ProtocolError(f"spanner: bad pattern: {error}")
        relation = spanner.evaluate(document)
        order = sorted(relation.schema)
        rows = sorted(
            [
                {
                    var: {
                        "start": span.start,
                        "end": span.end,
                        "content": span.content(document),
                    }
                    for var, span in row.items()
                }
                for row in relation
            ],
            key=lambda row: [
                (row[var]["start"], row[var]["end"]) for var in order
            ],
        )
        return {
            "document": document,
            "schema": order,
            "class": spanner.classify(),
            "rows": rows,
        }

    def op_shutdown(self, request: dict[str, Any]) -> dict[str, Any]:
        # The daemon watches for this op and stops its loop after the
        # response is flushed; as a bare service call it's a no-op ack.
        return {"stopping": True}
