"""``python -m repro serve`` and ``python -m repro warm``.

``serve`` runs the long-lived daemon; ``warm`` prebuilds store artifacts
so a later ``serve`` or ``run --store`` starts hot.  Both default to the
same store resolution as ``run --store`` (bare flag → ``$REPRO_STORE_DIR``
or ``.repro-store``), except that for these two commands the store is
the point, so it is on by default rather than opt-in.
"""

from __future__ import annotations

import argparse
import itertools
from typing import Any

from repro.engine.cli import STORE_DEFAULT, resolve_store
from repro.store import stats as store_stats

__all__ = ["add_serve_parser", "add_warm_parser", "cmd_serve", "cmd_warm"]

#: The words behind the heaviest engine tasks (``prim/equiv/anbn-k2``,
#: ``prim/equiv/abpow-k2``): warming these is what makes the second
#: engine run measurably faster.
_DEFAULT_BATTERY: tuple[tuple[str, str, int], ...] = (
    ("a" * 12 + "b" * 12, "a" * 14 + "b" * 12, 2),
    ("ab" * 12, "ab" * 14, 2),
)


def add_serve_parser(commands: argparse._SubParsersAction) -> None:
    serve = commands.add_parser(
        "serve",
        help="long-lived query daemon (membership/equiv/rank/spanner)",
        description=(
            "Start a JSON-lines TCP daemon that loads hot tables once "
            "and answers membership, EF-equivalence, rank, and spanner "
            "queries until a shutdown request."
        ),
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port",
        type=int,
        default=7357,
        help="bind port (0 picks an ephemeral port; default: 7357)",
    )
    serve.add_argument(
        "--store",
        nargs="?",
        const=STORE_DEFAULT,
        default=STORE_DEFAULT,
        metavar="SPEC",
        help=(
            "artifact store to hydrate from (default: $REPRO_STORE_DIR "
            "or .repro-store; pass 'memory' for an ephemeral store, "
            "'off' to disable)"
        ),
    )


def add_warm_parser(commands: argparse._SubParsersAction) -> None:
    warm = commands.add_parser(
        "warm",
        help="prebuild kernel artifacts into the persistent store",
        description=(
            "Build intern tables, automorphism groups, EF transposition "
            "tables and paper-formula sweep tables for a battery of "
            "words, publishing everything to the artifact store so "
            "later runs and daemons start warm."
        ),
    )
    warm.add_argument(
        "words",
        nargs="*",
        metavar="WORD",
        help=(
            "words to warm (default: the heavyweight "
            "prim/equiv/anbn-k2 and abpow battery)"
        ),
    )
    warm.add_argument(
        "--alphabet",
        default=None,
        help="signature alphabet (default: letters of the words)",
    )
    warm.add_argument(
        "--rank",
        type=int,
        default=2,
        help="EF rank to warm pairwise equivalences at (default: 2)",
    )
    warm.add_argument(
        "--formulas",
        action="store_true",
        help="also evaluate the named paper formulas on every word "
        "(seeds sweep tables and assignment records)",
    )
    warm.add_argument(
        "--store",
        nargs="?",
        const=STORE_DEFAULT,
        default=STORE_DEFAULT,
        metavar="SPEC",
        help=(
            "target store (default: $REPRO_STORE_DIR or .repro-store; "
            "memory, sqlite:PATH, or a directory)"
        ),
    )


def _resolve(spec: str | None) -> Any:
    if spec == "off":
        return None
    return resolve_store(spec)


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.daemon import serve_forever

    store = _resolve(args.store)
    return serve_forever(args.host, args.port, store=store)


def _warm_pairs(words: list[str], rank: int) -> list[tuple[str, str, int]]:
    return [
        (w, v, rank) for w, v in itertools.combinations(sorted(set(words)), 2)
    ]


def cmd_warm(args: argparse.Namespace) -> int:
    from repro.ef.equivalence import equiv_k
    from repro.fc.builders import PAPER_FORMULAS, paper_formula
    from repro.fc.semantics import defines_language_member
    from repro.kernel.automorphisms import automorphism_group
    from repro.kernel.interning import intern_table
    from repro.store import runtime as store_runtime

    store = _resolve(args.store)
    if store is None:
        print("warm: no store to warm (--store off)")
        return 2
    info = store.describe()
    where = info["path"] or info["backend"]

    if args.words:
        words = list(dict.fromkeys(args.words))
        pairs = _warm_pairs(words, args.rank)
    else:
        pairs = list(_DEFAULT_BATTERY)
        words = list(dict.fromkeys(w for pair in pairs for w in pair[:2]))

    before = store_stats.snapshot()
    previous = store_runtime.activate(store)
    try:
        for word in words:
            alphabet = args.alphabet or "".join(sorted(set(word))) or "a"
            table = intern_table(word, tuple(alphabet))
            automorphism_group(table)
        for w, v, k in pairs:
            alphabet = args.alphabet or "".join(sorted(set(w) | set(v))) or "a"
            equiv_k(w, v, k, alphabet)
        if args.formulas:
            for name in sorted(PAPER_FORMULAS):
                phi, alphabet = paper_formula(name)
                for word in words:
                    if set(word) <= set(alphabet):
                        defines_language_member(word, phi, alphabet)
    finally:
        store_runtime.deactivate(previous)

    delta = store_stats.diff(before, store_stats.snapshot())
    print(
        f"warmed {len(words)} word(s), {len(pairs)} pair(s) into {where} — "
        f"store: {delta.get('store_hits', 0)} hit(s), "
        f"{delta.get('store_misses', 0)} miss(es), "
        f"{delta.get('store_stores', 0)} store(s)"
    )
    return 0
