"""The serve daemon's wire protocol: JSON lines over a TCP stream.

One request per line, one response per line, UTF-8, ``\\n``-terminated.
Every request is an object with an ``op`` field plus op-specific
arguments; every response is an object with ``ok`` (bool) and either
``result`` (on success) or ``error`` (a message string).  The protocol
version is negotiated implicitly: ``ping`` reports it and clients are
expected to check.

Ops (see :data:`OPS` for the argument schemas):

* ``ping``        — liveness + protocol version
* ``stats``       — store/hydration counters of the serving process
* ``membership``  — ``word ⊨ φ`` for a named paper formula or FC text
* ``equiv``       — ``w ≡_k v`` (exact EF game)
* ``rank``        — least separating rank ≤ ``max_k``
* ``spanner``     — evaluate a regex-formula spanner on a document
* ``shutdown``    — drain and stop the daemon

This module is pure encode/decode/validate; the daemon and client share
it so a schema change cannot silently fork the two sides.
"""

from __future__ import annotations

import json
from typing import Any

__all__ = [
    "PROTOCOL_VERSION",
    "OPS",
    "ProtocolError",
    "decode_line",
    "encode",
    "error_response",
    "ok_response",
    "validate_request",
]

PROTOCOL_VERSION = 1

#: op → (required args, optional args); values are (name, type) pairs.
OPS: dict[str, tuple[tuple[tuple[str, type], ...], tuple[tuple[str, type], ...]]] = {
    "ping": ((), ()),
    "stats": ((), ()),
    "membership": (
        (("word", str),),
        (("formula", str), ("text", str), ("alphabet", str)),
    ),
    "equiv": ((("w", str), ("v", str), ("k", int)), (("alphabet", str),)),
    "rank": ((("w", str), ("v", str)), (("max_k", int), ("alphabet", str))),
    "spanner": ((("pattern", str), ("document", str)), ()),
    "shutdown": ((), ()),
}


class ProtocolError(ValueError):
    """A malformed request line or an invalid request object."""


def encode(payload: dict[str, Any]) -> bytes:
    """One wire line for ``payload`` (newline-terminated UTF-8 JSON)."""
    return (
        json.dumps(payload, sort_keys=True, ensure_ascii=False) + "\n"
    ).encode("utf-8")


def decode_line(line: bytes | str) -> dict[str, Any]:
    """Parse one wire line into an object, raising :class:`ProtocolError`."""
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as error:
            raise ProtocolError(f"not UTF-8: {error}") from None
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"not JSON: {error}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"expected a JSON object, got {type(payload).__name__}"
        )
    return payload


def _well_typed(value: Any, kind: type) -> bool:
    if kind is int:
        # bool is a subclass of int but is never a valid count/rank.
        return isinstance(value, int) and not isinstance(value, bool)
    return isinstance(value, kind)


def validate_request(payload: dict[str, Any]) -> dict[str, Any]:
    """Check ``payload`` against :data:`OPS`; return it unchanged.

    Raises :class:`ProtocolError` on an unknown op, a missing or
    mistyped argument, or an argument no schema mentions.
    """
    op = payload.get("op")
    if not isinstance(op, str) or op not in OPS:
        raise ProtocolError(
            f"unknown op {op!r}; valid ops: {sorted(OPS)}"
        )
    required, optional = OPS[op]
    known = {"op"}
    for name, kind in required:
        known.add(name)
        if name not in payload:
            raise ProtocolError(f"{op}: missing required argument {name!r}")
        if not _well_typed(payload[name], kind):
            raise ProtocolError(
                f"{op}: argument {name!r} must be {kind.__name__}"
            )
    for name, kind in optional:
        known.add(name)
        if name in payload and not _well_typed(payload[name], kind):
            raise ProtocolError(
                f"{op}: argument {name!r} must be {kind.__name__}"
            )
    extra = sorted(set(payload) - known)
    if extra:
        raise ProtocolError(f"{op}: unexpected argument(s) {extra}")
    return payload


def ok_response(op: str, result: Any) -> dict[str, Any]:
    """A success envelope for ``op``."""
    return {"ok": True, "op": op, "result": result}


def error_response(message: str, op: str | None = None) -> dict[str, Any]:
    """A failure envelope (``op`` included when it was recognisable)."""
    payload: dict[str, Any] = {"ok": False, "error": message}
    if op is not None:
        payload["op"] = op
    return payload
