"""The serving layer: a long-lived daemon over the warm kernel stack.

``python -m repro serve`` keeps one process alive with the artifact
store activated and the kernel's interning caches hot, answering
membership, EF-equivalence, rank, and spanner queries over a JSON-lines
TCP protocol — the amortisation story of ROADMAP's "millions of users
hit warm tables instead of forking Python".

* :mod:`repro.serve.protocol` — the wire schema (shared by both sides);
* :mod:`repro.serve.service`  — socket-free query dispatch;
* :mod:`repro.serve.daemon`   — the ThreadingTCPServer accept loop;
* :mod:`repro.serve.client`   — a minimal client for tests and CI;
* :mod:`repro.serve.cli`      — ``repro serve`` and ``repro warm``.
"""

from repro.serve.client import ServeClient, ServeError, query
from repro.serve.daemon import ReproServer, serve_forever
from repro.serve.protocol import PROTOCOL_VERSION, ProtocolError
from repro.serve.service import QueryService

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "QueryService",
    "ReproServer",
    "ServeClient",
    "ServeError",
    "query",
    "serve_forever",
]
