"""A minimal client for the serve daemon (tests, CI smoke, scripting).

:class:`ServeClient` keeps one connection open and answers one request
per call; :func:`query` is the connect–ask–close convenience wrapper.
Both raise :class:`ServeError` when the daemon reports ``ok: false`` —
callers that want the raw envelope can use :meth:`ServeClient.request`.
"""

from __future__ import annotations

import socket
from typing import Any

from repro.serve import protocol

__all__ = ["ServeClient", "ServeError", "query"]


class ServeError(RuntimeError):
    """The daemon answered, but with ``ok: false``."""


class ServeClient:
    """One open connection to a serve daemon."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 7357, timeout: float = 30.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rb")

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def request(self, op: str, **args: Any) -> dict[str, Any]:
        """Send one request and return the raw response envelope."""
        self._sock.sendall(protocol.encode({"op": op, **args}))
        line = self._file.readline()
        if not line:
            raise ConnectionError("daemon closed the connection")
        return protocol.decode_line(line)

    def call(self, op: str, **args: Any) -> Any:
        """Send one request and return ``result``, raising on errors."""
        response = self.request(op, **args)
        if not response.get("ok"):
            raise ServeError(response.get("error", "unknown daemon error"))
        return response["result"]

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()


def query(
    op: str,
    host: str = "127.0.0.1",
    port: int = 7357,
    timeout: float = 30.0,
    **args: Any,
) -> Any:
    """Connect, send one request, return ``result``, close."""
    with ServeClient(host, port, timeout) as client:
        return client.call(op, **args)
