"""The long-lived query daemon behind ``python -m repro serve``.

A stdlib :class:`socketserver.ThreadingTCPServer` speaking the JSON-lines
protocol of :mod:`repro.serve.protocol`.  The point of the daemon is
amortisation: the process activates the artifact store once, hydrates
kernel tables on first touch, and then every subsequent query — from any
connection — hits warm ``lru_cache``s and warm store records instead of
forking a fresh Python.

Connections are thread-per-client; queries from one connection are
answered in order.  The kernel stack is safe under this model for the
query mix the protocol admits: solver memo tables are only grown with
idempotent entries, counter modules take their module lock, and the
store backend is concurrent-reader/writer safe (sqlite WAL or a
lock-free in-memory dict).  This claim is machine-checked, not asserted:
the ``concurrency.*`` lint rules walk the call graph from this module's
handler entry points and flag any unsynchronized write to thread-shared
state — every surviving site is either guarded or carries a reasoned
``allow`` pin at the write.

``shutdown`` stops the accept loop after the acknowledging response has
been flushed to the requesting client.
"""

from __future__ import annotations

import socketserver
import threading
from typing import Any, Callable

from repro.serve import protocol
from repro.serve.service import QueryService
from repro.store import runtime as store_runtime
from repro.store.core import ArtifactStore

__all__ = ["ReproServer", "serve_forever"]


class _Handler(socketserver.StreamRequestHandler):
    """One connection: read request lines, write response lines."""

    def handle(self) -> None:
        server: "ReproServer" = self.server  # type: ignore[assignment]
        for line in self.rfile:
            if not line.strip():
                continue
            response = server.answer(line)
            self.wfile.write(protocol.encode(response))
            self.wfile.flush()
            if response.get("op") == "shutdown" and response.get("ok"):
                server.begin_shutdown()
                return


class ReproServer(socketserver.ThreadingTCPServer):
    """The serving loop; owns the service and the (optional) store."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        store: ArtifactStore | None = None,
        service: QueryService | None = None,
    ) -> None:
        super().__init__(address, _Handler)
        self.service = service if service is not None else QueryService()
        self.store = store
        self._previous_store: ArtifactStore | None = None
        self._stopping = False
        # Guards the shutdown/teardown lifecycle state (_stopping, store):
        # two handler threads can deliver `shutdown` concurrently, and
        # server_close races against a late begin_shutdown.
        self._lifecycle_lock = threading.Lock()
        if store is not None:
            self._previous_store = store_runtime.activate(store)

    @property
    def port(self) -> int:
        """The bound port (useful with an ephemeral ``port=0`` bind)."""
        return self.server_address[1]

    def answer(self, line: bytes) -> dict[str, Any]:
        """One wire line → one response envelope (never raises)."""
        op: str | None = None
        try:
            request = protocol.decode_line(line)
            op = request.get("op") if isinstance(request.get("op"), str) else None
            protocol.validate_request(request)
            return protocol.ok_response(
                request["op"], self.service.dispatch(request)
            )
        except protocol.ProtocolError as error:
            return protocol.error_response(str(error), op)
        except Exception as error:  # noqa: BLE001 — daemon must not die
            return protocol.error_response(
                f"{type(error).__name__}: {error}", op
            )

    def begin_shutdown(self) -> None:
        """Stop the accept loop (idempotent; safe from handler threads).

        The check-then-set on ``_stopping`` holds the lifecycle lock:
        without it, two concurrent ``shutdown`` requests both pass the
        guard and spawn two ``shutdown()`` threads (the dogfood finding
        of ``concurrency.shared-state-race``).
        """
        with self._lifecycle_lock:
            if self._stopping:
                return
            self._stopping = True
        # shutdown() blocks until serve_forever() returns, so it must run
        # off the handler thread only if the handler IS the serving
        # thread; under ThreadingTCPServer handlers are always separate
        # threads, but a plain thread keeps this safe for direct calls
        # from the serving thread in tests.  Started outside the lock:
        # the loser of the race must not wait on the winner's join.
        threading.Thread(target=self.shutdown, daemon=True).start()

    def server_close(self) -> None:
        super().server_close()
        with self._lifecycle_lock:
            if self.store is not None:
                store_runtime.deactivate(self._previous_store)
                self.store = None


def _announce(message: str) -> None:
    # Explicit flush: under a pipe (CI smoke, subprocess tests) stdout is
    # block-buffered and the "serving on" line must reach the parent
    # before the first connection attempt.
    print(message, flush=True)


def serve_forever(
    host: str,
    port: int,
    store: ArtifactStore | None = None,
    announce: Callable[[str], None] = _announce,
) -> int:
    """Bind, announce ``serving on HOST:PORT``, and serve until shutdown."""
    with ReproServer((host, port), store=store) as server:
        announce(f"serving on {host}:{server.port}")
        server.serve_forever(poll_interval=0.1)
    return 0
