"""Algebraic optimisation of spanner expression trees.

Classic relational rewrites, adapted to the span algebra — all of them
*class-preserving* (a core spanner stays core, a generalized core spanner
stays generalized core) and semantics-preserving (property-tested against
the unoptimised tree on random documents):

* **projection pushdown** — ``π_V(R ∪ S) → π_V(R) ∪ π_V(S)``,
  ``π_{V₂}(π_{V₁}(R)) → π_{V₂}(R)`` (when V₂ ⊆ V₁), and pushing a
  projection below a join onto each side's needed columns;
* **selection pushdown** — ``ζ=_{x,y}(R ⋈ S) → ζ=_{x,y}(R) ⋈ S`` when
  both variables live on one side; selections commute and can be pushed
  through unions;
* **idempotence / annihilation** — ``R ∪ R → R``, ``R \\ R →`` the empty
  relation (kept as a syntactic ``R \\ R`` on a leaf to stay within the
  algebra, but hoisted to the smallest equivalent subtree).

``optimize`` applies rewrites to a fixed point;
``tree_size``/``explain`` expose what changed for the benchmark report.
"""

from __future__ import annotations

from repro.spanners.spanner import (
    Difference,
    EqualitySelect,
    Extract,
    Join,
    Project,
    RelationSelect,
    Spanner,
    SpannerUnion,
)

__all__ = ["optimize", "tree_size", "explain"]


def tree_size(spanner: Spanner) -> int:
    """Number of nodes in the expression tree."""
    return sum(1 for _ in spanner.walk())


def _push_projection(node: Project) -> Spanner:
    inner = node.inner
    keep = frozenset(node.variables)
    if isinstance(inner, Project):
        # π_{V₂} ∘ π_{V₁} = π_{V₂} (validity: V₂ ⊆ V₁ ⊆ schema).
        return Project(inner.inner, node.variables)
    if isinstance(inner, SpannerUnion):
        return SpannerUnion(
            Project(inner.left, node.variables),
            Project(inner.right, node.variables),
        )
    if isinstance(inner, Join):
        left_schema = inner.left.schema()
        right_schema = inner.right.schema()
        shared = left_schema & right_schema
        left_keep = tuple(sorted((keep | shared) & left_schema))
        right_keep = tuple(sorted((keep | shared) & right_schema))
        if frozenset(left_keep) != left_schema or (
            frozenset(right_keep) != right_schema
        ):
            return Project(
                Join(
                    Project(inner.left, left_keep)
                    if frozenset(left_keep) != left_schema
                    else inner.left,
                    Project(inner.right, right_keep)
                    if frozenset(right_keep) != right_schema
                    else inner.right,
                ),
                node.variables,
            )
    if isinstance(inner, (EqualitySelect, RelationSelect)):
        needed = (
            {inner.x, inner.y}
            if isinstance(inner, EqualitySelect)
            else set(inner.variables)
        )
        if needed <= keep:
            # Selection only reads kept columns: swap.
            rebuilt = (
                EqualitySelect(
                    Project(inner.inner, node.variables), inner.x, inner.y
                )
                if isinstance(inner, EqualitySelect)
                else RelationSelect(
                    Project(inner.inner, node.variables),
                    inner.variables,
                    inner.predicate,
                    inner.name,
                )
            )
            return rebuilt
    return node


def _push_selection(node: EqualitySelect) -> Spanner:
    inner = node.inner
    pair = {node.x, node.y}
    if isinstance(inner, SpannerUnion):
        return SpannerUnion(
            EqualitySelect(inner.left, node.x, node.y),
            EqualitySelect(inner.right, node.x, node.y),
        )
    if isinstance(inner, Join):
        if pair <= inner.left.schema():
            return Join(
                EqualitySelect(inner.left, node.x, node.y), inner.right
            )
        if pair <= inner.right.schema():
            return Join(
                inner.left, EqualitySelect(inner.right, node.x, node.y)
            )
    if isinstance(inner, Difference):
        # ζ distributes over difference (filters rows uniformly).
        return Difference(
            EqualitySelect(inner.left, node.x, node.y),
            EqualitySelect(inner.right, node.x, node.y),
        )
    return node


def _rewrite_once(node: Spanner) -> Spanner:
    # Bottom-up: rebuild children first.
    if isinstance(node, Extract):
        return node
    if isinstance(node, SpannerUnion):
        left = _rewrite_once(node.left)
        right = _rewrite_once(node.right)
        if left == right:
            return left  # R ∪ R = R
        return SpannerUnion(left, right)
    if isinstance(node, Join):
        return Join(_rewrite_once(node.left), _rewrite_once(node.right))
    if isinstance(node, Difference):
        return Difference(_rewrite_once(node.left), _rewrite_once(node.right))
    if isinstance(node, Project):
        rebuilt = Project(_rewrite_once(node.inner), node.variables)
        if frozenset(rebuilt.variables) == rebuilt.inner.schema():
            return rebuilt.inner  # identity projection
        return _push_projection(rebuilt)
    if isinstance(node, EqualitySelect):
        rebuilt = EqualitySelect(_rewrite_once(node.inner), node.x, node.y)
        if rebuilt.x == rebuilt.y:
            return rebuilt.inner  # ζ=_{x,x} is the identity
        return _push_selection(rebuilt)
    if isinstance(node, RelationSelect):
        return RelationSelect(
            _rewrite_once(node.inner), node.variables, node.predicate, node.name
        )
    raise TypeError(f"unknown spanner node: {node!r}")


def optimize(spanner: Spanner, max_passes: int = 12) -> Spanner:
    """Apply the rewrites to a fixed point (bounded passes)."""
    current = spanner
    for _ in range(max_passes):
        rebuilt = _rewrite_once(current)
        if rebuilt == current:
            return rebuilt
        current = rebuilt
    return current


def explain(before: Spanner, after: Spanner) -> str:
    """One-line description of what the optimiser achieved."""
    return (
        f"{tree_size(before)} nodes → {tree_size(after)} nodes; "
        f"class {before.classify()!r} → {after.classify()!r}"
    )
