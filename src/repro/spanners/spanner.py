"""Spanner expression trees: regular, core, and generalized core spanners.

A *spanner* maps a document to a span relation.  The classes of the
framework (Fagin et al.):

* **regular spanners** — regex-formula extractors closed under
  ∪, π, ⋈;
* **core spanners** — regular + string-equality selection ζ=;
* **generalized core spanners** — core + difference \\ (the class the
  paper's results are about).

A :class:`Spanner` is an expression tree over those operators;
``evaluate(document)`` runs it bottom-up, and ``classify()`` reports the
smallest class the tree syntactically falls into.  Boolean spanners
(empty schema) double as language acceptors via ``accepts``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.spanners.algebra import SpanRelation
from repro.spanners.regex_formulas import RegexFormula, parse_regex_formula

__all__ = [
    "Spanner",
    "Extract",
    "SpannerUnion",
    "Project",
    "Join",
    "Difference",
    "EqualitySelect",
    "RelationSelect",
    "extract",
]


class Spanner:
    """Base class: a document → span-relation function with a schema."""

    def schema(self) -> frozenset[str]:
        raise NotImplementedError

    def evaluate(self, document: str) -> SpanRelation:
        raise NotImplementedError

    def classify(self) -> str:
        """'regular', 'core', or 'generalized core' (syntactic class)."""
        has_eq = any(isinstance(n, EqualitySelect) for n in self.walk())
        has_diff = any(isinstance(n, Difference) for n in self.walk())
        has_rel = any(isinstance(n, RelationSelect) for n in self.walk())
        if has_rel:
            return "extended (ζ^R)"
        if has_diff:
            return "generalized core"
        if has_eq:
            return "core"
        return "regular"

    def walk(self):
        """Preorder traversal of the expression tree."""
        yield self
        for child in self.children():
            yield from child.walk()

    def children(self) -> tuple["Spanner", ...]:
        return ()

    def accepts(self, document: str) -> bool:
        """Boolean-spanner acceptance: non-empty result."""
        return len(self.evaluate(document)) > 0

    def language_slice(self, alphabet: str, max_length: int) -> frozenset[str]:
        """``{d ∈ Σ^{≤n} : P(d) ≠ ∅}`` — the recognised language slice."""
        from repro.words.generators import words_up_to

        return frozenset(
            document
            for document in words_up_to(alphabet, max_length)
            if self.accepts(document)
        )

    # operator sugar
    def __or__(self, other: "Spanner") -> "SpannerUnion":
        return SpannerUnion(self, other)

    def __sub__(self, other: "Spanner") -> "Difference":
        return Difference(self, other)

    def join(self, other: "Spanner") -> "Join":
        return Join(self, other)

    def project(self, *variables: str) -> "Project":
        return Project(self, tuple(variables))

    def eq(self, x: str, y: str) -> "EqualitySelect":
        return EqualitySelect(self, x, y)


@dataclass(frozen=True)
class Extract(Spanner):
    """A regex-formula extractor leaf."""

    formula: RegexFormula

    def schema(self) -> frozenset[str]:
        return self.formula.variables()

    def evaluate(self, document: str) -> SpanRelation:
        rows = [dict(assignment) for assignment in self.formula.match_spans(document)]
        return SpanRelation.build(document, rows, schema=self.schema())


@dataclass(frozen=True)
class SpannerUnion(Spanner):
    left: Spanner
    right: Spanner

    def __post_init__(self) -> None:
        if self.left.schema() != self.right.schema():
            raise ValueError(
                f"union schema mismatch: {sorted(self.left.schema())} vs "
                f"{sorted(self.right.schema())}"
            )

    def schema(self) -> frozenset[str]:
        return self.left.schema()

    def children(self):
        return (self.left, self.right)

    def evaluate(self, document: str) -> SpanRelation:
        return self.left.evaluate(document).union(self.right.evaluate(document))


@dataclass(frozen=True)
class Project(Spanner):
    inner: Spanner
    variables: tuple[str, ...]

    def schema(self) -> frozenset[str]:
        return frozenset(self.variables)

    def children(self):
        return (self.inner,)

    def evaluate(self, document: str) -> SpanRelation:
        return self.inner.evaluate(document).project(self.variables)


@dataclass(frozen=True)
class Join(Spanner):
    left: Spanner
    right: Spanner

    def schema(self) -> frozenset[str]:
        return self.left.schema() | self.right.schema()

    def children(self):
        return (self.left, self.right)

    def evaluate(self, document: str) -> SpanRelation:
        return self.left.evaluate(document).natural_join(
            self.right.evaluate(document)
        )


@dataclass(frozen=True)
class Difference(Spanner):
    """``left \\ right`` — the operator that makes a spanner *generalized*."""

    left: Spanner
    right: Spanner

    def __post_init__(self) -> None:
        if self.left.schema() != self.right.schema():
            raise ValueError(
                f"difference schema mismatch: {sorted(self.left.schema())} "
                f"vs {sorted(self.right.schema())}"
            )

    def schema(self) -> frozenset[str]:
        return self.left.schema()

    def children(self):
        return (self.left, self.right)

    def evaluate(self, document: str) -> SpanRelation:
        return self.left.evaluate(document).difference(
            self.right.evaluate(document)
        )


@dataclass(frozen=True)
class EqualitySelect(Spanner):
    """``ζ=_{x,y}`` — string-equality selection (the core-spanner op)."""

    inner: Spanner
    x: str
    y: str

    def schema(self) -> frozenset[str]:
        return self.inner.schema()

    def children(self):
        return (self.inner,)

    def evaluate(self, document: str) -> SpanRelation:
        return self.inner.evaluate(document).select_equal(self.x, self.y)


@dataclass(frozen=True)
class RelationSelect(Spanner):
    """``ζ^R`` — selection by an arbitrary content relation.

    Not part of the generalized core algebra; this is the hypothetical
    operator whose redundancy defines *selectability*.  The name is used
    in reports.
    """

    inner: Spanner
    variables: tuple[str, ...]
    predicate: Callable[..., bool]
    name: str = "R"

    def schema(self) -> frozenset[str]:
        return self.inner.schema()

    def children(self):
        return (self.inner,)

    def evaluate(self, document: str) -> SpanRelation:
        return self.inner.evaluate(document).select_relation(
            self.variables, self.predicate
        )


def extract(pattern: str) -> Extract:
    """Build an extractor leaf from a regex-formula pattern string."""
    return Extract(parse_regex_formula(pattern))
