"""Selectability experiments: spanners ↔ FC[REG], and the ζ^R operator.

Freydenberger–Peterfreund: a relation R is *selectable* by generalized
core spanners iff R is definable in FC[REG].  The paper uses this as a
black box to lift its FC[REG] inexpressibility results to spanners.  This
module provides the extensional side of that bridge:

* :func:`agree_extensionally` — compare a spanner's *content* relation
  with an FC[REG] formula's satisfying assignments on every document up to
  a length bound (the finite validation of the correspondence on the
  instances the experiments touch);
* :func:`selection_gap_language` — demonstrate the paper's conclusion
  concretely: wiring an *unselectable* relation (e.g. Num_a, or length
  equality) into ζ^R produces a spanner recognising a language (e.g.
  aⁿbⁿ-style) that no generalized core spanner recognises;
* :func:`regular_intersection_trick` — the conclusion section's closure
  argument: L ∈ FC[REG] iff L ∩ (regular) ∈ FC[REG], used to push
  inexpressibility beyond bounded languages.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.fc.semantics import satisfying_assignments, satisfying_tuples
from repro.fc.syntax import Formula, Var, free_variables
from repro.spanners.spanner import RelationSelect, Spanner
from repro.words.generators import words_up_to

__all__ = [
    "spanner_content_relation",
    "agree_extensionally",
    "selection_gap_language",
    "regular_intersection_trick",
]


def spanner_content_relation(
    spanner: Spanner, document: str, order: Sequence[str]
) -> frozenset[tuple[str, ...]]:
    """The spanner's output as a set of content tuples in ``order``."""
    relation = spanner.evaluate(document)
    return frozenset(
        tuple(row[var].content(document) for var in order)
        for row in relation
    )


def formula_content_relation(
    formula: Formula, document: str, alphabet: str, order: Sequence[Var]
) -> frozenset[tuple[str, ...]]:
    """``⟦φ⟧(d)`` as a set of content tuples in variable ``order``.

    Per-document enumeration — kept as the differential oracle for the
    batched sweep :func:`agree_extensionally` runs.
    """
    return frozenset(
        tuple(sigma[v] for v in order)
        for sigma in satisfying_assignments(document, formula, alphabet)
    )


def agree_extensionally(
    spanner: Spanner,
    formula: Formula,
    alphabet: str,
    max_length: int,
    variable_order: Sequence[str] | None = None,
) -> tuple[bool, str | None]:
    """Check spanner ≍ formula on all documents of length ≤ ``max_length``.

    The spanner's span tuples are projected to contents and deduplicated
    (spanners are positional, FC is content-based); variable names are
    matched by ``variable_order`` (default: sorted shared names).  Returns
    (agrees, first disagreeing document).
    """
    free = sorted(free_variables(formula), key=lambda v: v.name)
    if variable_order is None:
        names = sorted(spanner.schema())
    else:
        names = list(variable_order)
    if len(names) != len(free):
        raise ValueError(
            f"arity mismatch: spanner schema {names} vs formula free "
            f"variables {[v.name for v in free]}"
        )
    # The formula side is one batched relational sweep over the whole
    # document grid: φ compiles once, and ⟦φ⟧(d) per document is a
    # pool-pruned bitset scan sharing the family's interned tables
    # (repro.fc.sweep) instead of a per-document enumeration.
    formula_batch = satisfying_tuples(
        formula,
        alphabet,
        words_up_to(alphabet, max_length),
        scope=max_length,
    )
    for document, rows in formula_batch:
        from_spanner = spanner_content_relation(spanner, document, names)
        if from_spanner != frozenset(rows):
            return False, document
    return True, None


def selection_gap_language(
    base: Spanner,
    variables: tuple[str, ...],
    predicate: Callable[..., bool],
    alphabet: str,
    max_length: int,
    name: str = "R",
) -> frozenset[str]:
    """The language recognised by ``π_∅ ζ^R(base)``.

    Wiring an unselectable relation into ζ^R and projecting everything
    away yields a Boolean spanner; its language is what the paper shows
    cannot be recognised by any generalized core spanner.  Returned as a
    finite slice for comparison against the witness-language oracles.
    """
    selected = RelationSelect(base, variables, predicate, name)
    boolean = selected.project()
    return boolean.language_slice(alphabet, max_length)


def regular_intersection_trick(
    language_slice: frozenset[str],
    regular_filter: Callable[[str], bool],
) -> frozenset[str]:
    """The conclusion section's closure argument, extensionally.

    FC[REG] is closed under intersection with regular languages, so
    ``L ∈ L(FC[REG])`` implies ``L ∩ R ∈ L(FC[REG])``.  Given a finite
    slice of L and a regular membership test, return the slice of the
    intersection — e.g. {w : |w|_a = |w|_b} ∩ a*b* = {aⁿbⁿ}, whose
    non-definability then propagates back to L.
    """
    return frozenset(word for word in language_slice if regular_filter(word))
