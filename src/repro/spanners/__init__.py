"""Document spanners: regex formulas, span algebra, spanner classes.

The Fagin-et-al. framework the paper's results are about: extractors
(regex formulas with capture variables) combined by the span relational
algebra.  Generalized core spanners = {regex formulas} + {∪, π, ⋈, \\, ζ=}.
"""

from repro.spanners.algebra import SpanRelation, SpanTuple
from repro.spanners.regex_formulas import (
    RAny,
    RBind,
    RConcat,
    REpsilon,
    RStar,
    RTerminal,
    RUnion,
    RegexFormula,
    parse_regex_formula,
)
from repro.spanners.normal_form import (
    CoreSimplification,
    compile_spanner,
    core_simplify,
    vset_join,
    vset_project,
    vset_union,
)
from repro.spanners.optimizer import explain, optimize, tree_size
from repro.spanners.selectable import (
    agree_extensionally,
    regular_intersection_trick,
    selection_gap_language,
    spanner_content_relation,
)
from repro.spanners.spanner import (
    Difference,
    EqualitySelect,
    Extract,
    Join,
    Project,
    RelationSelect,
    Spanner,
    SpannerUnion,
    extract,
)
from repro.spanners.spans import Span, all_spans, spans_of_occurrences
from repro.spanners.vset_automata import (
    VOp,
    VSetAutomaton,
    compile_regex_formula,
)

__all__ = [
    "SpanRelation",
    "SpanTuple",
    "RAny",
    "RBind",
    "RConcat",
    "REpsilon",
    "RStar",
    "RTerminal",
    "RUnion",
    "RegexFormula",
    "parse_regex_formula",
    "CoreSimplification",
    "compile_spanner",
    "core_simplify",
    "vset_join",
    "vset_project",
    "vset_union",
    "explain",
    "optimize",
    "tree_size",
    "agree_extensionally",
    "regular_intersection_trick",
    "selection_gap_language",
    "spanner_content_relation",
    "Difference",
    "EqualitySelect",
    "Extract",
    "Join",
    "Project",
    "RelationSelect",
    "Spanner",
    "SpannerUnion",
    "extract",
    "Span",
    "all_spans",
    "spans_of_occurrences",
    "VOp",
    "VSetAutomaton",
    "compile_regex_formula",
]
