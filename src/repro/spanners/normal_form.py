"""Regular-spanner normal form: one automaton for a whole algebra tree.

Fagin et al.'s closure theorem: regular spanners (regex-formula leaves
combined with ∪, π, ⋈) can be represented by a *single* VSet-automaton —
and their core-simplification lemma then writes any core spanner as
``π(ζ=⋯ζ=(A))`` for one automaton A.  This module implements the
constructive closure half:

* :func:`vset_union` — NFA-style union (same variable schema);
* :func:`vset_project` — drop variables by erasing their ⊢x / x⊣
  operations to ε;
* :func:`vset_join` — product construction for natural join on
  *disjoint* schemas (the general shared-variable join reduces to this
  plus ζ= and renaming; the experiment exercises the disjoint case);
* :func:`compile_spanner` — fold a regular algebra tree (with
  disjoint-schema joins) into one automaton; ζ= selections are hoisted
  outside, yielding the core-simplification shape
  ``ζ= ⋯ ζ= (single automaton)`` reported by :class:`CoreSimplification`.

Every construction is semantics-preserving and is property-tested against
tree evaluation on random documents.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.spanners.algebra import SpanRelation
from repro.spanners.spanner import (
    EqualitySelect,
    Extract,
    Join,
    Project,
    Spanner,
    SpannerUnion,
)
from repro.spanners.vset_automata import VOp, VSetAutomaton, compile_regex_formula

__all__ = [
    "vset_union",
    "vset_project",
    "vset_join",
    "compile_spanner",
    "CoreSimplification",
    "core_simplify",
]


def _shift(
    automaton: VSetAutomaton, offset: int
) -> dict[int, list[tuple[object, int]]]:
    return {
        source + offset: [(label, target + offset) for label, target in edges]
        for source, edges in automaton.transitions.items()
    }


def _max_state(automaton: VSetAutomaton) -> int:
    states = {automaton.start} | set(automaton.accepting)
    for source, edges in automaton.transitions.items():
        states.add(source)
        states.update(target for _, target in edges)
    return max(states) if states else 0


def vset_union(left: VSetAutomaton, right: VSetAutomaton) -> VSetAutomaton:
    """Union of two automata over the same variable schema."""
    if left.variables != right.variables:
        raise ValueError(
            f"union schema mismatch: {sorted(left.variables)} vs "
            f"{sorted(right.variables)}"
        )
    offset = _max_state(left) + 1
    shifted = _shift(right, offset)
    transitions = {
        source: list(edges) for source, edges in left.transitions.items()
    }
    for source, edges in shifted.items():
        transitions.setdefault(source, []).extend(edges)
    new_start = offset + _max_state(right) + 1
    transitions.setdefault(new_start, []).extend(
        [(None, left.start), (None, right.start + offset)]
    )
    accepting = left.accepting | frozenset(
        state + offset for state in right.accepting
    )
    return VSetAutomaton(new_start, accepting, transitions, left.variables)


def vset_project(
    automaton: VSetAutomaton, keep: frozenset[str]
) -> VSetAutomaton:
    """Drop variables outside ``keep`` by erasing their operations to ε."""
    stray = keep - automaton.variables
    if stray:
        raise ValueError(f"projection onto unknown variables {sorted(stray)}")
    transitions = {}
    for source, edges in automaton.transitions.items():
        rebuilt = []
        for label, target in edges:
            if isinstance(label, VOp) and label.var not in keep:
                rebuilt.append((None, target))
            else:
                rebuilt.append((label, target))
        transitions[source] = rebuilt
    return VSetAutomaton(
        automaton.start, automaton.accepting, transitions, frozenset(keep)
    )


def vset_join(left: VSetAutomaton, right: VSetAutomaton) -> VSetAutomaton:
    """Natural join on *disjoint* schemas: the product construction.

    The product simulates both automata over one document: letter edges
    advance both components in lockstep (labels must match the letter
    read, which the product leaves to evaluation by keeping the left
    label); ε and variable edges advance one component at a time.
    """
    if left.variables & right.variables:
        raise ValueError(
            "product join requires disjoint schemas; shared: "
            f"{sorted(left.variables & right.variables)} — rewrite with "
            "renaming + ζ= first"
        )
    left_states = sorted(
        {left.start}
        | set(left.accepting)
        | set(left.transitions)
        | {
            target
            for edges in left.transitions.values()
            for _, target in edges
        }
    )
    right_states = sorted(
        {right.start}
        | set(right.accepting)
        | set(right.transitions)
        | {
            target
            for edges in right.transitions.values()
            for _, target in edges
        }
    )
    index = {
        (p, q): i
        for i, (p, q) in enumerate(
            (p, q) for p in left_states for q in right_states
        )
    }
    transitions: dict[int, list[tuple[object, int]]] = {}

    def add(source: tuple, label, target: tuple) -> None:
        transitions.setdefault(index[source], []).append(
            (label, index[target])
        )

    for p in left_states:
        for q in right_states:
            for label, target in left.transitions.get(p, []):
                if label is None or isinstance(label, VOp):
                    add((p, q), label, (target, q))
            for label, target in right.transitions.get(q, []):
                if label is None or isinstance(label, VOp):
                    add((p, q), label, (p, target))
            # Letter steps advance both sides on the same letter.
            for l_label, l_target in left.transitions.get(p, []):
                if l_label is None or isinstance(l_label, VOp):
                    continue
                for r_label, r_target in right.transitions.get(q, []):
                    if r_label is None or isinstance(r_label, VOp):
                        continue
                    # Two letter edges are compatible if some letter
                    # satisfies both labels; concrete letters must match,
                    # wildcards accept anything.
                    from repro.spanners.vset_automata import _Wildcard

                    l_wild = isinstance(l_label, _Wildcard)
                    r_wild = isinstance(r_label, _Wildcard)
                    if not l_wild and not r_wild and l_label != r_label:
                        continue
                    label = r_label if l_wild else l_label
                    add((p, q), label, (l_target, r_target))

    accepting = frozenset(
        index[(p, q)] for p in left.accepting for q in right.accepting
    )
    return VSetAutomaton(
        index[(left.start, right.start)],
        accepting,
        transitions,
        left.variables | right.variables,
    )


def compile_spanner(spanner: Spanner) -> VSetAutomaton:
    """Fold a regular algebra tree into a single VSet-automaton.

    Supported nodes: Extract, SpannerUnion, Project, and Join with
    disjoint schemas.  ζ=/difference are outside the regular fragment —
    use :func:`core_simplify` for core spanners.
    """
    if isinstance(spanner, Extract):
        return compile_regex_formula(spanner.formula)
    if isinstance(spanner, SpannerUnion):
        return vset_union(
            compile_spanner(spanner.left), compile_spanner(spanner.right)
        )
    if isinstance(spanner, Project):
        return vset_project(
            compile_spanner(spanner.inner), frozenset(spanner.variables)
        )
    if isinstance(spanner, Join):
        return vset_join(
            compile_spanner(spanner.left), compile_spanner(spanner.right)
        )
    raise ValueError(
        f"{type(spanner).__name__} is outside the regular fragment; "
        "core spanners go through core_simplify"
    )


@dataclass(frozen=True)
class CoreSimplification:
    """A core spanner in simplified form: ζ= selections over ONE automaton.

    The executable shape of Fagin et al.'s core-simplification lemma for
    the fragment where selections commute to the top (selections applied
    to regular subtrees; the full lemma also handles selections under
    projections, which :func:`core_simplify` hoists when sound).
    """

    automaton: VSetAutomaton
    selections: tuple[tuple[str, str], ...]

    def evaluate(self, document: str) -> SpanRelation:
        relation = self.automaton.evaluate(document)
        for x, y in self.selections:
            relation = relation.select_equal(x, y)
        return relation


def core_simplify(spanner: Spanner) -> CoreSimplification:
    """Hoist ζ= selections to the top and compile the regular rest.

    Supported: ζ= over any supported subtree; projection over a selection
    is hoisted only when the selection's variables survive the projection
    (otherwise the spanner is outside this constructive fragment and a
    ``ValueError`` explains why).
    """

    def split(node: Spanner) -> tuple[Spanner, list[tuple[str, str]]]:
        if isinstance(node, EqualitySelect):
            inner, selections = split(node.inner)
            return inner, selections + [(node.x, node.y)]
        if isinstance(node, SpannerUnion):
            left, l_sel = split(node.left)
            right, r_sel = split(node.right)
            if l_sel or r_sel:
                if l_sel != r_sel:
                    raise ValueError(
                        "selections under a union differ between branches; "
                        "outside the constructive fragment"
                    )
            return SpannerUnion(left, right), l_sel
        if isinstance(node, Join):
            left, l_sel = split(node.left)
            right, r_sel = split(node.right)
            return Join(left, right), l_sel + r_sel
        if isinstance(node, Project):
            inner, selections = split(node.inner)
            kept = set(node.variables)
            for x, y in selections:
                if x not in kept or y not in kept:
                    raise ValueError(
                        f"ζ=_{{{x},{y}}} under π_{sorted(kept)} drops a "
                        "selected variable; hoisting is unsound here"
                    )
            return Project(inner, node.variables), selections
        return node, []

    regular, selections = split(spanner)
    return CoreSimplification(compile_spanner(regular), tuple(selections))
