"""VSet-automata: the operational representation of regular spanners.

The spanner literature (Fagin et al., and the enumeration line of work the
paper's related-work section cites) represents regular spanners as
*variable-set automata*: NFAs whose transitions carry either a letter, ε,
or a **variable operation** — ``⊢x`` (open variable x) or ``x⊣`` (close
x).  A run over a document is *valid* if every variable is opened exactly
once and closed exactly once after opening; the positions of the
operations determine the span assigned to each variable.

This module implements:

* :class:`VSetAutomaton` — construction, validity-checked evaluation by
  NFA simulation over (state, per-variable status) configurations;
* :func:`compile_regex_formula` — the Thompson-style translation from
  regex formulas (``repro.spanners.regex_formulas``) to VSet-automata;
* determinism-free evaluation that is cross-checked against the recursive
  regex-formula evaluator in the tests (same span relations on every
  document).

Functional regex formulas always compile to automata whose accepting runs
are valid, but the evaluator enforces validity anyway — hand-built
automata may be non-functional.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.spanners.algebra import SpanRelation
from repro.spanners.regex_formulas import (
    RAny,
    RBind,
    RConcat,
    REpsilon,
    RStar,
    RTerminal,
    RUnion,
    RegexFormula,
)
from repro.spanners.spans import Span

__all__ = ["VOp", "VSetAutomaton", "compile_regex_formula"]


@dataclass(frozen=True)
class VOp:
    """A variable operation label: ``VOp("x", True)`` = ⊢x (open),
    ``VOp("x", False)`` = x⊣ (close)."""

    var: str
    is_open: bool

    def __repr__(self) -> str:
        return f"⊢{self.var}" if self.is_open else f"{self.var}⊣"


#: Transition label: a letter (1-char str), None for ε, or a VOp.
Label = "str | None | VOp"


@dataclass
class VSetAutomaton:
    """A variable-set automaton.

    ``transitions`` maps a state to a list of (label, target) pairs.
    States are integers; there is one start state and a set of accepting
    states (a single accept state when built by the compiler).
    """

    start: int
    accepting: frozenset[int]
    transitions: dict[int, list[tuple[object, int]]]
    variables: frozenset[str]

    def _edges(self, state: int) -> list[tuple[object, int]]:
        return self.transitions.get(state, [])

    def evaluate(self, document: str) -> SpanRelation:
        """All span assignments of valid accepting runs over ``document``.

        Configurations are (state, per-variable status) where a status is
        ``None`` (unopened), ``int`` (opened at position), or ``Span``
        (closed).  ε/variable transitions are saturated between letters;
        opening/closing twice kills the run (validity).
        """
        ordered_vars = tuple(sorted(self.variables))

        def saturate(configurations: set) -> set:
            stack = list(configurations)
            seen = set(configurations)
            while stack:
                state, statuses, position = stack.pop()
                for label, target in self._edges(state):
                    if isinstance(label, str) or isinstance(label, _Wildcard):
                        continue  # letter edges handled by the letter step
                    if label is None:
                        nxt = (target, statuses, position)
                    else:
                        index = ordered_vars.index(label.var)
                        status = statuses[index]
                        if label.is_open:
                            if status is not None:
                                continue  # double open: invalid
                            new_status = position
                        else:
                            if not isinstance(status, int):
                                continue  # close before open / double close
                            new_status = Span(status, position)
                        nxt = (
                            target,
                            statuses[:index] + (new_status,) + statuses[index + 1 :],
                            position,
                        )
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append(nxt)
            return seen

        initial = (self.start, (None,) * len(ordered_vars), 0)
        current = saturate({initial})
        for position, letter in enumerate(document):
            stepped = set()
            for state, statuses, _ in current:
                for label, target in self._edges(state):
                    if label == letter:
                        stepped.add((target, statuses, position + 1))
            current = saturate(stepped)
            if not current:
                break
        rows = []
        for state, statuses, _ in current:
            if state not in self.accepting:
                continue
            if any(not isinstance(status, Span) for status in statuses):
                continue  # some variable never opened/closed: invalid run
            rows.append(dict(zip(ordered_vars, statuses)))
        return SpanRelation.build(
            document, rows, schema=ordered_vars
        ) if rows else SpanRelation.empty(document, ordered_vars)

    def state_count(self) -> int:
        states = {self.start} | set(self.accepting)
        for source, edges in self.transitions.items():
            states.add(source)
            states.update(target for _, target in edges)
        return len(states)


def compile_regex_formula(formula: RegexFormula) -> VSetAutomaton:
    """Thompson-style compilation of a regex formula to a VSet-automaton.

    Letters/ε/unions/concats/stars compile as usual; a binding ``x{e}``
    compiles to ``⊢x · e · x⊣``.  Linear in the formula size.
    """
    counter = [0]
    transitions: dict[int, list[tuple[object, int]]] = {}

    def fresh() -> int:
        counter[0] += 1
        return counter[0] - 1

    def add(source: int, label, target: int) -> None:
        transitions.setdefault(source, []).append((label, target))

    def build(node: RegexFormula) -> tuple[int, int]:
        if isinstance(node, REpsilon):
            s, t = fresh(), fresh()
            add(s, None, t)
            return s, t
        if isinstance(node, RTerminal):
            s, t = fresh(), fresh()
            add(s, node.symbol, t)
            return s, t
        if isinstance(node, RAny):
            # ``.`` needs the alphabet at evaluation time; we expand it at
            # compile time over a conventional alphabet is wrong — instead
            # keep a letter-wildcard via one edge per letter is impossible
            # without Σ.  Compile ``.`` as a set of edges added lazily is
            # overkill: the evaluator only follows labels equal to the
            # letter read, so a dedicated wildcard marker suffices.
            s, t = fresh(), fresh()
            add(s, _WILDCARD, t)
            return s, t
        if isinstance(node, RUnion):
            ls, lt = build(node.left)
            rs, rt = build(node.right)
            s, t = fresh(), fresh()
            add(s, None, ls)
            add(s, None, rs)
            add(lt, None, t)
            add(rt, None, t)
            return s, t
        if isinstance(node, RConcat):
            ls, lt = build(node.left)
            rs, rt = build(node.right)
            add(lt, None, rs)
            return ls, rt
        if isinstance(node, RStar):
            inner_s, inner_t = build(node.inner)
            s, t = fresh(), fresh()
            add(s, None, inner_s)
            add(s, None, t)
            add(inner_t, None, inner_s)
            add(inner_t, None, t)
            return s, t
        if isinstance(node, RBind):
            body_s, body_t = build(node.body)
            s, t = fresh(), fresh()
            add(s, VOp(node.var, True), body_s)
            add(body_t, VOp(node.var, False), t)
            return s, t
        raise TypeError(f"unknown regex-formula node: {node!r}")

    start, accept = build(formula)
    return VSetAutomaton(
        start, frozenset([accept]), transitions, formula.variables()
    )


class _Wildcard:
    """Label matching any letter (compilation target of ``.``)."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover
        return "·any·"

    def __eq__(self, other) -> bool:
        # A wildcard edge matches every single letter the evaluator reads.
        return isinstance(other, str) and len(other) == 1 or other is self

    def __hash__(self) -> int:
        return hash("_WILDCARD_")


_WILDCARD = _Wildcard()
