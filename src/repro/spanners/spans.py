"""Spans: intervals over a document (Fagin et al.'s model).

A span ``[i, j⟩`` of a document ``d`` marks the factor ``d[i:j]`` with
``0 ≤ i ≤ j ≤ |d|`` (0-based here; the literature's 1-based ``[i, j⟩`` is
the same object shifted).  Spans are *positional*: two spans with equal
content at different locations are different spans — that distinction is
exactly what the string-equality selection ζ= is about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = ["Span", "all_spans", "spans_of_occurrences"]


@dataclass(frozen=True, order=True)
class Span:
    """The span ``[start, end⟩``; ``content(d)`` gives the marked factor."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if not (0 <= self.start <= self.end):
            raise ValueError(f"invalid span [{self.start}, {self.end}⟩")

    def __len__(self) -> int:
        return self.end - self.start

    def content(self, document: str) -> str:
        """The factor of ``document`` this span marks."""
        if self.end > len(document):
            raise ValueError(
                f"span [{self.start}, {self.end}⟩ exceeds document length "
                f"{len(document)}"
            )
        return document[self.start : self.end]

    def is_inside(self, other: "Span") -> bool:
        """Containment: self ⊆ other."""
        return other.start <= self.start and self.end <= other.end

    def precedes(self, other: "Span") -> bool:
        """Strict precedence: self ends before other starts."""
        return self.end <= other.start

    def adjacent_to(self, other: "Span") -> bool:
        """self ends exactly where other starts (concatenable)."""
        return self.end == other.start

    def __repr__(self) -> str:
        return f"[{self.start},{self.end}⟩"


def all_spans(document: str) -> Iterator[Span]:
    """Every span of ``document`` (Θ(n²) many)."""
    n = len(document)
    for start in range(n + 1):
        for end in range(start, n + 1):
            yield Span(start, end)


def spans_of_occurrences(document: str, factor: str) -> list[Span]:
    """Spans marking each occurrence of ``factor`` in ``document``."""
    if factor == "":
        return [Span(i, i) for i in range(len(document) + 1)]
    result = []
    start = document.find(factor)
    while start != -1:
        result.append(Span(start, start + len(factor)))
        start = document.find(factor, start + 1)
    return result
