"""Regex formulas: regular expressions with capture variables.

The extractor layer of the spanner framework (Fagin et al.): a regex
formula is a regular expression enriched with variable bindings
``x{ ... }``; matching a document yields, per match, a *span assignment*
mapping each variable to the span it captured.

Syntax accepted by :func:`parse_regex_formula`::

    γ(x) = .*x{acheive|begining}.*

* ``.`` matches any single letter of the alphabet (resolved at evaluation);
* ``x{ ... }`` binds variable x to the span matched by the body;
* ``| * + ? ( )`` as usual.

*Functionality* (every match binds every variable exactly once) is the
standard well-formedness condition for extractors; it is enforced
structurally: union branches must bind the same variable set, starred and
optional subexpressions must bind none, and a variable may not be bound
twice on one path.

Evaluation is by recursive span enumeration with memoisation on
(node, start, end) — exact and comfortably fast for the document sizes the
experiments use.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro import cachestats
from repro.spanners.spans import Span

__all__ = [
    "RegexFormula",
    "RTerminal",
    "RAny",
    "REpsilon",
    "RUnion",
    "RConcat",
    "RStar",
    "RBind",
    "parse_regex_formula",
    "SpanAssignment",
]

#: A span assignment: variable name → Span, hashable.
SpanAssignment = "frozenset[tuple[str, Span]]"


class RegexFormula:
    """Base class of regex-formula AST nodes."""

    def variables(self) -> frozenset[str]:
        """The variables this node binds on every match."""
        raise NotImplementedError

    def _enumerate(
        self, document: str, start: int, end: int, cache: dict
    ) -> "frozenset":
        """Return the span assignments under which d[start:end] matches."""
        raise NotImplementedError

    def _matches(
        self, document: str, start: int, end: int, cache: dict | None = None
    ) -> "frozenset":
        """Memoised evaluation: results are cached per (node, start, end).

        The cache is scoped to one ``match_spans`` call (one document), so
        shared subexpressions and the quadratically-many ``.*`` probes are
        each computed once.
        """
        if cache is None:
            cache = {}
        key = (id(self), start, end)
        hit = cache.get(key)
        if hit is None:
            hit = self._enumerate(document, start, end, cache)
            cache[key] = hit
        return hit

    def match_spans(self, document: str) -> frozenset:
        """Evaluate on a full document: the set of span assignments of
        complete matches (each a frozenset of (var, Span) pairs).

        Memoised across calls on ``(formula, document)`` — AST nodes are
        frozen dataclasses, so equality is structural.  Spanner
        expression trees re-evaluate shared subtrees (``pairs - equal``
        walks ``pairs`` twice, and each ``evaluate`` recurses from the
        leaves), so the same extractor hits the same document several
        times per pipeline; the result is an immutable frozenset, safe
        to share.
        """
        return _match_spans_cached(self, document)


@dataclass(frozen=True)
class REpsilon(RegexFormula):
    """Matches the empty factor."""

    def variables(self) -> frozenset[str]:
        return frozenset()

    def _enumerate(self, document, start, end, cache):
        if start == end:
            return frozenset([frozenset()])
        return frozenset()


@dataclass(frozen=True)
class RTerminal(RegexFormula):
    """Matches one fixed letter."""

    symbol: str

    def __post_init__(self) -> None:
        if len(self.symbol) != 1:
            raise ValueError("terminal must be a single letter")

    def variables(self) -> frozenset[str]:
        return frozenset()

    def _enumerate(self, document, start, end, cache):
        if end == start + 1 and document[start] == self.symbol:
            return frozenset([frozenset()])
        return frozenset()


@dataclass(frozen=True)
class RAny(RegexFormula):
    """Matches any single letter (the ``.`` / Σ wildcard)."""

    def variables(self) -> frozenset[str]:
        return frozenset()

    def _enumerate(self, document, start, end, cache):
        if end == start + 1:
            return frozenset([frozenset()])
        return frozenset()


@dataclass(frozen=True)
class RUnion(RegexFormula):
    """Alternation; branches must bind the same variables (functionality)."""

    left: RegexFormula
    right: RegexFormula

    def __post_init__(self) -> None:
        if self.left.variables() != self.right.variables():
            raise ValueError(
                "union branches bind different variables "
                f"({sorted(self.left.variables())} vs "
                f"{sorted(self.right.variables())}); the formula would not "
                "be functional"
            )

    def variables(self) -> frozenset[str]:
        return self.left.variables()

    def _enumerate(self, document, start, end, cache):
        return self.left._matches(document, start, end, cache) | (
            self.right._matches(document, start, end, cache)
        )


@dataclass(frozen=True)
class RConcat(RegexFormula):
    """Concatenation; the parts must bind disjoint variable sets."""

    left: RegexFormula
    right: RegexFormula

    def __post_init__(self) -> None:
        overlap = self.left.variables() & self.right.variables()
        if overlap:
            raise ValueError(
                f"variables bound twice on one path: {sorted(overlap)}"
            )

    def variables(self) -> frozenset[str]:
        return self.left.variables() | self.right.variables()

    def _enumerate(self, document, start, end, cache):
        result = set()
        for split in range(start, end + 1):
            left_matches = self.left._matches(document, start, split, cache)
            if not left_matches:
                continue
            right_matches = self.right._matches(document, split, end, cache)
            for left_assignment in left_matches:
                for right_assignment in right_matches:
                    result.add(left_assignment | right_assignment)
        return frozenset(result)


@dataclass(frozen=True)
class RStar(RegexFormula):
    """Kleene star; the body must bind no variables (functionality)."""

    inner: RegexFormula

    def __post_init__(self) -> None:
        if self.inner.variables():
            raise ValueError(
                "starred subexpressions cannot bind variables "
                f"({sorted(self.inner.variables())})"
            )

    def variables(self) -> frozenset[str]:
        return frozenset()

    def _enumerate(self, document, start, end, cache):
        # d[start:end] ∈ L(inner)* — decide by DP over reachable positions;
        # no variables are bound, so the only possible assignment is ∅.
        if start == end:
            return frozenset([frozenset()])
        reachable = {start}
        frontier = [start]
        while frontier:
            position = frontier.pop()
            for mid in range(position + 1, end + 1):
                if mid in reachable:
                    continue
                if self.inner._matches(document, position, mid, cache):
                    reachable.add(mid)
                    frontier.append(mid)
        if end in reachable:
            return frozenset([frozenset()])
        return frozenset()


@dataclass(frozen=True)
class RBind(RegexFormula):
    """The capture ``var{ body }``: binds var to the matched span."""

    var: str
    body: RegexFormula

    def __post_init__(self) -> None:
        if self.var in self.body.variables():
            raise ValueError(f"variable {self.var!r} bound twice")

    def variables(self) -> frozenset[str]:
        return self.body.variables() | {self.var}

    def _enumerate(self, document, start, end, cache):
        bound = (self.var, Span(start, end))
        return frozenset(
            assignment | {bound}
            for assignment in self.body._matches(document, start, end, cache)
        )


class _FormulaParser:
    """Recursive-descent parser for the regex-formula syntax."""

    _META = set("|*+?(){}.")

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def peek(self) -> str | None:
        return self.text[self.pos] if self.pos < len(self.text) else None

    def take(self) -> str:
        ch = self.text[self.pos]
        self.pos += 1
        return ch

    def parse(self) -> RegexFormula:
        node = self.union()
        if self.pos != len(self.text):
            raise ValueError(
                f"trailing input at {self.pos}: {self.text[self.pos:]!r}"
            )
        return node

    def union(self) -> RegexFormula:
        node = self.concat()
        while self.peek() == "|":
            self.take()
            node = RUnion(node, self.concat())
        return node

    def concat(self) -> RegexFormula:
        parts: list[RegexFormula] = []
        while self.peek() is not None and self.peek() not in "|)}":
            parts.append(self.repeat())
        if not parts:
            return REpsilon()
        node = parts[0]
        for part in parts[1:]:
            node = RConcat(node, part)
        return node

    def repeat(self) -> RegexFormula:
        node = self.atom()
        while self.peek() in ("*", "+", "?"):
            op = self.take()
            if op == "*":
                node = RStar(node)
            elif op == "+":
                node = RConcat(node, RStar(node))
            else:
                node = RUnion(node, REpsilon()) if not node.variables() else (
                    self._optional_error()
                )
        return node

    @staticmethod
    def _optional_error() -> RegexFormula:
        raise ValueError("'?' over a variable-binding subexpression is not functional")

    def atom(self) -> RegexFormula:
        ch = self.peek()
        if ch is None:
            raise ValueError("unexpected end of pattern")
        if ch == "(":
            self.take()
            if self.peek() == ")":
                self.take()
                return REpsilon()
            node = self.union()
            if self.peek() != ")":
                raise ValueError(f"unbalanced '(' at {self.pos}")
            self.take()
            return node
        if ch == ".":
            self.take()
            return RAny()
        if ch in self._META:
            raise ValueError(f"unexpected {ch!r} at {self.pos}")
        self.take()
        if self.peek() == "{":
            self.take()
            body = self.union()
            if self.peek() != "}":
                raise ValueError(f"unbalanced '{{' at {self.pos}")
            self.take()
            return RBind(ch, body)
        if ch == "ε":
            return REpsilon()
        return RTerminal(ch)


@lru_cache(maxsize=4096)
def _match_spans_cached(formula: RegexFormula, document: str) -> frozenset:
    """The cross-call ``match_spans`` memo (see that method's docstring).

    Sized for the engine workload: E18/E23 touch a few hundred distinct
    (formula, document) pairs, so the working set fits without
    evictions; entries are small frozensets of span assignments.
    """
    # repro-lint: allow[effects.purity-propagation] id() only keys the per-call memo dict; the result is structural in (formula, document)
    return formula._matches(document, 0, len(document), {})


cachestats.register(
    "spanners.regex_formulas.match_spans", _match_spans_cached
)


@lru_cache(maxsize=256)
def parse_regex_formula(pattern: str) -> RegexFormula:
    """Parse a regex-formula pattern such as ``".*x{a(ba)*}.*"``.

    A single letter immediately followed by ``{`` is a variable binding;
    everything else follows ordinary regex syntax.
    """
    return _FormulaParser(pattern).parse()


cachestats.register(
    "spanners.regex_formulas.parse_regex_formula", parse_regex_formula
)
