"""The span relational algebra: ∪, π, ⋈, \\, ζ= (and generic ζ^R).

A :class:`SpanRelation` is a set of span tuples over a fixed schema
(variable names) for one document.  Generalized core spanners combine
extracted relations with union, projection, natural join, difference and
string-equality selection; all five are implemented here, plus the generic
relation selection ``ζ^R`` used by the selectability experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

from repro.spanners.spans import Span

__all__ = ["SpanTuple", "SpanRelation"]

#: One row: variable name → Span (immutable).
SpanTuple = Mapping[str, Span]


def _freeze(row: Mapping[str, Span]) -> frozenset:
    return frozenset(row.items())


def _thaw(frozen: frozenset) -> dict[str, Span]:
    return dict(frozen)


@dataclass(frozen=True)
class SpanRelation:
    """A set of span tuples over a fixed schema, tied to one document.

    All operations validate schemas the way the spanner algebra demands:
    union and difference require identical schemas; natural join matches on
    shared variables; projection keeps a subset.
    """

    document: str
    schema: frozenset[str]
    rows: frozenset  # frozenset of frozenset[(var, Span)]

    @classmethod
    def build(
        cls,
        document: str,
        rows: Iterable[Mapping[str, Span]],
        schema: Iterable[str] | None = None,
    ) -> "SpanRelation":
        """Construct from an iterable of {var: Span} rows.

        The schema defaults to the variables of the first row; every row
        must match it exactly.
        """
        materialised = [dict(row) for row in rows]
        if schema is None:
            if not materialised:
                raise ValueError(
                    "schema required for an empty relation (pass schema=...)"
                )
            inferred = frozenset(materialised[0])
        else:
            inferred = frozenset(schema)
        for row in materialised:
            if frozenset(row) != inferred:
                raise ValueError(
                    f"row schema {sorted(row)} does not match relation "
                    f"schema {sorted(inferred)}"
                )
        return cls(document, inferred, frozenset(_freeze(r) for r in materialised))

    @classmethod
    def empty(cls, document: str, schema: Iterable[str]) -> "SpanRelation":
        return cls(document, frozenset(schema), frozenset())

    # -- inspection -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        for frozen in self.rows:
            yield _thaw(frozen)

    def __contains__(self, row: Mapping[str, Span]) -> bool:
        return _freeze(row) in self.rows

    def contents(self) -> frozenset[tuple[tuple[str, str], ...]]:
        """The content view: each row as sorted (var, factor) pairs.

        This is the projection from positional spans to strings that the
        FC[REG] ↔ spanner correspondence compares on.
        """
        result = set()
        for row in self:
            result.add(
                tuple(
                    (var, row[var].content(self.document))
                    for var in sorted(row)
                )
            )
        return frozenset(result)

    # -- the algebra ------------------------------------------------------------

    def _require_same_document(self, other: "SpanRelation") -> None:
        if self.document != other.document:
            raise ValueError("operands evaluate over different documents")

    def union(self, other: "SpanRelation") -> "SpanRelation":
        """``R ∪ S`` — schemas must coincide."""
        self._require_same_document(other)
        if self.schema != other.schema:
            raise ValueError(
                f"union schema mismatch: {sorted(self.schema)} vs "
                f"{sorted(other.schema)}"
            )
        return SpanRelation(self.document, self.schema, self.rows | other.rows)

    def difference(self, other: "SpanRelation") -> "SpanRelation":
        """``R \\ S`` — schemas must coincide (the generalized-core op)."""
        self._require_same_document(other)
        if self.schema != other.schema:
            raise ValueError(
                f"difference schema mismatch: {sorted(self.schema)} vs "
                f"{sorted(other.schema)}"
            )
        return SpanRelation(self.document, self.schema, self.rows - other.rows)

    def project(self, variables: Iterable[str]) -> "SpanRelation":
        """``π_V R`` — keep only the listed variables."""
        keep = frozenset(variables)
        stray = keep - self.schema
        if stray:
            raise ValueError(f"projection onto unknown variables {sorted(stray)}")
        projected = frozenset(
            frozenset(
                (var, span) for var, span in frozen if var in keep
            )
            for frozen in self.rows
        )
        return SpanRelation(self.document, keep, projected)

    def natural_join(self, other: "SpanRelation") -> "SpanRelation":
        """``R ⋈ S`` — agree on shared variables, merge the rest."""
        self._require_same_document(other)
        shared = self.schema & other.schema
        merged_schema = self.schema | other.schema
        # Hash join on the shared variables.
        buckets: dict[frozenset, list[dict[str, Span]]] = {}
        for row in other:
            key = frozenset((v, row[v]) for v in shared)
            buckets.setdefault(key, []).append(row)
        out = set()
        for row in self:
            key = frozenset((v, row[v]) for v in shared)
            for match in buckets.get(key, ()):
                merged = dict(row)
                merged.update(match)
                out.add(_freeze(merged))
        return SpanRelation(self.document, merged_schema, frozenset(out))

    def select_equal(self, x: str, y: str) -> "SpanRelation":
        """``ζ=_{x,y} R`` — keep rows where the spans of x and y mark the
        *same factor* (possibly at different positions)."""
        if x not in self.schema or y not in self.schema:
            raise ValueError(f"ζ= over unknown variables {x!r}, {y!r}")
        kept = frozenset(
            frozen
            for frozen in self.rows
            if (row := _thaw(frozen))[x].content(self.document)
            == row[y].content(self.document)
        )
        return SpanRelation(self.document, self.schema, kept)

    def select_relation(
        self, variables: Sequence[str], predicate: Callable[..., bool]
    ) -> "SpanRelation":
        """``ζ^R_{x₁…x_k} R`` — generic relation selection on *contents*.

        This is the operator whose (non-)redundancy the paper studies:
        ``R`` is *selectable* iff adding ζ^R does not increase expressive
        power.  The predicate receives the factor contents of the listed
        variables, in order.
        """
        stray = set(variables) - self.schema
        if stray:
            raise ValueError(f"ζ^R over unknown variables {sorted(stray)}")
        kept = frozenset(
            frozen
            for frozen in self.rows
            if predicate(
                *(
                    _thaw(frozen)[v].content(self.document)
                    for v in variables
                )
            )
        )
        return SpanRelation(self.document, self.schema, kept)
