"""FO[EQ]: first-order logic over positions with built-in factor equality.

The paper's related-work discussion (and the prior aⁿbⁿ proof it improves
on) uses FO[EQ], introduced by Freydenberger–Peterfreund: words are
encoded position-wise as ``({1..|w|}, <, (P_a)_{a∈Σ}, EQ)`` where

* ``x < y`` is the position order,
* ``P_a(x)`` holds iff the letter at position x is a,
* ``EQ(x₁, y₁, x₂, y₂)`` holds iff the factors ``w[x₁..y₁]`` and
  ``w[x₂..y₂]`` (closed intervals) are equal.

FO[EQ] has the same expressive power as FC; the Feferman–Vaught route to
``aⁿbⁿ ∉ FC`` runs through this logic.  This subpackage implements it so
the two routes can be compared executably (experiment E20).

This module: the AST (separate from FC's — variables range over
*positions*, not factors) and quantifier rank.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "PVar",
    "PFormula",
    "Less",
    "SymbolAt",
    "FactorEq",
    "PNot",
    "PAnd",
    "POr",
    "PImplies",
    "PExists",
    "PForall",
    "p_quantifier_rank",
    "p_free_variables",
    "p_conjunction",
    "p_disjunction",
]


@dataclass(frozen=True)
class PVar:
    """A position variable."""

    name: str

    def __repr__(self) -> str:
        return self.name


class PFormula:
    """Base class of FO[EQ] formulas."""

    def __and__(self, other: "PFormula") -> "PAnd":
        return PAnd(self, other)

    def __or__(self, other: "PFormula") -> "POr":
        return POr(self, other)

    def __invert__(self) -> "PNot":
        return PNot(self)


@dataclass(frozen=True, repr=False)
class Less(PFormula):
    """``x < y`` on positions."""

    x: PVar
    y: PVar

    def __repr__(self) -> str:
        return f"({self.x!r} < {self.y!r})"


@dataclass(frozen=True, repr=False)
class SymbolAt(PFormula):
    """``P_a(x)``: the letter at position x is ``symbol``."""

    symbol: str
    x: PVar

    def __post_init__(self) -> None:
        if len(self.symbol) != 1:
            raise ValueError("symbol predicates are per-letter")

    def __repr__(self) -> str:
        return f"P_{self.symbol}({self.x!r})"


@dataclass(frozen=True, repr=False)
class FactorEq(PFormula):
    """``EQ(x₁, y₁, x₂, y₂)``: w[x₁..y₁] = w[x₂..y₂] (closed intervals).

    Holds only when both intervals are well-formed (xᵢ ≤ yᵢ).
    """

    x1: PVar
    y1: PVar
    x2: PVar
    y2: PVar

    def __repr__(self) -> str:
        return f"EQ({self.x1!r},{self.y1!r},{self.x2!r},{self.y2!r})"


@dataclass(frozen=True, repr=False)
class PNot(PFormula):
    inner: PFormula

    def __repr__(self) -> str:
        return f"¬{self.inner!r}"


@dataclass(frozen=True, repr=False)
class PAnd(PFormula):
    left: PFormula
    right: PFormula

    def __repr__(self) -> str:
        return f"({self.left!r} ∧ {self.right!r})"


@dataclass(frozen=True, repr=False)
class POr(PFormula):
    left: PFormula
    right: PFormula

    def __repr__(self) -> str:
        return f"({self.left!r} ∨ {self.right!r})"


@dataclass(frozen=True, repr=False)
class PImplies(PFormula):
    left: PFormula
    right: PFormula

    def __repr__(self) -> str:
        return f"({self.left!r} → {self.right!r})"


@dataclass(frozen=True, repr=False)
class PExists(PFormula):
    var: PVar
    inner: PFormula

    def __repr__(self) -> str:
        return f"∃{self.var!r}: {self.inner!r}"


@dataclass(frozen=True, repr=False)
class PForall(PFormula):
    var: PVar
    inner: PFormula

    def __repr__(self) -> str:
        return f"∀{self.var!r}: {self.inner!r}"


def p_quantifier_rank(formula: PFormula) -> int:
    """Quantifier rank, defined exactly as for FC."""
    if isinstance(formula, (Less, SymbolAt, FactorEq)):
        return 0
    if isinstance(formula, PNot):
        return p_quantifier_rank(formula.inner)
    if isinstance(formula, (PAnd, POr, PImplies)):
        return max(
            p_quantifier_rank(formula.left), p_quantifier_rank(formula.right)
        )
    if isinstance(formula, (PExists, PForall)):
        return p_quantifier_rank(formula.inner) + 1
    raise TypeError(f"unknown FO[EQ] node: {formula!r}")


def _atom_vars(formula: PFormula) -> Iterator[PVar]:
    if isinstance(formula, Less):
        yield formula.x
        yield formula.y
    elif isinstance(formula, SymbolAt):
        yield formula.x
    elif isinstance(formula, FactorEq):
        yield formula.x1
        yield formula.y1
        yield formula.x2
        yield formula.y2
    else:
        raise TypeError(f"not an FO[EQ] atom: {formula!r}")


def p_free_variables(formula: PFormula) -> frozenset[PVar]:
    """Free position variables."""
    if isinstance(formula, PNot):
        return p_free_variables(formula.inner)
    if isinstance(formula, (PAnd, POr, PImplies)):
        return p_free_variables(formula.left) | p_free_variables(formula.right)
    if isinstance(formula, (PExists, PForall)):
        return p_free_variables(formula.inner) - {formula.var}
    return frozenset(_atom_vars(formula))


def p_conjunction(formulas: list[PFormula]) -> PFormula:
    if not formulas:
        raise ValueError("empty conjunction")
    result = formulas[-1]
    for item in reversed(formulas[:-1]):
        result = PAnd(item, result)
    return result


def p_disjunction(formulas: list[PFormula]) -> PFormula:
    if not formulas:
        raise ValueError("empty disjunction")
    result = formulas[-1]
    for item in reversed(formulas[:-1]):
        result = POr(item, result)
    return result
