"""EF games for FO[EQ] — the comparison side of experiment E20.

Position structures are tiny (|w| elements vs Θ(|w|²) factors), so exact
game solving reaches further here than for FC.  The solver decides
``w ≡_k^{FO[EQ]} v`` — Duplicator survival in the k-round game over the
position structures — with the partial-isomorphism condition induced by
the signature {<, (P_a), EQ}.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product

from repro.foeq.semantics import factor_at

__all__ = [
    "position_partial_iso",
    "PositionGameSolver",
    "foeq_equiv_k",
    "foeq_distinguishing_rank",
    "folt_equiv_k",
    "folt_distinguishing_rank",
]


def position_partial_iso(
    w: str, v: str, positions_w: tuple, positions_v: tuple, with_eq: bool = True
) -> bool:
    """Definition-3.1-style check for the FO[EQ] signature.

    Conditions on the paired positions: order type mirrored, letters
    mirrored, and (unless ``with_eq`` is off — the plain FO[<] game) the
    quaternary EQ pattern mirrored.
    """
    if len(positions_w) != len(positions_v):
        raise ValueError("tuples must have equal length")
    n = len(positions_w)
    for i in range(n):
        if w[positions_w[i] - 1] != v[positions_v[i] - 1]:
            return False
        for j in range(n):
            if (positions_w[i] < positions_w[j]) != (
                positions_v[i] < positions_v[j]
            ):
                return False
            if (positions_w[i] == positions_w[j]) != (
                positions_v[i] == positions_v[j]
            ):
                return False
    if not with_eq:
        return True
    for i, j, k, l in product(range(n), repeat=4):
        left_w = factor_at(w, positions_w[i], positions_w[j])
        right_w = factor_at(w, positions_w[k], positions_w[l])
        holds_w = left_w is not None and left_w == right_w
        left_v = factor_at(v, positions_v[i], positions_v[j])
        right_v = factor_at(v, positions_v[k], positions_v[l])
        holds_v = left_v is not None and left_v == right_v
        if holds_w != holds_v:
            return False
    return True


@dataclass
class PositionGameSolver:
    """Exact k-round EF solver over the position structures of two words.

    ``with_eq = False`` plays the plain FO[<] game (signature {<, P_a}) —
    used to show that the EQ relation is what lets FO[EQ] define squares.
    """

    w: str
    v: str
    with_eq: bool = True
    _memo: dict = field(default_factory=dict, repr=False)

    def consistent(self, pairs: frozenset) -> bool:
        ordered = sorted(pairs)
        return position_partial_iso(
            self.w,
            self.v,
            tuple(p for p, _ in ordered),
            tuple(q for _, q in ordered),
            self.with_eq,
        )

    def duplicator_wins(self, rounds: int, pairs: frozenset = frozenset()) -> bool:
        if not self.consistent(pairs):
            return False
        return self._wins(rounds, pairs)

    def _wins(self, rounds: int, pairs: frozenset) -> bool:
        if rounds == 0:
            return True
        key = (rounds, pairs)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        result = all(
            self._response(rounds, pairs, side, position) is not None
            for side, position in self._moves(pairs)
        )
        self._memo[key] = result
        return result

    def _moves(self, pairs: frozenset):
        taken_w = {p for p, _ in pairs}
        taken_v = {q for _, q in pairs}
        for position in range(1, len(self.w) + 1):
            if position not in taken_w:
                yield "A", position
        for position in range(1, len(self.v) + 1):
            if position not in taken_v:
                yield "B", position

    def _response(self, rounds: int, pairs: frozenset, side: str, position: int):
        limit = len(self.v) if side == "A" else len(self.w)
        offset = (
            len(self.v) - len(self.w) if side == "A" else len(self.w) - len(self.v)
        )
        mirror = position + offset
        candidates = sorted(
            range(1, limit + 1),
            key=lambda q: min(abs(q - position), abs(q - mirror)),
        )
        for response in candidates:
            pair = (position, response) if side == "A" else (response, position)
            extended = pairs | {pair}
            if self.consistent(extended) and self._wins(rounds - 1, extended):
                return response
        return None


def foeq_equiv_k(w: str, v: str, k: int) -> bool:
    """Decide ``w ≡_k v`` in the FO[EQ] game."""
    if w == v:
        return True
    return PositionGameSolver(w, v).duplicator_wins(k)


def foeq_distinguishing_rank(w: str, v: str, max_k: int) -> int | None:
    """Least k ≤ max_k with ``w ≢_k^{FO[EQ]} v`` (None if equivalent)."""
    if w == v:
        return None
    solver = PositionGameSolver(w, v)
    for k in range(max_k + 1):
        if not solver.duplicator_wins(k):
            return k
    return None


def folt_equiv_k(w: str, v: str, k: int) -> bool:
    """``w ≡_k v`` in the plain FO[<] game (no EQ relation)."""
    if w == v:
        return True
    return PositionGameSolver(w, v, with_eq=False).duplicator_wins(k)


def folt_distinguishing_rank(w: str, v: str, max_k: int) -> int | None:
    """Least k ≤ max_k with ``w ≢_k^{FO[<]} v`` (None if equivalent)."""
    if w == v:
        return None
    solver = PositionGameSolver(w, v, with_eq=False)
    for k in range(max_k + 1):
        if not solver.duplicator_wins(k):
            return k
    return None
