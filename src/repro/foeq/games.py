"""EF games for FO[EQ] — the comparison side of experiment E20.

Position structures are tiny (|w| elements vs Θ(|w|²) factors), so exact
game solving reaches further here than for FC.  The solver decides
``w ≡_k^{FO[EQ]} v`` — Duplicator survival in the k-round game over the
position structures — with the partial-isomorphism condition induced by
the signature {<, (P_a), EQ}.

Since the interned-factor kernel landed this solver follows its playbook
(:mod:`repro.kernel.efcore`) on the position side:

* **Interned intervals.**  Every factor ``w[i..j]`` / ``v[i..j]`` gets a
  dense id from one shared pool at construction, so the EQ condition
  compares ints instead of slicing strings (the old solver sliced
  O(n) characters per ``factor_at``, O(m⁴) times per consistency check).
* **Incremental consistency.**  Extending a consistent position by one
  pair validates letters and order against the new pair only; the EQ
  condition collapses from the O(m⁴) quadruple scan to an O(m²) partial-
  bijection check over interval ids (sound because order mirroring
  already forces interval *definedness* to coincide — see
  ``_extend``).
* **Canonical transposition keys.**  Position structures are rigid (any
  automorphism of a finite total order is the identity), so the sorted
  pair tuple *is* the canonical form; the memo is keyed on it directly
  and shared across all round counts queried on one solver.

Results and the deterministic move/response ordering are bit-for-bit
those of the original string-based solver, which survives as
:class:`repro.foeq.naive.NaivePositionGameSolver` — the oracle that
``tests/foeq/test_games_differential.py`` checks this one against.
Search-effort counters flow into :mod:`repro.kernel.stats`
(``foeq_positions_explored`` …) so the engine's per-task sampling covers
this solver like every other.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.foeq.naive import position_partial_iso
from repro.kernel import stats as _global_stats

__all__ = [
    "position_partial_iso",
    "PositionGameSolver",
    "foeq_equiv_k",
    "foeq_distinguishing_rank",
    "folt_equiv_k",
    "folt_distinguishing_rank",
]


def _interval_ids(
    word: str, pool: dict
) -> tuple[tuple[int, ...], ...]:
    """``table[i][j]`` = dense id of ``word[i..j]`` (1-based, closed);
    ids are shared through ``pool`` so cross-word factor equality is
    integer equality."""
    n = len(word)
    table = []
    for i in range(n + 1):
        row = [-1] * (n + 1)
        if i >= 1:
            for j in range(i, n + 1):
                text = word[i - 1 : j]
                fid = pool.get(text)
                if fid is None:
                    fid = len(pool)
                    pool[text] = fid
                row[j] = fid
        table.append(tuple(row))
    return tuple(table)


@dataclass
class PositionGameSolver:
    """Exact k-round EF solver over the position structures of two words.

    ``with_eq = False`` plays the plain FO[<] game (signature {<, P_a}) —
    used to show that the EQ relation is what lets FO[EQ] define squares.
    """

    w: str
    v: str
    with_eq: bool = True
    _memo: dict = field(default_factory=dict, repr=False)
    _fid_w: tuple = field(default=(), repr=False)
    _fid_v: tuple = field(default=(), repr=False)
    _counters: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        pool: dict = {}
        self._fid_w = _interval_ids(self.w, pool)
        self._fid_v = _interval_ids(self.v, pool)
        self._counters = {
            "positions_explored": 0,
            "table_hits": 0,
            "consistency_checks": 0,
        }

    def _bump(self, name: str) -> None:
        self._counters[name] += 1
        _global_stats.record(f"foeq_{name}")

    # -- consistency -----------------------------------------------------------

    def consistent(self, pairs: frozenset) -> bool:
        """Full Definition-3.1 check (the specification; extension moves
        use the incremental ``_extend`` instead)."""
        self._bump("consistency_checks")
        ordered = sorted(pairs)
        return position_partial_iso(
            self.w,
            self.v,
            tuple(p for p, _ in ordered),
            tuple(q for _, q in ordered),
            self.with_eq,
        )

    def _extend(self, state: tuple, pair: tuple):
        """The consistent position reached by playing ``pair`` on
        ``state`` (a sorted, already-consistent pair tuple), or ``None``.

        Letters and order/equality are checked against the new pair
        only.  The EQ condition reduces to: the map ``id_w(interval) →
        id_v(interval)`` over all defined interval pairs must be a
        partial bijection — order mirroring already forces definedness
        (p_i ≤ p_j iff q_i ≤ q_j) to coincide, and matching
        definedness + bijection is exactly "every EQ quadruple has the
        same truth value on both sides".
        """
        self._bump("consistency_checks")
        p, q = pair
        if self.w[p - 1] != self.v[q - 1]:
            return None
        for p2, q2 in state:
            if (p < p2) != (q < q2) or (p == p2) != (q == q2):
                return None
        merged = []
        placed = False
        for existing in state:
            if not placed and pair < existing:
                merged.append(pair)
                placed = True
            merged.append(existing)
        if not placed:
            merged.append(pair)
        if self.with_eq and not self._eq_mirrored(merged):
            return None
        return tuple(merged)

    def _eq_mirrored(self, pairs: list) -> bool:
        fid_w = self._fid_w
        fid_v = self._fid_v
        forward: dict = {}
        backward: dict = {}
        for p1, q1 in pairs:
            row_w = fid_w[p1]
            row_v = fid_v[q1]
            for p2, q2 in pairs:
                if p1 > p2:
                    continue
                a = row_w[p2]
                b = row_v[q2]
                seen = forward.get(a)
                if seen is None:
                    forward[a] = b
                elif seen != b:
                    return False
                seen = backward.get(b)
                if seen is None:
                    backward[b] = a
                elif seen != a:
                    return False
        return True

    # -- game search -----------------------------------------------------------

    def duplicator_wins(self, rounds: int, pairs: frozenset = frozenset()) -> bool:
        if not self.consistent(pairs):
            return False
        return self._wins(rounds, tuple(sorted(pairs)))

    def _wins(self, rounds: int, state: tuple) -> bool:
        if rounds == 0:
            return True
        key = (rounds, state)
        cached = self._memo.get(key)
        if cached is not None:
            self._bump("table_hits")
            return cached
        self._bump("positions_explored")
        result = all(
            self._response(rounds, state, side, position) is not None
            for side, position in self._moves(state)
        )
        self._memo[key] = result
        return result

    def _moves(self, state: tuple):
        taken_w = {p for p, _ in state}
        taken_v = {q for _, q in state}
        for position in range(1, len(self.w) + 1):
            if position not in taken_w:
                yield "A", position
        for position in range(1, len(self.v) + 1):
            if position not in taken_v:
                yield "B", position

    def _response(self, rounds: int, state: tuple, side: str, position: int):
        limit = len(self.v) if side == "A" else len(self.w)
        offset = (
            len(self.v) - len(self.w) if side == "A" else len(self.w) - len(self.v)
        )
        mirror = position + offset
        candidates = sorted(
            range(1, limit + 1),
            key=lambda q: min(abs(q - position), abs(q - mirror)),
        )
        for response in candidates:
            pair = (position, response) if side == "A" else (response, position)
            extended = self._extend(state, pair)
            if extended is not None and self._wins(rounds - 1, extended):
                return response
        return None

    # -- introspection (mirrors repro.ef.solver.GameSolver) --------------------

    def memo_size(self) -> int:
        """Number of memoised canonical positions (for benchmark reports)."""
        return len(self._memo)

    def solver_stats(self) -> dict[str, int]:
        """Search-effort counters for this solver instance.

        ``positions_explored`` (transposition-table misses computed),
        ``table_hits``, ``consistency_checks`` (incremental pair
        validations), plus ``memo_size`` and the two universe sizes.
        Process-wide totals flow into ``BENCH_engine.json`` via the
        ``foeq_*`` counters of :mod:`repro.kernel.stats`.
        """
        out = dict(self._counters)
        out["memo_size"] = len(self._memo)
        out["universe_a"] = len(self.w)
        out["universe_b"] = len(self.v)
        return out


def foeq_equiv_k(w: str, v: str, k: int) -> bool:
    """Decide ``w ≡_k v`` in the FO[EQ] game."""
    if w == v:
        return True
    return PositionGameSolver(w, v).duplicator_wins(k)


def foeq_distinguishing_rank(w: str, v: str, max_k: int) -> int | None:
    """Least k ≤ max_k with ``w ≢_k^{FO[EQ]} v`` (None if equivalent)."""
    if w == v:
        return None
    solver = PositionGameSolver(w, v)
    for k in range(max_k + 1):
        if not solver.duplicator_wins(k):
            return k
    return None


def folt_equiv_k(w: str, v: str, k: int) -> bool:
    """``w ≡_k v`` in the plain FO[<] game (no EQ relation)."""
    if w == v:
        return True
    return PositionGameSolver(w, v, with_eq=False).duplicator_wins(k)


def folt_distinguishing_rank(w: str, v: str, max_k: int) -> int | None:
    """Least k ≤ max_k with ``w ≢_k^{FO[<]} v`` (None if equivalent)."""
    if w == v:
        return None
    solver = PositionGameSolver(w, v, with_eq=False)
    for k in range(max_k + 1):
        if not solver.duplicator_wins(k):
            return k
    return None
