"""Compiled FO[EQ] evaluation: interval-id atoms + projection caches.

:func:`repro.foeq.semantics.p_models` re-interprets the AST per call and
slices O(n) characters per ``EQ`` atom; sweeps like ``p_language_slice``
and E20's agreement loop evaluate the *same* sentence (φ_square) on
every word of a family.  This module compiles a formula once into a
plan tree (quantifier-free subformula costs, flattened ∧/∨ chains
evaluated cheapest-first — sound since evaluation is total) and
evaluates it against per-word state:

* a dense interval-id table (``fid[i][j]`` = id of ``w[i..j]``), so the
  quaternary EQ atom is two lookups and an int compare;
* one projection cache per quantifier node, keyed on the positions of
  the node's free variables — the same sideways sharing as
  :class:`repro.fc.compiled.CompiledEvaluator`, transplanted to the
  position side.

Compiled programs are shared process-wide per formula (FO[EQ] ASTs are
frozen dataclasses, so structural equality keys the cache) — callers
that rebuild ``phi_square()`` inside a loop still compile once.
"""

from __future__ import annotations

from functools import lru_cache

from repro import cachestats
from repro.foeq.syntax import (
    FactorEq,
    Less,
    PAnd,
    PExists,
    PForall,
    PFormula,
    PImplies,
    PNot,
    POr,
    PVar,
    SymbolAt,
    p_free_variables,
)

__all__ = ["PositionProgram", "position_program"]

_LESS, _SYMAT, _EQ, _NOT, _AND, _OR, _IMPLIES, _QUANT = range(8)

#: Per-program bound on cached word states.  Each state holds an O(n²)
#: interval table plus projection caches, and programs live process-wide
#: (``position_program``'s lru_cache), so an unbounded dict would grow
#: with every word a sweep touches.  256 comfortably covers the repeated
#: words of the E20 agreement pairs and game loops while keeping big
#: ``p_language_slice`` grids at a constant footprint (grid words are
#: each evaluated once, so eviction costs them nothing).
_MAX_STATES = 256


class _Plan:
    __slots__ = ("kind", "vars", "symbol", "children", "cost", "want", "free", "cache_index")

    def __init__(self, kind: int) -> None:
        self.kind = kind
        self.vars: tuple = ()
        self.symbol = ""
        self.children: tuple = ()
        self.cost = 1
        self.want = True
        self.free: tuple = ()
        self.cache_index = -1


class _WordState:
    __slots__ = ("word", "n", "fid", "caches")

    def __init__(self, word: str, n_caches: int) -> None:
        self.word = word
        self.n = len(word)
        n = self.n
        fid = []
        pool: dict = {}  # repro-lint: domain[map[plain, interval]] factor text → dense interval id
        for i in range(n + 1):
            row = [-1] * (n + 1)  # repro-lint: domain[map[plain, interval]] -1 = "no interval" sentinel for j < i
            if i >= 1:
                for j in range(i, n + 1):
                    text = word[i - 1 : j]
                    value = pool.get(text)
                    if value is None:
                        value = len(pool)  # repro-lint: domain[interval] the interval-id mint — dense per word, never compared across words
                        pool[text] = value
                    row[j] = value
            fid.append(tuple(row))
        self.fid = tuple(fid)  # repro-lint: domain[map[plain, map[plain, interval]]] fid[i][j] — position-indexed, interval-valued
        self.caches = [dict() for _ in range(n_caches)]


class PositionProgram:
    """One FO[EQ] formula compiled for repeated evaluation."""

    def __init__(self, formula: PFormula) -> None:
        self._quant_count = 0
        self.root = self._compile(formula)
        self._states: dict[str, _WordState] = {}

    def _compile(self, node: PFormula) -> _Plan:
        if isinstance(node, Less):
            plan = _Plan(_LESS)
            plan.vars = (node.x, node.y)
            return plan
        if isinstance(node, SymbolAt):
            plan = _Plan(_SYMAT)
            plan.vars = (node.x,)
            plan.symbol = node.symbol
            return plan
        if isinstance(node, FactorEq):
            plan = _Plan(_EQ)
            plan.vars = (node.x1, node.y1, node.x2, node.y2)
            plan.cost = 2
            return plan
        if isinstance(node, PNot):
            plan = _Plan(_NOT)
            child = self._compile(node.inner)
            plan.children = (child,)
            plan.cost = child.cost
            return plan
        if isinstance(node, (PAnd, POr)):
            plan = _Plan(_AND if isinstance(node, PAnd) else _OR)
            flat: list[_Plan] = []
            self._flatten(node, type(node), flat)
            flat.sort(key=lambda p: p.cost)
            plan.children = tuple(flat)
            plan.cost = sum(p.cost for p in flat)
            return plan
        if isinstance(node, PImplies):
            plan = _Plan(_IMPLIES)
            plan.children = (self._compile(node.left), self._compile(node.right))
            plan.cost = plan.children[0].cost + plan.children[1].cost
            return plan
        if isinstance(node, (PExists, PForall)):
            plan = _Plan(_QUANT)
            inner = self._compile(node.inner)
            plan.children = (inner,)
            plan.vars = (node.var,)
            plan.want = isinstance(node, PExists)
            plan.free = tuple(
                sorted(p_free_variables(node), key=lambda v: v.name)
            )
            plan.cache_index = self._quant_count
            self._quant_count += 1
            plan.cost = 5 + 10 * inner.cost
            return plan
        raise TypeError(f"unknown FO[EQ] node: {node!r}")

    def _flatten(self, node: PFormula, op: type, out: list) -> None:
        if isinstance(node, op):
            self._flatten(node.left, op, out)
            self._flatten(node.right, op, out)
        else:
            out.append(self._compile(node))

    def evaluate(self, word: str, assignment: dict) -> bool:
        """Truth under ``assignment`` (which must cover the free vars;
        it is read, never mutated)."""
        # LRU over insertion-ordered dict: pop + reinsert moves the word
        # to the back; evict the front when full (deterministic — the
        # order depends only on the evaluation sequence).
        states = self._states
        state = states.pop(word, None)
        if state is None:
            state = _WordState(word, self._quant_count)
            if len(states) >= _MAX_STATES:
                del states[next(iter(states))]
        states[word] = state
        return self._eval(self.root, state, dict(assignment))

    def _eval(self, plan: _Plan, state: _WordState, sigma: dict) -> bool:
        kind = plan.kind
        if kind == _LESS:
            return sigma[plan.vars[0]] < sigma[plan.vars[1]]
        if kind == _SYMAT:
            return state.word[sigma[plan.vars[0]] - 1] == plan.symbol
        if kind == _EQ:
            x1, y1, x2, y2 = (sigma[v] for v in plan.vars)
            if x1 > y1 or x2 > y2:
                return False
            return state.fid[x1][y1] == state.fid[x2][y2]
        if kind == _AND:
            for child in plan.children:
                if not self._eval(child, state, sigma):
                    return False
            return True
        if kind == _OR:
            for child in plan.children:
                if self._eval(child, state, sigma):
                    return True
            return False
        if kind == _NOT:
            return not self._eval(plan.children[0], state, sigma)
        if kind == _IMPLIES:
            return (not self._eval(plan.children[0], state, sigma)) or (
                self._eval(plan.children[1], state, sigma)
            )
        # _QUANT
        variable = plan.vars[0]
        had = variable in sigma
        shadowed = sigma.pop(variable, None)
        cache = state.caches[plan.cache_index]
        projection = tuple(sigma[v] for v in plan.free)
        result = cache.get(projection)
        if result is None:
            want = plan.want
            inner = plan.children[0]
            result = not want
            for position in range(1, state.n + 1):
                sigma[variable] = position
                if self._eval(inner, state, sigma) == want:
                    result = want
                    break
            sigma.pop(variable, None)
            cache[projection] = result
        if had:
            sigma[variable] = shadowed
        return result


@lru_cache(maxsize=256)
def position_program(formula: PFormula) -> PositionProgram:
    """The compiled program for ``formula`` (shared process-wide)."""
    return PositionProgram(formula)


cachestats.register("foeq.position_program", position_program)
