"""FO[EQ]: the position-based logic the paper's related work runs through.

FO over ({1..|w|}, <, (P_a), EQ) with EQ the built-in factor-equality
relation.  Expressively equivalent to FC (Freydenberger–Peterfreund);
implemented here so the Feferman–Vaught route and the paper's EF-game
route can be compared executably (experiment E20).
"""

from repro.foeq.builders import (
    phi_first,
    phi_has_factor,
    phi_last,
    phi_sorted,
    phi_square,
    phi_successor,
)
from repro.foeq.games import (
    PositionGameSolver,
    foeq_distinguishing_rank,
    foeq_equiv_k,
    folt_distinguishing_rank,
    folt_equiv_k,
    position_partial_iso,
)
from repro.foeq.semantics import (
    factor_at,
    p_evaluate,
    p_language_slice,
    p_models,
)
from repro.foeq.syntax import (
    FactorEq,
    Less,
    PAnd,
    PExists,
    PForall,
    PFormula,
    PImplies,
    PNot,
    POr,
    PVar,
    SymbolAt,
    p_conjunction,
    p_disjunction,
    p_free_variables,
    p_quantifier_rank,
)

__all__ = [
    "phi_first",
    "phi_has_factor",
    "phi_last",
    "phi_sorted",
    "phi_square",
    "phi_successor",
    "PositionGameSolver",
    "foeq_distinguishing_rank",
    "foeq_equiv_k",
    "folt_distinguishing_rank",
    "folt_equiv_k",
    "position_partial_iso",
    "factor_at",
    "p_evaluate",
    "p_language_slice",
    "p_models",
    "FactorEq",
    "Less",
    "PAnd",
    "PExists",
    "PForall",
    "PFormula",
    "PImplies",
    "PNot",
    "POr",
    "PVar",
    "SymbolAt",
    "p_conjunction",
    "p_disjunction",
    "p_free_variables",
    "p_quantifier_rank",
]
