"""Model checking for FO[EQ] over position structures.

Positions are 1-based; the universe of ``w`` is ``{1, …, |w|}`` (the empty
word has an empty universe, so every ∃ is false and every ∀ is true on ε).
"""

from __future__ import annotations

from typing import Dict

from repro.foeq.compiled import position_program
from repro.foeq.syntax import (
    FactorEq,
    Less,
    PAnd,
    PExists,
    PForall,
    PFormula,
    PImplies,
    PNot,
    POr,
    PVar,
    SymbolAt,
    p_free_variables,
)
from repro.words.generators import words_up_to

__all__ = [
    "p_evaluate",
    "p_models",
    "p_language_slice",
    "factor_at",
]

PAssignment = Dict[PVar, int]


def factor_at(word: str, start: int, end: int) -> str | None:
    """The factor w[start..end] for 1-based closed intervals, or ``None``
    when the interval is not well-formed."""
    if not (1 <= start <= end <= len(word)):
        return None
    return word[start - 1 : end]


def p_evaluate(word: str, formula: PFormula, assignment: PAssignment) -> bool:
    """Decide ``(word-as-position-structure, σ) ⊨ φ``."""
    if isinstance(formula, Less):
        return assignment[formula.x] < assignment[formula.y]
    if isinstance(formula, SymbolAt):
        position = assignment[formula.x]
        return word[position - 1] == formula.symbol
    if isinstance(formula, FactorEq):
        left = factor_at(word, assignment[formula.x1], assignment[formula.y1])
        right = factor_at(word, assignment[formula.x2], assignment[formula.y2])
        return left is not None and left == right
    if isinstance(formula, PNot):
        return not p_evaluate(word, formula.inner, assignment)
    if isinstance(formula, PAnd):
        return p_evaluate(word, formula.left, assignment) and p_evaluate(
            word, formula.right, assignment
        )
    if isinstance(formula, POr):
        return p_evaluate(word, formula.left, assignment) or p_evaluate(
            word, formula.right, assignment
        )
    if isinstance(formula, PImplies):
        return (not p_evaluate(word, formula.left, assignment)) or p_evaluate(
            word, formula.right, assignment
        )
    if isinstance(formula, (PExists, PForall)):
        variable = formula.var
        shadowed = assignment.get(variable)
        had = variable in assignment
        want = isinstance(formula, PExists)
        result = not want
        for position in range(1, len(word) + 1):
            assignment[variable] = position
            if p_evaluate(word, formula.inner, assignment) == want:
                result = want
                break
        if had:
            assignment[variable] = shadowed  # type: ignore[assignment]
        else:
            assignment.pop(variable, None)
        return result
    raise TypeError(f"unknown FO[EQ] node: {formula!r}")


def p_models(
    word: str, formula: PFormula, assignment: PAssignment | None = None
) -> bool:
    """Decide satisfaction; free variables must be assigned positions."""
    assignment = dict(assignment or {})
    for variable in p_free_variables(formula):
        if variable not in assignment:
            raise ValueError(f"free position variable {variable!r} unassigned")
    for variable, position in assignment.items():
        if not (1 <= position <= len(word)):
            raise ValueError(
                f"{variable!r} ↦ {position} is not a position of {word!r}"
            )
    # Kernel fast path: interval-id atoms + per-quantifier projection
    # caches, with programs shared process-wide per formula (see
    # repro.foeq.compiled).  p_evaluate above remains the reference
    # semantics the compiled path is differential-tested against.
    return position_program(formula).evaluate(word, assignment)


def p_language_slice(
    sentence: PFormula, alphabet: str, max_length: int
) -> frozenset[str]:
    """``L(φ) ∩ Σ^{≤n}`` for an FO[EQ] sentence."""
    if p_free_variables(sentence):
        raise ValueError("language of an open formula")
    return frozenset(
        word
        for word in words_up_to(alphabet, max_length)
        if p_models(word, sentence)
    )
