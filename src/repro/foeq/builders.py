"""Concrete FO[EQ] formulas: the expressiveness demos of the comparison.

* ``phi_sorted`` — the input is in a*b* (pure FO[<], no EQ needed);
* ``phi_square`` — the input is a square ww; *requires* EQ (squares are
  not FO[<]-definable), matching FC's φ_ww;
* ``phi_successor`` — definable successor, used by the other builders;
* ``phi_has_factor`` — the input contains a fixed factor.

These are the formulas experiment E20 model-checks against the FC
counterparts to exhibit the FC ≡ FO[EQ] correspondence extensionally.
"""

from __future__ import annotations

from repro.foeq.syntax import (
    FactorEq,
    Less,
    PAnd,
    PExists,
    PFormula,
    PNot,
    PVar,
    SymbolAt,
    p_conjunction,
)

__all__ = [
    "phi_successor",
    "phi_first",
    "phi_last",
    "phi_sorted",
    "phi_square",
    "phi_has_factor",
]


def phi_successor(x: PVar, y: PVar) -> PFormula:
    """``y = x + 1``: x < y with nothing strictly between."""
    z = PVar(f"_succ[{x.name},{y.name}]")
    between = PExists(z, PAnd(Less(x, z), Less(z, y)))
    return PAnd(Less(x, y), PNot(between))


def phi_first(x: PVar) -> PFormula:
    """x is the first position."""
    z = PVar(f"_fst[{x.name}]")
    return PNot(PExists(z, Less(z, x)))


def phi_last(x: PVar) -> PFormula:
    """x is the last position."""
    z = PVar(f"_lst[{x.name}]")
    return PNot(PExists(z, Less(x, z)))


def phi_sorted(low: str = "a", high: str = "b") -> PFormula:
    """The input is in ``low*·high*``: no ``high`` before a ``low``.

    Pure FO[<] — the regular shape constraint of the conclusion section's
    closure trick, on the FO[EQ] side.
    """
    x, y = PVar("x"), PVar("y")
    bad = PExists(x, PExists(y, PAnd(Less(x, y), PAnd(SymbolAt(high, x), SymbolAt(low, y)))))
    return PNot(bad)


def phi_square() -> PFormula:
    """The input is a square ``ww`` — EQ does the heavy lifting.

    ``∃x, y, f, l: first(f) ∧ last(l) ∧ succ(x, y) ∧ EQ(f, x, y, l)``
    states the word splits at x|y into two equal halves; the empty word
    (no positions) is handled by the caller (FC counts ε as a square, so
    E20 compares on non-empty words or adds the ε case externally).
    """
    x, y, f, l = PVar("x"), PVar("y"), PVar("f"), PVar("l")
    body = p_conjunction(
        [
            phi_first(f),
            phi_last(l),
            phi_successor(x, y),
            FactorEq(f, x, y, l),
        ]
    )
    return PExists(f, PExists(l, PExists(x, PExists(y, body))))


def phi_has_factor(factor: str) -> PFormula:
    """The input contains ``factor`` (non-empty) as a factor."""
    if not factor:
        raise ValueError("use a non-empty factor")
    positions = [PVar(f"p{i}") for i in range(len(factor))]
    atoms: list[PFormula] = [
        SymbolAt(letter, position)
        for letter, position in zip(factor, positions)
    ]
    for previous, current in zip(positions, positions[1:]):
        atoms.append(phi_successor(previous, current))
    body = p_conjunction(atoms)
    for position in reversed(positions):
        body = PExists(position, body)
    return body
