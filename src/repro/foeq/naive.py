"""The reference FO[EQ] position-game solver (pre-kernel, string-based).

This is the original :class:`PositionGameSolver` implementation, moved
here verbatim when :mod:`repro.foeq.games` was rewritten on interned
interval ids: full partial-isomorphism rebuild per extension (the EQ
condition checked over all O(m⁴) index quadruples with O(n) string
slicing each) and string-keyed memoisation.  It is deliberately simple —
a direct transcription of the Definition-3.1-style condition — and
serves as the ground-truth oracle the differential tests in
``tests/foeq/`` compare the kernel-backed solver against, so it must
stay independent of the machinery under test.

:func:`position_partial_iso` also lives here (it *is* the specification
of consistency) and is re-exported by :mod:`repro.foeq.games` for
compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product

from repro.foeq.semantics import factor_at

__all__ = ["NaivePositionGameSolver", "position_partial_iso"]


def position_partial_iso(
    w: str, v: str, positions_w: tuple, positions_v: tuple, with_eq: bool = True
) -> bool:
    """Definition-3.1-style check for the FO[EQ] signature.

    Conditions on the paired positions: order type mirrored, letters
    mirrored, and (unless ``with_eq`` is off — the plain FO[<] game) the
    quaternary EQ pattern mirrored.
    """
    if len(positions_w) != len(positions_v):
        raise ValueError("tuples must have equal length")
    n = len(positions_w)
    for i in range(n):
        if w[positions_w[i] - 1] != v[positions_v[i] - 1]:
            return False
        for j in range(n):
            if (positions_w[i] < positions_w[j]) != (
                positions_v[i] < positions_v[j]
            ):
                return False
            if (positions_w[i] == positions_w[j]) != (
                positions_v[i] == positions_v[j]
            ):
                return False
    if not with_eq:
        return True
    for i, j, k, l in product(range(n), repeat=4):
        left_w = factor_at(w, positions_w[i], positions_w[j])
        right_w = factor_at(w, positions_w[k], positions_w[l])
        holds_w = left_w is not None and left_w == right_w
        left_v = factor_at(v, positions_v[i], positions_v[j])
        right_v = factor_at(v, positions_v[k], positions_v[l])
        holds_v = left_v is not None and left_v == right_v
        if holds_w != holds_v:
            return False
    return True


@dataclass
class NaivePositionGameSolver:
    """Exact k-round EF solver over the position structures of two words.

    ``with_eq = False`` plays the plain FO[<] game (signature {<, P_a}) —
    used to show that the EQ relation is what lets FO[EQ] define squares.
    """

    w: str
    v: str
    with_eq: bool = True
    _memo: dict = field(default_factory=dict, repr=False)
    _counters: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self._counters = {
            "positions_explored": 0,
            "table_hits": 0,
            "consistency_checks": 0,
        }

    def consistent(self, pairs: frozenset) -> bool:
        self._counters["consistency_checks"] += 1
        ordered = sorted(pairs)
        return position_partial_iso(
            self.w,
            self.v,
            tuple(p for p, _ in ordered),
            tuple(q for _, q in ordered),
            self.with_eq,
        )

    def duplicator_wins(self, rounds: int, pairs: frozenset = frozenset()) -> bool:
        if not self.consistent(pairs):
            return False
        return self._wins(rounds, pairs)

    def _wins(self, rounds: int, pairs: frozenset) -> bool:
        if rounds == 0:
            return True
        key = (rounds, pairs)
        cached = self._memo.get(key)
        if cached is not None:
            self._counters["table_hits"] += 1
            return cached
        self._counters["positions_explored"] += 1
        result = all(
            self._response(rounds, pairs, side, position) is not None
            for side, position in self._moves(pairs)
        )
        self._memo[key] = result
        return result

    def _moves(self, pairs: frozenset):
        taken_w = {p for p, _ in pairs}
        taken_v = {q for _, q in pairs}
        for position in range(1, len(self.w) + 1):
            if position not in taken_w:
                yield "A", position
        for position in range(1, len(self.v) + 1):
            if position not in taken_v:
                yield "B", position

    def _response(self, rounds: int, pairs: frozenset, side: str, position: int):
        limit = len(self.v) if side == "A" else len(self.w)
        offset = (
            len(self.v) - len(self.w) if side == "A" else len(self.w) - len(self.v)
        )
        mirror = position + offset
        candidates = sorted(
            range(1, limit + 1),
            key=lambda q: min(abs(q - position), abs(q - mirror)),
        )
        for response in candidates:
            pair = (position, response) if side == "A" else (response, position)
            extended = pairs | {pair}
            if self.consistent(extended) and self._wins(rounds - 1, extended):
                return response
        return None

    # -- introspection (mirrors GameSolver.solver_stats) -----------------------

    def memo_size(self) -> int:
        return len(self._memo)

    def solver_stats(self) -> dict[str, int]:
        """Same shape as the kernel-backed solver's ``solver_stats``."""
        out = dict(self._counters)
        out["memo_size"] = len(self._memo)
        out["universe_a"] = len(self.w)
        out["universe_b"] = len(self.v)
        return out
