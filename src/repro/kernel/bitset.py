"""Dense bitsets over interned id spaces (big-int masks).

The sweep layer (:mod:`repro.kernel.sweep`, :mod:`repro.fc.sweep`)
assigns every string a dense global id, so any *set* of strings —
a word's factor universe, a candidate pool, a per-slot assignment
column — is a set of small ints.  This module fixes the representation
of those sets as Python big-int bitmasks: bit ``g`` set ⟺ id ``g`` is
a member.  ∧/∨ chains, pool intersections and quantifier-scan
restrictions then become single C-level ``&``/``|`` operations instead
of frozenset algebra, and membership is one shift-and-test.

The API is deliberately tiny and value-based (masks are plain ints;
``&``, ``|``, ``^``, ``==`` are used directly by callers) so that a
numpy ``uint64``-block backend can slot in behind the same functions if
a workload outgrows big ints.  Everything here is pure and
deterministic: ``iter_ids`` enumerates in ascending id order, and
``from_ids`` is order-insensitive.
"""

from __future__ import annotations

from typing import Iterable, Iterator

__all__ = [
    "EMPTY",
    "contains",
    "count",
    "declare_universe",
    "from_ids",
    "iter_ids",
]

#: The empty bitset (no ids).  Masks are ordinary ints, so callers test
#: emptiness with plain truthiness.
EMPTY = 0


def from_ids(ids: Iterable[int]) -> int:
    """The mask with exactly the given ids set."""
    mask = 0
    for gid in ids:
        mask |= 1 << gid
    return mask


def declare_universe(mask: int, role: str) -> int:
    """Declare ``mask`` to be a *member universe* over table ``role``.

    A runtime identity — the mask is returned unchanged — but the one
    trusted mint in the id-domain flow analysis
    (:mod:`repro.analysis.domains`): the result carries
    ``bitset-universe:<role>``, the domain that makes witnessing ids
    out of a mask legal.  Candidate pools (``bitset-pool:<role>``) must
    be ``&``-ed with a universe mask before ``iter_ids`` — the PR-4
    sweep escape, where pool candidates left the word's factor
    universe, is exactly the pattern this gate rejects.  ``role`` must
    be a string literal at the call site so the analysis can read it.
    """
    del role  # documentation for the static analysis, not the runtime
    return mask


def contains(mask: int, gid: int) -> bool:
    """Membership test: is bit ``gid`` set?"""
    return (mask >> gid) & 1 == 1


def count(mask: int) -> int:
    """Number of ids in the mask (popcount)."""
    return mask.bit_count()


def iter_ids(mask: int) -> Iterator[int]:
    """Yield the set ids in ascending order.

    Isolating the lowest set bit (``mask & -mask``) keeps each step a
    C-level big-int operation; cost is O(popcount · words), which beats
    scanning the full id range for the sparse masks pools produce.
    """
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low
