"""repro.kernel — the interned-factor kernel under the solver stack.

The exact EF-game solver and the FC model checker both manipulate the
universe ``Facs(w) ∪ {⊥}`` of a word structure.  Doing that with Python
strings and frozensets of string pairs pays hashing and allocation costs
exponentially often in the round count / quantifier depth.  This package
interns each universe once into dense integer ids with precomputed
tables (sorted order, lengths, a full concatenation table, constant
ids), so the hot paths above it — ``repro.ef.solver`` and
``repro.fc.compiled`` — run on machine integers and tuple indexing.

Layering: ``kernel`` sits between ``words`` and ``{fc, fcreg}`` in the
import DAG (see ``repro.analysis.layering``).  It therefore cannot and
does not import the FC syntax or structure classes; ⊥ is represented by
the reserved id 0 (:data:`BOTTOM_ID`), and the layers above translate
between elements and ids at their boundary.
"""

from __future__ import annotations

from repro.kernel import stats
from repro.kernel.automorphisms import automorphism_group
from repro.kernel.efcore import KernelSolver
from repro.kernel.interning import (
    BOTTOM_ID,
    InternTable,
    intern_restricted_table,
    intern_table,
)

__all__ = [
    "BOTTOM_ID",
    "InternTable",
    "KernelSolver",
    "automorphism_group",
    "intern_restricted_table",
    "intern_table",
    "stats",
]
