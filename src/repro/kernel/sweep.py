"""Shared interning for language sweeps: one id space per word *family*.

Membership sweeps (``L(φ) ∩ Σ^{≤n}``) evaluate the same sentence on every
word of an enumerated family.  The per-word kernel
(:mod:`repro.kernel.interning`) rebuilds a fresh universe per word —
~9 850 one-shot tables for the E05 grid — and, worse, every cross-word
cache is keyed on strings.  This module fixes both:

* a :class:`SweepFamily` interns **strings, not factors**: every string
  that any word of the family (or any candidate computation) touches gets
  one dense id, so equality across words is integer equality and
  family-global memo keys are tuples of ints;
* per-word views (:class:`SweepTable`) are built **incrementally along
  the prefix tree** of the enumeration: ``Facs(w·a) = Facs(w) ∪
  {suffixes of w·a}``, so extending a parent table costs O(|w|) intern
  probes plus one sorted merge instead of the O(|w|²) from-scratch
  interning — and the factor sets share their parent's ids.

The family's ``cat`` is *global* concatenation (total — every string has
an id, interned on demand), unlike ``InternTable.cat`` which is partial
on one universe; "is the result a factor of this word" is a separate
per-word set probe.  ``tests/kernel/test_sweep.py`` checks that a
prefix-extended universe equals from-scratch interning of
``factors(word)`` for every word of enumerated grids.

Effort counters (``sweep_words_interned``, ``sweep_tables_extended``,
``sweep_tables_rebuilt``) flow through :mod:`repro.kernel.stats` into the
engine report, same as the EF solver's.
"""

from __future__ import annotations

from repro.kernel import bitset, stats

__all__ = ["SweepFamily", "SweepSubtree", "SweepTable"]


class SweepTable:
    """One word's factor view inside a :class:`SweepFamily`.

    ``universe`` lists the word's factor ids sorted by ``(len, text)`` —
    the same deterministic enumeration order as
    :class:`~repro.kernel.interning.InternTable` — ``members`` is the
    same set for O(1) membership probes, and ``mask`` is the same set as
    a dense bitset over the family's id space
    (:mod:`repro.kernel.bitset`), so candidate pools restrict to the
    word's factor universe with one big-int ``&``.
    """

    __slots__ = ("word", "gid", "universe", "members", "mask")

    # repro-lint: domain[gid=intern:sweep, universe=iter[intern:sweep], members=iter[intern:sweep], mask=bitset-universe:sweep] a table's mask is the word's complete member set by construction — the only legal witness source
    def __init__(
        self, word: str, gid: int, universe: tuple, members: frozenset, mask: int
    ) -> None:
        self.word = word
        self.gid = gid  # repro-lint: domain[intern:sweep] the word's own global id
        self.universe = universe  # repro-lint: domain[iter[intern:sweep]] Facs(word) in (len, text) order
        self.members = members  # repro-lint: domain[iter[intern:sweep]] Facs(word) as a set
        self.mask = mask  # repro-lint: domain[bitset-universe:sweep] Facs(word) as a declared member universe

    def __repr__(self) -> str:
        return f"SweepTable({self.word!r}, {len(self.universe)} factors)"


class SweepFamily:
    """Global intern pool + per-word tables for one alphabet's sweep.

    One instance per sweep call; every sentence evaluated against the
    family shares the id space, the concatenation cache and the tables.
    """

    __slots__ = (
        "alphabet",
        "id_of",
        "strings",
        "lengths",
        "epsilon_id",
        "_cat",
        "_tables",
    )

    def __init__(self, alphabet: tuple[str, ...]) -> None:
        self.alphabet = alphabet
        #: string → global id (total over all strings ever seen).
        self.id_of: dict[str, int] = {}  # repro-lint: domain[map[plain, intern:sweep]]
        #: global id → string.
        self.strings: list[str] = []  # repro-lint: domain[map[intern:sweep, plain]]
        #: global id → length.
        self.lengths: list[int] = []  # repro-lint: domain[map[intern:sweep, plain]]
        #: global concatenation cache: (id, id) → id.
        self._cat: dict[tuple[int, int], int] = {}  # repro-lint: domain[map[iter[intern:sweep], intern:sweep]]
        #: word → SweepTable, one entry per enumerated word.
        self._tables: dict[str, SweepTable] = {}
        self.epsilon_id = self.intern("")  # repro-lint: domain[intern:sweep]

    # repro-lint: domain[returns=intern:sweep] the family's id mint — every sweep gid originates here
    def intern(self, text: str) -> int:
        """The global id of ``text`` (assigned on first sight)."""
        gid = self.id_of.get(text)
        if gid is None:
            gid = len(self.strings)
            self.id_of[text] = gid
            self.strings.append(text)
            self.lengths.append(len(text))
        return gid

    # repro-lint: domain[returns=intern:sweep, left=intern:sweep, right=intern:sweep] global concatenation stays inside the family's id space
    def cat(self, left: int, right: int) -> int:
        """Id of ``strings[left] + strings[right]`` (total, cached)."""
        key = (left, right)
        gid = self._cat.get(key)
        if gid is None:
            gid = self.intern(self.strings[left] + self.strings[right])
            self._cat[key] = gid
        return gid

    # repro-lint: domain[gid=intern:sweep] ordering is defined via strings/lengths, never the raw numbering
    def sort_key(self, gid: int):
        """The deterministic ``(len, text)`` enumeration key for an id."""
        return (self.lengths[gid], self.strings[gid])

    def table(self, word: str) -> SweepTable:
        """The word's factor view, built by extending its longest cached
        prefix (ultimately the ε root) one letter at a time."""
        table = self._tables.get(word)
        if table is not None:
            return table
        # Find the longest prefix that already has a table, then extend
        # letter by letter (iterative — words can exceed recursion depth).
        start = len(word)
        parent = None
        while start > 0:
            parent = self._tables.get(word[:start])
            if parent is not None:
                break
            start -= 1
        if parent is None:
            parent = self._root()
            start = 0
        for end in range(start + 1, len(word) + 1):
            parent = self._extend(parent, word[:end])
        return parent

    def hydrate(self, word: str, factor_texts: list) -> SweepTable:
        """Install a word's table directly from its stored factor list.

        ``factor_texts`` must be ``Facs(word)`` in ``(len, text)`` order —
        exactly what :meth:`export` produced when the artifact was
        published.  Gids are assigned by this family's intern pool, so
        they may differ from an organically grown family's numbering;
        that is sound because every consumer compares ids only within
        one family and orders them via ``sort_key`` (strings/lengths),
        never via the raw numbering.
        """
        table = self._tables.get(word)
        if table is not None:
            return table
        intern = self.intern
        # repro-lint: allow[effects.memo-key-completeness] factor_texts is the store-validated Facs(word) list, itself a pure function of the key word
        universe = tuple(intern(text) for text in factor_texts)
        table = SweepTable(
            word,
            intern(word),
            universe,
            frozenset(universe),
            bitset.declare_universe(bitset.from_ids(universe), "sweep"),
        )
        self._tables[word] = table
        stats.record("sweep_tables_hydrated")
        stats.record("sweep_words_interned")
        return table

    def export(self, word: str) -> list:
        """The word's factor strings in ``(len, text)`` order (plain data
        for artifact persistence; inverse of :meth:`hydrate`)."""
        strings = self.strings
        return [strings[gid] for gid in self.table(word).universe]

    def subtree(self, prefix: str) -> "SweepSubtree":
        """A view of this family restricted to the subtree at ``prefix``.

        The view shares the global intern pool, the concatenation cache
        and every table already built; it only changes *attribution*:
        the prefix-path tables below the subtree root (which another
        shard owns) are built under :func:`repro.kernel.stats.shard_overhead`,
        so a shard partition's real sweep counters stay exactly
        conserved against the monolithic run.
        """
        return SweepSubtree(self, prefix)

    def _root(self) -> SweepTable:
        table = self._tables.get("")
        if table is None:
            eps = self.epsilon_id
            table = SweepTable(
                "",
                eps,
                (eps,),
                frozenset((eps,)),
                bitset.declare_universe(1 << eps, "sweep"),
            )
            self._tables[""] = table
            stats.record("sweep_tables_rebuilt")
            stats.record("sweep_words_interned")
        return table

    def _extend(self, parent: SweepTable, word: str) -> SweepTable:
        table = self._tables.get(word)
        if table is not None:
            return table
        # Facs(w·a) = Facs(w) ∪ {suffixes of w·a}.  The new suffixes have
        # pairwise distinct lengths, so sorting them by length alone
        # already yields (len, text) order for the merge.
        intern = self.intern
        # repro-lint: allow[effects.memo-key-completeness] parent is the interned table of word[:-1], itself a pure function of the key word
        members = parent.members
        mask = parent.mask
        fresh = []
        for begin in range(len(word) + 1):
            gid = intern(word[begin:])
            if gid not in members:
                fresh.append(gid)
                mask |= 1 << gid
        fresh.sort(key=lambda g: self.lengths[g])
        universe = self._merge(parent.universe, fresh)
        table = SweepTable(
            word,
            intern(word),
            universe,
            members | frozenset(fresh),
            # Facs(w·a) is complete by construction: parent mask plus
            # every suffix of w·a.
            bitset.declare_universe(mask, "sweep"),
        )
        self._tables[word] = table
        stats.record("sweep_tables_extended")
        stats.record("sweep_words_interned")
        return table

    # repro-lint: domain[returns=iter[intern:sweep], old=iter[intern:sweep]] both inputs carry this family's gids
    def _merge(self, old: tuple, fresh: list) -> tuple:
        """Merge two (len, text)-sorted id sequences into one tuple."""
        if not fresh:
            return old
        key = self.sort_key
        merged = []
        i = j = 0
        while i < len(old) and j < len(fresh):
            if key(old[i]) <= key(fresh[j]):
                merged.append(old[i])
                i += 1
            else:
                merged.append(fresh[j])
                j += 1
        merged.extend(old[i:])
        merged.extend(fresh[j:])
        return tuple(merged)


class SweepSubtree:
    """A :class:`SweepFamily` view over one prefix-tree subtree.

    Intra-task shards walk disjoint subtrees of the same enumeration
    prefix tree (subtree = shard, ordered concatenation = merge).  Each
    shard still needs the factor tables of the subtree root's strict
    ancestors — ``table(prefix)`` extends from ε — but those words
    belong to another shard, so :meth:`prepare` builds them inside a
    :func:`repro.kernel.stats.shard_overhead` scope: the duplicated stem
    work lands in ``shard_overhead_ops`` and the per-word counters
    (``sweep_words_interned``, ``sweep_tables_extended``, …) count every
    word of the grid exactly once across a full shard partition.

    Everything else is shared with the backing family: the global
    intern table, the concatenation cache, and (through the compiled
    :class:`repro.fc.sweep.SweepProgram`) the span/chain/filter memos.
    """

    __slots__ = ("family", "prefix", "_prepared")

    def __init__(self, family: SweepFamily, prefix: str) -> None:
        self.family = family
        self.prefix = prefix
        self._prepared = not prefix

    def prepare(self) -> None:
        """Build the stem path (ε … prefix[:-1]) as shard overhead."""
        if self._prepared:
            return
        self._prepared = True
        with stats.shard_overhead():
            self.family.table(self.prefix[:-1])

    def table(self, word: str) -> SweepTable:
        """The word's factor view; ``word`` must lie in the subtree."""
        if not word.startswith(self.prefix):
            raise ValueError(
                f"{word!r} is outside the {self.prefix!r} subtree"
            )
        self.prepare()
        return self.family.table(word)

    def words(self, max_length: int):
        """The subtree's words up to ``max_length`` in ``(len, text)``
        order — prefix first, so each table extends its parent with one
        incremental step (same enumeration contract as ``words_up_to``).
        """
        if len(self.prefix) > max_length:
            return
        alphabet = self.family.alphabet
        level = [self.prefix]
        yield self.prefix
        for _ in range(max_length - len(self.prefix)):
            level = [word + letter for word in level for letter in alphabet]
            yield from level
