"""Integer-id EF-game search: the kernel behind ``repro.ef.solver``.

:class:`KernelSolver` is a drop-in replacement for the naive solver's
search, operating purely on :class:`~repro.kernel.interning.InternTable`
ids.  It reproduces the naive solver's observable behaviour exactly —
same spoiler-move enumeration order, same duplicator-response
preference order, same results — while replacing its three hot costs:

* **Consistency** is incremental: a position is grown one pair at a
  time, and only the conditions involving the newly added pair are
  checked (equality mirroring against every earlier pair, plus the
  ≈3m² concatenation triples that mention the new pair).  Every triple
  over the final tuple is validated exactly when its last element is
  added, so the incremental check accepts the same positions as the
  naive ``sorted(...) + extend_with_constants + find_violation`` rebuild
  — condition 1 (constants mirrored) is subsumed by equality mirroring
  because the constant pairs are always in the base item list.
* **Positions** are sorted tuples of ``(a_id, b_id)`` int pairs, and the
  transposition table is keyed on a *canonical form* that quotients out
  automorphic pairs: if σ_A, σ_B are automorphisms of the structures,
  the image of a position under ``(σ_A, σ_B)`` is winning for exactly
  the same player (automorphisms preserve constants, equality and R∘,
  so they commute with both the win condition and move translation), so
  the minimum over the group orbit indexes the whole orbit.
* **Ordering** uses id comparisons: ids are assigned in the naive
  ``⊥-first, then (len, text)`` order, so ascending id order *is* the
  naive enumeration order, and the response-preference sort key becomes
  integer arithmetic over precomputed mirror maps and length arrays.

Search-effort counters are kept per instance (see :meth:`stats`) and
mirrored into the process-global :mod:`repro.kernel.stats`, which the
engine samples into ``BENCH_engine.json``.
"""

from __future__ import annotations

from repro.kernel import stats as _global_stats
from repro.kernel.automorphisms import automorphism_group
from repro.kernel.interning import InternTable

__all__ = ["KernelSolver"]

#: Skip symmetry reduction when |G_A|·|G_B| exceeds this — mapping every
#: position through thousands of permutation pairs would cost more than
#: the duplicate positions it merges.  Falling back to the identity is
#: sound (quotient by the trivial subgroup).
_MAX_SYM_PRODUCT = 512

#: Universe size above which the solver switches from dense to sparse
#: internals: consistency probes use single ``cat`` entries instead of
#: materialised rows, and response orders are generated lazily instead
#: of cached as tuples.  Deep searches only ever happen on small
#: universes (the game tree is exponential in k), so the dense fast
#: path keeps them; above the limit queries are shallow (0–1 rounds on
#: very long words, e.g. the Fooling-Lemma checks) and O(n) per-element
#: row/cache costs would dominate the entire query.
_DENSE_LIMIT = 1024

Position = "tuple[tuple[int, int], ...]"  # sorted, deduplicated id pairs


class KernelSolver:
    """Memoised EF-game search over a pair of interned structures."""

    def __init__(self, table_a: InternTable, table_b: InternTable) -> None:
        self.table_a = table_a
        self.table_b = table_b
        self._n_a = table_a.n_factors
        self._n_b = table_b.n_factors
        self._cat_a = table_a.cat
        self._cat_b = table_b.cat
        self._const_pairs = tuple(zip(table_a.const_ids, table_b.const_ids))
        self._mirror_ab = self._mirror(table_a, table_b)
        self._mirror_ba = self._mirror(table_b, table_a)
        self._sparse = max(self._n_a, self._n_b) > _DENSE_LIMIT
        self._memo: dict = {}
        self._response_order: dict = {}
        self._runs_a: "list | None" = None
        self._runs_b: "list | None" = None
        self.counters = {
            "positions_explored": 0,
            "table_hits": 0,
            "symmetry_cuts": 0,
            "consistency_checks": 0,
        }
        self._sym = self._symmetries()
        self._base_ok = self._check_base()

    @staticmethod
    def _mirror(source: InternTable, target: InternTable) -> tuple[int, ...]:
        """Per-id map to the same-string id in ``target`` (``-1`` if absent).

        Entry 0 maps ⊥ to ⊥: the naive response key compares the BOTTOM
        singleton equal to itself across structures.
        """
        return (
            0,
            *(
                target.id_of.get(element, -1)
                for element in source.elements[1:]
            ),
        )

    def _symmetries(self) -> tuple:
        """Non-identity ``(σ_A, σ_B)`` combos used for canonicalization."""
        group_a = automorphism_group(self.table_a)
        group_b = automorphism_group(self.table_b)
        if len(group_a) * len(group_b) > _MAX_SYM_PRODUCT:
            _global_stats.record("symmetry_product_skips")
            return ()
        identity_a = tuple(range(self._n_a + 1))
        identity_b = tuple(range(self._n_b + 1))
        return tuple(
            (sigma_a, sigma_b)
            for sigma_a in group_a
            for sigma_b in group_b
            if not (sigma_a == identity_a and sigma_b == identity_b)
        )

    def _bump(self, name: str, amount: int = 1) -> None:
        # Advisory per-instance effort counters: engine workers run one
        # thread, so bench gates stay exact; a daemon-side lost increment
        # skews a diagnostic, never a verdict.
        # repro-lint: allow[concurrency.shared-state-race] advisory counters
        self.counters[name] += amount
        _global_stats.record(name, amount)

    # -- consistency ---------------------------------------------------------

    def _check_base(self) -> bool:
        """Are the constant vectors alone a partial isomorphism?"""
        base: tuple = ()
        for pair in self._const_pairs:
            if not self._check_new(base, *pair):
                return False
            base = (*base, pair)
        return True

    def _check_new(self, items: tuple, a: int, b: int) -> bool:
        """Do Definition 3.1's conditions still hold after adding ``(a, b)``?

        ``items`` (constant pairs + played pairs) is assumed consistent;
        only conditions involving the new pair are checked.
        """
        self._bump("consistency_checks")
        for other_a, other_b in items:
            if (a == other_a) != (b == other_b):
                return False
        extended = (*items, (a, b))
        if self._sparse:
            point_a = self._cat_a.point
            point_b = self._cat_b.point
            for a1, b1 in extended:
                for a2, b2 in extended:
                    # new = a1·a2  /  a1 = new·a2  /  a1 = a2·new
                    if (point_a(a1, a2) == a) != (point_b(b1, b2) == b):
                        return False
                    if (point_a(a, a2) == a1) != (point_b(b, b2) == b1):
                        return False
                    if (point_a(a2, a) == a1) != (point_b(b2, b) == b1):
                        return False
            return True
        cat_a = self._cat_a
        cat_b = self._cat_b
        row_new_a = cat_a[a]
        row_new_b = cat_b[b]
        for a1, b1 in extended:
            row_a1 = cat_a[a1]
            row_b1 = cat_b[b1]
            for a2, b2 in extended:
                # new = a1·a2  /  a1 = new·a2  /  a1 = a2·new
                if (row_a1[a2] == a) != (row_b1[b2] == b):
                    return False
                if (row_new_a[a2] == a1) != (row_new_b[b2] == b1):
                    return False
                if (cat_a[a2][a] == a1) != (cat_b[b2][b] == b1):
                    return False
        return True

    def _try_extend(self, position: tuple, a: int, b: int) -> "Position | None":
        """Position after playing ``(a, b)``, or ``None`` if inconsistent.

        A repeated pair returns the position unchanged (set semantics).
        """
        pair = (a, b)
        if pair in position:
            return position
        if not self._check_new(self._const_pairs + position, a, b):
            return None
        return tuple(sorted((*position, pair)))

    def _validated(self, pairs) -> "Position | None":
        """Canonical consistent position for arbitrary start pairs.

        Returns ``None`` when the constants base or any added pair breaks
        consistency — equivalent to the naive full-rebuild check, since a
        violation in the full set involves some last-added pair.
        """
        if not self._base_ok:
            return None
        position: tuple = ()
        for pair in sorted(set(pairs)):
            extended = self._try_extend(position, *pair)
            if extended is None:
                return None
            position = extended
        return position

    def position_consistent(self, pairs) -> bool:
        """Is the pair set (with constants) a partial isomorphism?"""
        return self._validated(pairs) is not None

    # -- canonicalization ----------------------------------------------------

    def _canonical(self, position: tuple) -> tuple:
        if not self._sym or not position:
            return position
        best = position
        for sigma_a, sigma_b in self._sym:
            mapped = tuple(
                sorted((sigma_a[a], sigma_b[b]) for a, b in position)
            )
            if mapped < best:
                best = mapped
        if best is not position:
            self._bump("symmetry_cuts")
        return best

    # -- decision ------------------------------------------------------------

    def duplicator_wins(self, rounds: int, pairs=()) -> bool:
        position = self._validated(pairs)
        if position is None:
            return False
        return self._wins(rounds, position)

    def _wins(self, rounds: int, position: tuple) -> bool:
        if rounds == 0:
            return True
        key = (rounds, self._canonical(position))
        cached = self._memo.get(key)
        if cached is not None:
            self._bump("table_hits")
            return cached
        self._bump("positions_explored")
        result = True
        for side, element in self._spoiler_moves(position):
            if self._response(rounds, position, side, element) is None:
                result = False
                break
        # Grow-only transposition table: the verdict for a key is a pure
        # function of the two universes, so concurrent writers store the
        # same value and dict item assignment is atomic under the GIL.
        # repro-lint: allow[concurrency.shared-state-race] idempotent memo
        self._memo[key] = result
        return result

    def _spoiler_moves(self, position: tuple):
        taken_a = {pair[0] for pair in position}
        taken_b = {pair[1] for pair in position}
        for element in range(self._n_a + 1):
            if element not in taken_a:
                yield ("A", element)
        for element in range(self._n_b + 1):
            if element not in taken_b:
                yield ("B", element)

    @staticmethod
    def _length_runs(table: InternTable) -> list:
        """Maximal constant-length id runs ``(length, start, end)``.

        Ids 1..n are sorted by ``(len, text)``, so equal lengths form
        contiguous ranges; the runs let response ordering work per length
        class instead of per element.
        """
        lengths = table.lengths
        n = table.n_factors
        runs = []
        i = 1
        while i <= n:
            j = i
            while j <= n and lengths[j] == lengths[i]:
                j += 1
            runs.append((lengths[i], i, j))
            i = j
        return runs

    def _responses(self, side: str, element: int):
        """Candidate response ids, best-first.

        Replicates the naive preference order exactly: the same-string
        mirror first, then same-⊥-status, then by length distance, ties
        broken by the ⊥-first ``(len, text)`` enumeration order — which
        is ascending id order.  Because ids are length-sorted, the
        length-distance order is a two-run merge (lengths below the
        move's, descending, against lengths above it, ascending; the
        shorter class wins distance ties by its smaller ids), built in
        O(n) instead of an O(n log n) keyed sort.  Small universes cache
        the order per move; above :data:`_DENSE_LIMIT` it is generated
        lazily — the winning response is usually near the front, and
        caching 2n orders of n ids apiece would cost O(n²) memory.
        """
        key = (side, element)
        cached = self._response_order.get(key)
        if cached is not None:
            return cached
        if side == "A":
            mirror = self._mirror_ab[element]
            own_length = self.table_a.lengths[element]
            if self._runs_b is None:
                # Idempotent lazy init: every thread computes the same runs.
                # repro-lint: allow[concurrency.shared-state-race] lazy init
                self._runs_b = self._length_runs(self.table_b)
            runs = self._runs_b
            count = self._n_b + 1
        else:
            mirror = self._mirror_ba[element]
            own_length = self.table_b.lengths[element]
            if self._runs_a is None:
                # Idempotent lazy init: every thread computes the same runs.
                # repro-lint: allow[concurrency.shared-state-race] lazy init
                self._runs_a = self._length_runs(self.table_a)
            runs = self._runs_a
            count = self._n_a + 1
        ordered = self._merged_order(
            mirror, own_length, runs, count, element == 0
        )
        if count - 1 > _DENSE_LIMIT:
            return ordered
        cached = tuple(ordered)
        # Grow-only order memo: deterministic per (side, element) key.
        # repro-lint: allow[concurrency.shared-state-race] idempotent memo
        self._response_order[key] = cached
        return cached

    @staticmethod
    def _merged_order(
        mirror: int, own_length: int, runs: list, count: int, is_bottom: bool
    ):
        """Yield response ids in the naive preference order (see above)."""
        if is_bottom:
            # The ⊥ move: its mirror is ⊥ itself, and every factor sorts
            # by plain length = ascending id order.
            yield 0
            yield from range(1, count)
            return
        if mirror > 0:
            yield mirror
        above = 0
        while above < len(runs) and runs[above][0] < own_length:
            above += 1
        below = above - 1
        total = len(runs)
        while below >= 0 or above < total:
            # Strictly closer wins; distance ties go to the shorter class
            # (its smaller ids precede under the stable naive sort).
            if above < total and (
                below < 0
                or runs[above][0] - own_length < own_length - runs[below][0]
            ):
                _, start, end = runs[above]
                above += 1
            else:
                _, start, end = runs[below]
                below -= 1
            if start <= mirror < end:
                yield from range(start, mirror)
                yield from range(mirror + 1, end)
            else:
                yield from range(start, end)
        yield 0  # ⊥ responds last to a factor move

    def _response(
        self, rounds: int, position: tuple, side: str, element: int
    ) -> "int | None":
        """Winning duplicator response id to the given move (``None`` = lost)."""
        for response in self._responses(side, element):
            if side == "A":
                pair_a, pair_b = element, response
            else:
                pair_a, pair_b = response, element
            extended = self._try_extend(position, pair_a, pair_b)
            if extended is not None and self._wins(rounds - 1, extended):
                return response
        return None

    # -- strategy extraction -------------------------------------------------

    def winning_response(
        self, rounds: int, pairs, side: str, element: int
    ) -> "int | None":
        """Duplicator's winning response id, or ``None`` when none exists.

        An inconsistent ``pairs`` set yields ``None`` (every extension of
        an inconsistent position is inconsistent — same observable result
        as the naive solver, which filters candidates by full-set
        consistency).
        """
        position = self._validated(pairs)
        if position is None:
            return None
        return self._response(rounds, position, side, element)

    def spoiler_winning_move(
        self, rounds: int, pairs=(), skip_bottom: bool = False
    ) -> "tuple[str, int] | None":
        """A ``(side, id)`` move defeating every response, or ``None``."""
        position = self._validated(pairs)
        if position is None:
            return None  # already won by Spoiler; no further move needed
        if rounds == 0:
            return None
        for side, element in self._spoiler_moves(position):
            if skip_bottom and element == 0:
                continue
            if self._response(rounds, position, side, element) is None:
                return (side, element)
        return None

    def memo_size(self) -> int:
        """Number of memoised canonical positions."""
        return len(self._memo)

    # -- transposition-table persistence -------------------------------------

    def export_memo(self) -> dict:
        """A copy of the transposition table, for artifact persistence.

        Keys are ``(rounds, canonical position)`` over interned ids,
        which are stable across processes (ids follow the deterministic
        ⊥-first ``(len, text)`` order), so the export can be replayed
        into any solver over the same two universes.
        """
        return dict(self._memo)

    def preload_memo(self, entries: dict) -> None:
        """Seed the transposition table from a previous export.

        Entries must come from a solver over the same (table_a, table_b)
        universes — the store keys on universe fingerprints to guarantee
        it.  Existing entries win (they were computed this process).
        """
        fresh = 0
        memo = self._memo
        for key, value in entries.items():
            if key not in memo:
                # Hydrated entries are content-addressed and bit-identical
                # to what the solver would compute for the same key.
                # repro-lint: allow[concurrency.shared-state-race] idempotent memo
                memo[key] = value
                fresh += 1
        if fresh:
            _global_stats.record("ef_memo_entries_hydrated", fresh)

    def stats(self) -> dict[str, int]:
        """This instance's search-effort counters (a copy)."""
        return dict(self.counters)
