"""Automorphism groups of interned structures, for symmetry reduction.

An automorphism of the τ_Σ structure behind an :class:`InternTable` is a
permutation of ids that fixes ⊥ and every constant and preserves the
concatenation relation in both directions.  The EF solver quotients its
transposition table by these: if σ_A, σ_B are automorphisms of the two
structures, a position ``p`` and its image ``{(σ_A(a), σ_B(b))}`` are
winning for exactly the same player, so one canonical representative per
orbit suffices.

Full word structures are rigid — ε and the letter constants pin every
factor by induction on length — so for them this returns ``(identity,)``
and the solver skips canonicalization entirely.  Nontrivial groups arise
for *restricted* structures (the Pseudo-Congruence lookup games of E08
restrict unary universes to sparse length sets, where e.g. two long
``a``-blocks neither of which is a constant or a concatenation result
can be swapped).

Enumeration is exact backtracking with signature-based pruning, guarded
by caps (universe size, group size, search nodes).  When any cap trips
we fall back to ``(identity,)`` — always sound, since quotienting by a
*subgroup* of the true automorphism group still merges only genuinely
equivalent positions.
"""

from __future__ import annotations

from functools import lru_cache

from repro import cachestats
from repro.kernel import stats
from repro.kernel.interning import InternTable
from repro.store import artifacts, runtime as store_runtime

__all__ = ["automorphism_group"]

#: Universes larger than this skip enumeration outright.
_MAX_UNIVERSE = 80
#: Stop (and fall back to identity) once this many automorphisms exist.
_MAX_GROUP = 64
#: Backtracking-node budget before falling back to identity.
_MAX_NODES = 50_000
#: Universes smaller than this never touch the artifact store: the
#: backtracking search on a handful of ids is cheaper than a probe.
_STORE_MIN_UNIVERSE = 16


def _signatures(table: InternTable) -> list[tuple]:
    """Invariant fingerprint per id; automorphisms preserve signatures.

    Components: which constants the id realises, its factor length's
    multiplicity class is NOT used (automorphisms need not preserve
    length), and in/out concatenation profiles of the ``cat`` table.
    """
    n = table.n_factors
    cat = table.cat
    const_positions: dict[int, tuple[int, ...]] = {}
    for position, const_id in enumerate(table.const_ids):
        const_positions.setdefault(const_id, ())
        const_positions[const_id] = (*const_positions[const_id], position)
    signatures: list[tuple] = [()] * (n + 1)
    for i in range(n + 1):
        row = cat[i]
        out_defined = sum(1 for value in row if value != -1)
        in_defined = sum(1 for j in range(n + 1) if cat[j][i] != -1)
        as_result = sum(1 for j in range(n + 1) for value in cat[j] if value == i)
        square = row[i]
        signatures[i] = (
            const_positions.get(i, ()),
            out_defined,
            in_defined,
            as_result,
            square != -1,
        )
    return signatures


def _enumerate(table: InternTable) -> tuple[tuple[int, ...], ...] | None:
    """All automorphisms, or ``None`` if a cap tripped."""
    n = table.n_factors
    cat = table.cat
    signatures = _signatures(table)

    fixed = {0} | {const_id for const_id in table.const_ids}
    candidates: list[tuple[int, ...]] = [(0,)] * (n + 1)
    for i in range(1, n + 1):
        if i in fixed:
            candidates[i] = (i,)
        else:
            candidates[i] = tuple(
                x
                for x in range(1, n + 1)
                if x not in fixed and signatures[x] == signatures[i]
            )
    # Assign the most constrained ids first: smaller candidate sets fail
    # fast, and constants (singletons) get pinned immediately.
    order = sorted(range(1, n + 1), key=lambda i: (len(candidates[i]), i))

    found: list[tuple[int, ...]] = []
    image = [-1] * (n + 1)
    image[0] = 0
    used = [False] * (n + 1)
    nodes = 0

    def consistent(i: int, x: int) -> bool:
        """Definedness pattern and known images must match after σ(i)=x."""
        for j in range(n + 1):
            y = image[j]
            if y == -1:
                continue
            for left, right, s_left, s_right in (
                (i, j, x, y),
                (j, i, y, x),
            ):
                value = cat[left][right]
                mapped = cat[s_left][s_right]
                if (value == -1) != (mapped == -1):
                    return False
                if value != -1 and image[value] != -1 and image[value] != mapped:
                    return False
        return True

    def verify(perm: tuple[int, ...]) -> bool:
        for i in range(n + 1):
            row = cat[i]
            mapped_row = cat[perm[i]]
            for j in range(n + 1):
                value = row[j]
                expected = -1 if value == -1 else perm[value]
                if mapped_row[perm[j]] != expected:
                    return False
        return True

    def backtrack(depth: int) -> bool:
        """Depth-first over ``order``; returns False when a cap trips."""
        nonlocal nodes
        if depth == len(order):
            perm = tuple(image)
            if verify(perm):
                found.append(perm)
                if len(found) > _MAX_GROUP:
                    return False
            return True
        i = order[depth]
        for x in candidates[i]:
            if used[x]:
                continue
            nodes += 1
            if nodes > _MAX_NODES:
                return False
            if not consistent(i, x):
                continue
            image[i] = x
            used[x] = True
            ok = backtrack(depth + 1)
            image[i] = -1
            used[x] = False
            if not ok:
                return False
        return True

    if not backtrack(0):
        return None
    # The identity always verifies, so ``found`` is never empty; sorting
    # puts it first (it is lexicographically minimal) and makes the
    # group order deterministic.
    found.sort()
    return tuple(found)


@lru_cache(maxsize=256)
def automorphism_group(table: InternTable) -> tuple[tuple[int, ...], ...]:
    """Automorphisms of ``table`` as id-permutation tuples.

    Always contains the identity.  Falls back to ``(identity,)`` when the
    universe exceeds :data:`_MAX_UNIVERSE` or enumeration trips a cap —
    a sound under-approximation (see module docstring).
    """
    n = table.n_factors
    identity = tuple(range(n + 1))
    if n > _MAX_UNIVERSE:
        stats.record("automorphism_cap_hits")
        return (identity,)
    args = None
    if store_runtime.active() is not None and n >= _STORE_MIN_UNIVERSE:
        args = {
            "word": table.word,
            "alphabet": "".join(table.alphabet),
            "universe": artifacts.fingerprint_strings(table.elements[1:]),
        }
        payload = store_runtime.load(
            artifacts.AUTOMORPHISM_KIND, artifacts.AUTOMORPHISM_VERSION, args
        )
        if payload is not None:
            stats.record("automorphism_groups_hydrated")
            return artifacts.decode_permutations(payload)
    group = _enumerate(table)
    if group is None:
        # The identity fallback is never persisted: it reflects this
        # build's cap settings, not a property of the structure.
        stats.record("automorphism_cap_hits")
        return (identity,)
    if args is not None:
        store_runtime.publish(
            artifacts.AUTOMORPHISM_KIND,
            artifacts.AUTOMORPHISM_VERSION,
            args,
            artifacts.encode_permutations(group),
        )
    return group


cachestats.register("kernel.automorphism_group", automorphism_group)
