"""Interned universes: dense integer ids for ``Facs(w) ∪ {⊥}``.

An :class:`InternTable` freezes one structure's universe into arrays
indexed by id:

* id 0 is always ⊥ (:data:`BOTTOM_ID`); ids ``1..n`` are the factors in
  the universe, sorted by ``(len, text)`` — the same order the naive
  solver and evaluator enumerate elements in, so id order *is*
  enumeration order and the kernel reproduces their deterministic
  tie-breaking exactly.
* ``cat[i][j]`` is the id of ``elements[i] + elements[j]`` if that
  concatenation is again in the universe, else ``-1``.  Row and column 0
  are all ``-1``: concatenation involving ⊥ is undefined (the relation
  ``R∘`` never holds on ⊥), and no concatenation of factors yields ⊥.
  Rows are materialised lazily on first access: a full table is
  Θ(|Facs|²) and |Facs| grows quadratically in word length, so eager
  construction would make *any* query on a long word — even a 0-round
  game that only inspects constants — pay an O(len⁴) setup cost.  Deep
  game searches touch most rows and amortise the laziness to nothing;
  shallow queries on long words (the Fooling-Lemma experiments) touch a
  handful.
* ``const_ids[t]`` is the id of the ``t``-th constant in the structure's
  constant vector (each alphabet letter in sorted order, then ε).  A
  constant absent from the universe — possible only for restricted
  structures — is interpreted as ⊥, mirroring
  ``RestrictedStructure.constant``.

Tables are built once per ``(word, alphabet[, allowed])`` and shared via
``repro.cachestats``-registered lru caches, so every solver/evaluator
instance and every engine task in a worker process reuses the same
table object.  The dataclass uses identity hashing (``eq=False``) so
downstream per-table caches key on that shared identity, not on a deep
comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro import cachestats
from repro.kernel import stats
from repro.store import artifacts, runtime as store_runtime
from repro.words.factors import factors

__all__ = ["BOTTOM_ID", "InternTable", "intern_restricted_table", "intern_table"]

#: Reserved id of the undefined element ⊥ in every table.
BOTTOM_ID = 0

#: Words shorter than this never touch the artifact store: computing
#: ``factors(word)`` outright is cheaper than a backend probe.
_STORE_MIN_WORD = 12


class LazyCat:
    """Row-lazy concatenation table with dense-list rows.

    ``cat[i]`` returns the full row for id ``i`` (building it on first
    access); inner loops hoist the row and then pay only a list index per
    probe, exactly as with an eager table.  Rows must never be mutated by
    callers.
    """

    __slots__ = ("_elements", "_id_of", "_rows", "_size")

    def __init__(self, elements: tuple, id_of: dict) -> None:
        self._elements = elements
        self._id_of = id_of
        self._size = len(elements)
        self._rows: list = [None] * self._size

    def __getitem__(self, i: int) -> list:
        row = self._rows[i]
        if row is None:
            left = self._elements[i]
            if left is None:
                row = [-1] * self._size
            else:
                get = self._id_of.get
                row = [-1]
                row.extend(
                    get(left + right, -1) for right in self._elements[1:]
                )
            self._rows[i] = row
        return row

    def __len__(self) -> int:
        return self._size

    def __iter__(self):
        return (self[i] for i in range(self._size))

    def point(self, i: int, j: int) -> int:
        """Single entry without materialising the row.

        Serves huge-universe shallow queries (a 0/1-round game on a long
        word touches a handful of entries out of millions); falls through
        to the dense row when one already exists.
        """
        row = self._rows[i]
        if row is not None:
            return row[j]
        left = self._elements[i]
        right = self._elements[j]
        if left is None or right is None:
            return -1
        return self._id_of.get(left + right, -1)


@dataclass(frozen=True, eq=False)
class InternTable:
    """Precomputed integer view of one structure's universe.

    ``eq=False`` keeps identity hashing: tables come out of the
    module-level caches below, so identical arguments already yield the
    identical object.
    """

    word: str
    alphabet: tuple[str, ...]
    #: Elements by id; index 0 is ``None`` (⊥ has no string form).
    elements: tuple[str | None, ...]
    #: String → id for every factor in the universe (no ⊥ entry).
    id_of: dict[str, int]
    #: Factor length by id; ``lengths[0] == 0`` as a harmless filler.
    lengths: tuple[int, ...]
    #: ``cat[i][j]`` = id of ``elements[i]+elements[j]`` or ``-1``.
    cat: LazyCat
    #: Constant ids: one per sorted alphabet letter, then ε.
    const_ids: tuple[int, ...]
    #: Number of factors; valid ids are ``0..n_factors``.
    n_factors: int

    def id_for(self, element: str | None) -> int:
        """Id of ``element`` (``None`` meaning ⊥); ``KeyError`` if foreign."""
        if element is None:
            return BOTTOM_ID
        return self.id_of[element]


def _build(word: str, alphabet: tuple[str, ...], allowed: frozenset[str]) -> InternTable:
    ordered = sorted(allowed, key=lambda f: (len(f), f))
    elements: tuple[str | None, ...] = (None, *ordered)
    id_of = {factor: index for index, factor in enumerate(ordered, start=1)}
    lengths = tuple(0 if element is None else len(element) for element in elements)
    n = len(ordered)

    cat = LazyCat(elements, id_of)

    const_ids = tuple(
        id_of.get(symbol, BOTTOM_ID) for symbol in (*alphabet, "")
    )
    stats.record("tables_built")
    return InternTable(
        word=word,
        alphabet=alphabet,
        elements=elements,
        id_of=id_of,
        lengths=lengths,
        cat=cat,
        const_ids=const_ids,
        n_factors=n,
    )


@lru_cache(maxsize=512)
def intern_table(word: str, alphabet: tuple[str, ...]) -> InternTable:
    """Interned view of the full word structure ``𝔄_word``.

    With an active artifact store (``repro.store``), long words hydrate
    their factor universe from the ``intern-universe`` artifact instead
    of recomputing ``factors(word)``, and publish it on first build.
    The hydrated table is bit-identical to the cold one: ``_build``
    re-sorts the universe into the same ⊥-first ``(len, text)`` order
    either way.
    """
    if store_runtime.active() is not None and len(word) >= _STORE_MIN_WORD:
        args = {"word": word, "alphabet": "".join(alphabet)}
        payload = store_runtime.load(
            artifacts.INTERN_UNIVERSE_KIND,
            artifacts.INTERN_UNIVERSE_VERSION,
            args,
        )
        if payload is not None:
            stats.record("tables_hydrated")
            return _build(word, alphabet, frozenset(payload))
        universe = factors(word)
        store_runtime.publish(
            artifacts.INTERN_UNIVERSE_KIND,
            artifacts.INTERN_UNIVERSE_VERSION,
            args,
            sorted(universe, key=lambda f: (len(f), f)),
        )
        return _build(word, alphabet, universe)
    return _build(word, alphabet, factors(word))


@lru_cache(maxsize=512)
def intern_restricted_table(
    word: str, alphabet: tuple[str, ...], allowed: frozenset[str]
) -> InternTable:
    """Interned view of a restricted structure with universe ``allowed``.

    ``allowed`` must be a subset of ``Facs(word)``; the caller
    (``repro.ef.solver``) passes ``RestrictedStructure.universe_factors``
    which already enforces this.
    """
    return _build(word, alphabet, allowed)


cachestats.register("kernel.intern_table", intern_table)
cachestats.register("kernel.intern_restricted_table", intern_restricted_table)
