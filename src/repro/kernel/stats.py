"""Process-global counters for the kernel solver.

The engine executor samples :func:`snapshot` around every task (in the
worker process that runs it) and reports per-task deltas plus run-wide
totals in ``BENCH_engine.json`` — the same protocol as
:mod:`repro.cachestats`, but for search-effort counters instead of
lru_cache hit rates.

Counters are cumulative per process; all consumers work with deltas, so
the absolute values never need resetting outside of tests.

Updates hold the module lock: the serve daemon's handler threads all
funnel through :func:`record`, and ``_COUNTERS[name] += amount`` is a
read-modify-write that loses increments when two threads interleave
(``concurrency.atomic-counters``).  The lock is reached through
:func:`_lock`, which re-arms it after a ``fork`` — an engine worker must
not inherit a lock a parent thread happened to hold at fork time
(``concurrency.fork-safety``).  Workers never contend: each engine
process has its own counters and merges via the snapshot/delta protocol.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Iterator, Mapping

__all__ = [
    "COUNTER_NAMES",
    "OVERHEAD_COUNTER",
    "diff",
    "record",
    "reset",
    "shard_overhead",
    "snapshot",
]

#: Every counter the kernel maintains.  The first block is the FC EF
#: solver; ``sweep_*`` is the language-sweep layer (``repro.kernel.sweep``);
#: ``foeq_*`` is the FO[EQ] position-game solver (``repro.foeq.games``,
#: which records through this module — the counters live with the kernel
#: so the engine's per-task sampling covers every solver uniformly);
#: ``automorphism_cap_hits`` / ``symmetry_product_skips`` count the
#: identity fallbacks of ``repro.kernel.automorphisms`` /
#: ``KernelSolver._symmetries`` (data for the ROADMAP's "revisit caps
#: with measurements" item); the ``*_hydrated`` counters measure
#: warm-start activity from the artifact store (``repro.store``) —
#: universes, groups, sweep tables and EF memo entries that were loaded
#: instead of rebuilt.  The ``sweep_relation_*`` block measures the
#: relational sweep (``SweepProgram.relation``): satisfying-assignment
#: rows emitted, big-int bitset operations spent in pool/quantifier
#: evaluation (``repro.kernel.bitset`` masks), and per-word relation
#: tables hydrated from ``sweep-relation`` store artifacts instead of
#: re-enumerated.
COUNTER_NAMES = (
    "positions_explored",
    "table_hits",
    "symmetry_cuts",
    "consistency_checks",
    "tables_built",
    "tables_hydrated",
    "sweep_words_interned",
    "sweep_tables_extended",
    "sweep_tables_rebuilt",
    "sweep_tables_hydrated",
    "foeq_positions_explored",
    "foeq_table_hits",
    "foeq_consistency_checks",
    "automorphism_cap_hits",
    "automorphism_groups_hydrated",
    "symmetry_product_skips",
    "ef_memo_entries_hydrated",
    "sweep_relation_rows",
    "sweep_bitset_ops",
    "sweep_relations_hydrated",
    "shard_overhead_ops",
)

#: Where increments land while a :func:`shard_overhead` scope is active.
#: Intra-task shards duplicate a small amount of enumeration work (the
#: prefix-path factor tables below a subtree root, a signature sweep
#: repeated per pair-lane); attributing it to one aggregate counter
#: keeps the *real* counters exactly conserved — Σ(per-shard deltas)
#: equals the monolithic task's deltas — so the bench_smoke gates stay
#: meaningful, while the duplication itself stays measured and gated.
OVERHEAD_COUNTER = "shard_overhead_ops"

_COUNTERS: dict[str, int] = {name: 0 for name in COUNTER_NAMES}

#: Thread-local overhead-scope depth.  Thread-local by construction:
#: a shard task sets it only for its own execution thread, so the serve
#: daemon's handler threads (which never shard) are unaffected, and a
#: forked worker starts with whatever the forking thread held — depth 0,
#: since the engine parent never records inside an overhead scope.
_OVERHEAD = threading.local()

_LOCK = threading.Lock()
_LOCK_PID = os.getpid()


def _lock() -> threading.Lock:
    """The module lock, rebuilt in the child after a ``fork``.

    A forked engine worker inherits the parent's lock object in whatever
    state it was in at fork time; if any parent thread held it, the
    child would deadlock on first :func:`record`.  Comparing pids and
    re-arming gives every process a private, initially-released lock —
    the same per-pid reconnect discipline as ``SqliteBackend._connection``.
    """
    global _LOCK, _LOCK_PID
    pid = os.getpid()
    if pid != _LOCK_PID:
        _LOCK = threading.Lock()
        _LOCK_PID = pid
    return _LOCK


@contextmanager
def shard_overhead() -> Iterator[None]:
    """Attribute counter increments inside the scope to
    :data:`OVERHEAD_COUNTER` instead of their own names.

    Used by intra-task shards around work a monolithic run would do
    once but a shard partition repeats (stem-path table builds, a
    non-primary lane's signature sweep).  Re-entrant; restores the
    previous depth even on exceptions.
    """
    depth = getattr(_OVERHEAD, "depth", 0)
    _OVERHEAD.depth = depth + 1
    try:
        yield
    finally:
        _OVERHEAD.depth = depth


def record(name: str, amount: int = 1) -> None:
    """Increment one counter (unknown names raise ``KeyError``).

    Inside a :func:`shard_overhead` scope the increment is rerouted to
    :data:`OVERHEAD_COUNTER` (after the name check, so typos still fail
    loudly in shard code paths).
    """
    if name not in _COUNTERS:
        raise KeyError(name)
    if getattr(_OVERHEAD, "depth", 0) and name != OVERHEAD_COUNTER:
        name = OVERHEAD_COUNTER
    with _lock():
        _COUNTERS[name] += amount


def snapshot() -> dict[str, int]:
    """Current value of every counter (a consistent point-in-time copy)."""
    with _lock():
        return dict(_COUNTERS)


def diff(
    before: Mapping[str, int], after: Mapping[str, int]
) -> dict[str, int]:
    """Counter deltas between two snapshots; zero-delta entries omitted."""
    deltas = {}
    for name in COUNTER_NAMES:
        delta = after.get(name, 0) - before.get(name, 0)
        if delta:
            deltas[name] = delta
    return deltas


def reset() -> None:
    """Zero every counter (tests only — deltas never need this)."""
    with _lock():
        for name in COUNTER_NAMES:
            _COUNTERS[name] = 0
