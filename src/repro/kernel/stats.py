"""Process-global counters for the kernel solver.

The engine executor samples :func:`snapshot` around every task (in the
worker process that runs it) and reports per-task deltas plus run-wide
totals in ``BENCH_engine.json`` — the same protocol as
:mod:`repro.cachestats`, but for search-effort counters instead of
lru_cache hit rates.

Counters are cumulative per process; all consumers work with deltas, so
the absolute values never need resetting outside of tests.
"""

from __future__ import annotations

from typing import Mapping

__all__ = ["COUNTER_NAMES", "diff", "record", "reset", "snapshot"]

#: Every counter the kernel maintains.  The first block is the FC EF
#: solver; ``sweep_*`` is the language-sweep layer (``repro.kernel.sweep``);
#: ``foeq_*`` is the FO[EQ] position-game solver (``repro.foeq.games``,
#: which records through this module — the counters live with the kernel
#: so the engine's per-task sampling covers every solver uniformly);
#: ``automorphism_cap_hits`` / ``symmetry_product_skips`` count the
#: identity fallbacks of ``repro.kernel.automorphisms`` /
#: ``KernelSolver._symmetries`` (data for the ROADMAP's "revisit caps
#: with measurements" item); the ``*_hydrated`` counters measure
#: warm-start activity from the artifact store (``repro.store``) —
#: universes, groups, sweep tables and EF memo entries that were loaded
#: instead of rebuilt.
COUNTER_NAMES = (
    "positions_explored",
    "table_hits",
    "symmetry_cuts",
    "consistency_checks",
    "tables_built",
    "tables_hydrated",
    "sweep_words_interned",
    "sweep_tables_extended",
    "sweep_tables_rebuilt",
    "sweep_tables_hydrated",
    "foeq_positions_explored",
    "foeq_table_hits",
    "foeq_consistency_checks",
    "automorphism_cap_hits",
    "automorphism_groups_hydrated",
    "symmetry_product_skips",
    "ef_memo_entries_hydrated",
)

_COUNTERS: dict[str, int] = {name: 0 for name in COUNTER_NAMES}


def record(name: str, amount: int = 1) -> None:
    """Increment one counter (unknown names raise ``KeyError``)."""
    _COUNTERS[name] += amount


def snapshot() -> dict[str, int]:
    """Current value of every counter."""
    return dict(_COUNTERS)


def diff(
    before: Mapping[str, int], after: Mapping[str, int]
) -> dict[str, int]:
    """Counter deltas between two snapshots; zero-delta entries omitted."""
    deltas = {}
    for name in COUNTER_NAMES:
        delta = after.get(name, 0) - before.get(name, 0)
        if delta:
            deltas[name] = delta
    return deltas


def reset() -> None:
    """Zero every counter (tests only — deltas never need this)."""
    for name in COUNTER_NAMES:
        _COUNTERS[name] = 0
