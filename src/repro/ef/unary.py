"""Specialised EF-game solver for unary words.

Over Σ = {a}, the structure 𝔄_{aᵖ} is isomorphic to the arithmetic
structure ``({0, 1, …, p} ∪ {⊥}, +≤p, 0, 1)``: factors are lengths, and
``x ≐ y·z`` holds iff ``x = y + z`` (all within range).  Encoding elements
as machine integers makes consistency checks pure arithmetic, which speeds
the exact solver up by 1–2 orders of magnitude over the generic
string-based :class:`repro.ef.solver.GameSolver` — enough to find the
minimal ≡₃-equivalent pair, which the generic solver cannot reach.

The encoding is validated against the generic solver in the test suite
(identical verdicts on a grid of (p, q, k)).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "UnaryGameSolver",
    "unary_equiv_k",
    "minimal_equivalent_pair",
    "unary_equivalence_classes",
]

#: Integer stand-in for ⊥ (never a legal length).
_BOTTOM = -1


@dataclass
class UnaryGameSolver:
    """Exact ≡_k solver for ``aᵖ`` vs ``a^q`` with integer elements.

    Universes are ``{0..p} ∪ {⊥}`` and ``{0..q} ∪ {⊥}``; the partial
    isomorphism conditions of Definition 3.1 become:

    * ``x = 0 ⟺ y = 0`` and ``x = 1 ⟺ y = 1``  (constants ε and a),
    * ``xᵢ = xⱼ ⟺ yᵢ = yⱼ``,
    * ``xᵢ = xⱼ + x_l ⟺ yᵢ = yⱼ + y_l``  (⊥ never participates),
    * ``x = ⊥ ⟺ y = ⊥``.
    """

    p: int
    q: int
    _memo: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.p < 0 or self.q < 0:
            raise ValueError("exponents must be non-negative")

    # -- consistency ----------------------------------------------------------

    def consistent(self, pairs: frozenset) -> bool:
        """Definition 3.1 over the arithmetic encoding, constants included.

        The constant pairs (0, 0) and — when both words are non-empty —
        (1, 1) are appended before checking, mirroring ⟨𝔄⟩/⟨𝔅⟩.
        """
        extended = set(pairs)
        extended.add((0, 0))
        if self.p >= 1 and self.q >= 1:
            extended.add((1, 1))
        elif self.p >= 1 or self.q >= 1:
            # Exactly one word contains the letter: constant a is ⊥ on one
            # side only, so the constant vectors themselves already violate
            # condition 1 (⊥ pattern).
            return False
        xs = [a for a, _ in extended]
        ys = [b for _, b in extended]
        n = len(xs)
        for i in range(n):
            if (xs[i] == _BOTTOM) != (ys[i] == _BOTTOM):
                return False
            if (xs[i] == 0) != (ys[i] == 0):
                return False
            if (xs[i] == 1) != (ys[i] == 1):
                return False
            for j in range(n):
                if (xs[i] == xs[j]) != (ys[i] == ys[j]):
                    return False
        for i in range(n):
            if xs[i] == _BOTTOM:
                continue
            for j in range(n):
                if xs[j] == _BOTTOM:
                    continue
                for l in range(n):
                    if xs[l] == _BOTTOM:
                        continue
                    if (xs[i] == xs[j] + xs[l]) != (ys[i] == ys[j] + ys[l]):
                        return False
        return True

    # -- decision --------------------------------------------------------------

    def duplicator_wins(self, rounds: int, pairs: frozenset = frozenset()) -> bool:
        """Decide whether Duplicator survives ``rounds`` more rounds."""
        if not self.consistent(pairs):
            return False
        return self._wins(rounds, pairs)

    def _wins(self, rounds: int, pairs: frozenset) -> bool:
        if rounds == 0:
            return True
        key = (rounds, pairs)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        result = all(
            self._response(rounds, pairs, side, element) is not None
            for side, element in self._spoiler_moves(pairs)
        )
        self._memo[key] = result
        return result

    def _spoiler_moves(self, pairs: frozenset):
        taken_a = {a for a, _ in pairs}
        taken_b = {b for _, b in pairs}
        for element in range(self.p + 1):
            if element not in taken_a:
                yield "A", element
        for element in range(self.q + 1):
            if element not in taken_b:
                yield "B", element
        # ⊥ moves are dominated (the mirrored ⊥ response always works when
        # both constants vectors agree, which `consistent` guarantees), so
        # they are skipped entirely.

    def _response(self, rounds: int, pairs: frozenset, side: str, element: int):
        """Find a winning response; mirror-biased candidate order."""
        if side == "A":
            limit = self.q
            offset = self.q - self.p
        else:
            limit = self.p
            offset = self.p - self.q
        mirror = element + offset  # same distance from the right end
        candidates = sorted(
            range(limit + 1),
            key=lambda d: min(abs(d - element), abs(d - mirror)),
        )
        for response in candidates:
            pair = (element, response) if side == "A" else (response, element)
            extended = pairs | {pair}
            if self.consistent(extended) and self._wins(rounds - 1, extended):
                return response
        return None

    def memo_size(self) -> int:
        return len(self._memo)


def unary_equiv_k(p: int, q: int, k: int) -> bool:
    """Decide ``aᵖ ≡_k a^q`` with the arithmetic solver."""
    if p == q:
        return True
    return UnaryGameSolver(p, q).duplicator_wins(k)


def minimal_equivalent_pair(
    k: int, max_exponent: int = 128
) -> tuple[int, int] | None:
    """Minimal ``(p, q)`` with ``p < q ≤ max_exponent`` and ``aᵖ ≡_k a^q``.

    The fast-solver twin of
    :func:`repro.ef.equivalence.find_equivalent_unary_pair`.
    """
    for p in range(max_exponent):
        for q in range(p + 1, max_exponent + 1):
            if unary_equiv_k(p, q, k):
                return (p, q)
    return None


def unary_equivalence_classes(k: int, max_exponent: int) -> list[list[int]]:
    """Partition ``{0, …, max_exponent}`` into ≡_k classes.

    Exploits transitivity: each new exponent is compared against one
    representative per known class.  The result exposes the
    threshold-plus-congruence shape of unary ≡_k (e.g. for k = 2 the
    classes become eventually periodic with period 2 from threshold 12).
    """
    classes: list[list[int]] = []
    for n in range(max_exponent + 1):
        for cls in classes:
            if unary_equiv_k(cls[0], n, k):
                cls.append(n)
                break
        else:
            classes.append([n])
    return classes
