"""Strategy objects and the game-play / verification harness.

Strategies are stateful (they may consult the full history), so they expose
``clone()`` for the exhaustive verifier, which branches over every Spoiler
continuation and needs an independent strategy copy per branch.

* :class:`SolverDuplicator` — optimal play extracted from the exact solver.
* :class:`IdentityDuplicator` — the trivial winning strategy when both
  structures represent the *same* word.
* :class:`ScriptedSpoiler` — replays a fixed move list (used to encode the
  paper's Example 3.3 Spoiler strategy).
* :class:`RandomSpoiler` — randomised adversary for statistical checks.
* :func:`play_game` — run one game to completion.
* :func:`exhaustively_verify_duplicator` — machine-check that a strategy
  survives **every** Spoiler line for k rounds (the workhorse behind the
  Pseudo-Congruence and Primitive-Power experiments E08/E12).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.ef.game import GameArena, Move, Play, Side
from repro.ef.solver import GameSolver
from repro.fc.structures import BOTTOM

__all__ = [
    "Duplicator",
    "Spoiler",
    "SolverDuplicator",
    "IdentityDuplicator",
    "ScriptedSpoiler",
    "RandomSpoiler",
    "GreedySolverSpoiler",
    "play_game",
    "exhaustively_verify_duplicator",
    "VerificationResult",
]


class Duplicator(Protocol):
    """A Duplicator strategy: respond to each Spoiler move in turn."""

    def respond(self, move: Move):  # -> element of the opposite structure
        ...

    def clone(self) -> "Duplicator":
        ...


class Spoiler(Protocol):
    """A Spoiler strategy: produce the next move given the play so far."""

    def choose(self, play: Play) -> Move:
        ...


@dataclass
class SolverDuplicator:
    """Optimal Duplicator play, extracted from a :class:`GameSolver`.

    ``total_rounds`` is the game length k; the strategy tracks the pairs
    played so far and asks the solver for a winning response each round.
    Raises ``RuntimeError`` if put in a lost position (which cannot happen
    when the structures are ≡_k and the strategy plays from the start).
    """

    solver: GameSolver
    total_rounds: int
    pairs: frozenset = frozenset()
    used_rounds: int = 0

    def respond(self, move: Move):
        remaining = self.total_rounds - self.used_rounds
        if remaining < 1:
            raise RuntimeError("all rounds already played")
        response = self.solver.winning_response(remaining, self.pairs, move)
        if response is None:
            raise RuntimeError(
                f"SolverDuplicator has no winning response to {move!r} — "
                "the structures are not equivalent at this round count"
            )
        if move.side == "A":
            self.pairs = self.pairs | {(move.element, response)}
        else:
            self.pairs = self.pairs | {(response, move.element)}
        self.used_rounds += 1
        return response

    def clone(self) -> "SolverDuplicator":
        return SolverDuplicator(
            self.solver, self.total_rounds, self.pairs, self.used_rounds
        )


@dataclass
class IdentityDuplicator:
    """Duplicator for a game over two copies of the same word: echo back.

    Trivially winning (``w ≡_k w`` for every k) and used as the look-up
    strategy for the reflexive side of the Pseudo-Congruence Lemma.
    """

    def respond(self, move: Move):
        return move.element

    def clone(self) -> "IdentityDuplicator":
        return IdentityDuplicator()


@dataclass
class ScriptedSpoiler:
    """Replay a fixed list of moves (or move factories taking the play).

    Entries may be :class:`Move` or callables ``play -> Move`` for moves
    that depend on Duplicator's earlier responses (as in Example 3.3).
    """

    script: list
    cursor: int = 0

    def choose(self, play: Play) -> Move:
        if self.cursor >= len(self.script):
            raise RuntimeError("scripted spoiler ran out of moves")
        entry = self.script[self.cursor]
        self.cursor += 1
        return entry(play) if callable(entry) else entry


@dataclass
class RandomSpoiler:
    """Uniformly random Spoiler (seeded for reproducibility)."""

    rng: random.Random = field(default_factory=lambda: random.Random(0))

    def choose(self, play: Play) -> Move:
        side: Side = self.rng.choice(("A", "B"))
        universe = play.arena.universe(side)
        return Move(side, self.rng.choice(universe))


@dataclass
class GreedySolverSpoiler:
    """Optimal Spoiler: plays the solver's winning move when one exists,
    otherwise falls back to a deterministic "most constraining" move
    (longest unseen factor).  Useful to confirm Spoiler wins ≢_k pairs."""

    solver: GameSolver
    total_rounds: int

    def choose(self, play: Play) -> Move:
        tuple_a, tuple_b = play.tuples()
        pairs = frozenset(zip(tuple_a, tuple_b))
        remaining = self.total_rounds - len(play)
        move = self.solver.spoiler_winning_move(remaining, pairs)
        if move is not None:
            return move
        taken = {e for e in tuple_a if e is not BOTTOM}
        candidates = [
            e
            for e in play.arena.universe("A")
            if e is not BOTTOM and e not in taken
        ]
        if not candidates:
            return Move("A", BOTTOM)
        return Move("A", max(candidates, key=len))


def play_game(
    arena: GameArena, spoiler: Spoiler, duplicator: Duplicator
) -> Play:
    """Run all ``arena.rounds`` rounds and return the completed play."""
    play = Play(arena)
    for _ in range(arena.rounds):
        move = spoiler.choose(play)
        response = duplicator.respond(move)
        play.record(move, response)
    return play


@dataclass(frozen=True)
class VerificationResult:
    """Outcome of exhaustive strategy verification.

    ``survived`` — whether Duplicator stayed violation-free on every line;
    ``lines_checked`` — number of complete Spoiler lines explored;
    ``losing_line`` — the first losing play found, if any.
    """

    survived: bool
    lines_checked: int
    losing_line: Play | None

    def __bool__(self) -> bool:
        return self.survived


def exhaustively_verify_duplicator(
    arena: GameArena,
    duplicator_factory: Callable[[], Duplicator],
    skip_bottom: bool = True,
) -> VerificationResult:
    """Check a Duplicator strategy against **every** Spoiler line.

    Walks the full Spoiler move tree (both sides, all elements, all
    rounds), cloning the strategy at each branch, and verifies the
    partial-isomorphism invariant after every round — i.e. a machine proof
    that the strategy wins the k-round game on this arena.

    ``skip_bottom`` drops Spoiler moves choosing ⊥ (the paper's convention;
    Duplicator answers ⊥ and nothing changes).  The cost is
    O((|A|+|B|)^k) lines; keep ``arena.rounds ≤ 3`` for interactive use.
    """
    lines = 0
    losing: list[Play | None] = [None]

    def moves():
        for move in GameArena(
            arena.structure_a, arena.structure_b, arena.rounds
        ).moves():
            if skip_bottom and move.element is BOTTOM:
                continue
            yield move

    def walk(play: Play, duplicator: Duplicator, depth: int) -> bool:
        nonlocal lines
        if depth == arena.rounds:
            lines += 1
            return True
        for move in moves():
            branch_play = Play(arena, list(play.rounds_played))
            branch_dup = duplicator.clone()
            response = branch_dup.respond(move)
            branch_play.record(move, response)
            if not branch_play.duplicator_won():
                losing[0] = branch_play
                return False
            if not walk(branch_play, branch_dup, depth + 1):
                return False
        return True

    survived = walk(Play(arena), duplicator_factory(), 0)
    return VerificationResult(survived, lines, losing[0])
