"""The original string-based EF-game solver, kept as a differential oracle.

This is the pre-kernel implementation of ``repro.ef.solver`` verbatim:
positions are frozensets of ``(element_a, element_b)`` string/⊥ pairs
and every consistency query rebuilds the full tuple and re-runs the
O(n³) :func:`~repro.ef.partial_iso.find_violation` check.  It is slow —
exponentially often so in the round count — but its correctness argument
is a direct transcription of Definition 3.1 and the game semantics, so
it serves as the ground truth that ``tests/kernel/`` differentially
checks the interned :class:`~repro.kernel.efcore.KernelSolver` against.

Do not optimise this module; its value is being obviously correct.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ef.game import GameArena, Move
from repro.ef.partial_iso import extend_with_constants, find_violation
from repro.fc.structures import BOTTOM

__all__ = ["NaiveGameSolver"]

Element = "str | object"
Pair = tuple  # (a-side element, b-side element)


def _element_sort_key(element) -> tuple:
    """Deterministic element ordering: ⊥ first, then by (length, text)."""
    if element is BOTTOM:
        return (0, 0, "")
    return (1, len(element), element)


@dataclass
class NaiveGameSolver:
    """Exact EF-game solver for one pair of structures (reference version).

    One solver instance amortises its memo table across all queries about
    the same ``(structure_a, structure_b)`` pair — different round counts,
    strategy extraction, and mid-game positions all share it.
    """

    structure_a: object
    structure_b: object
    _memo: dict = field(default_factory=dict, repr=False)
    _universe_a: list = field(default=None, repr=False)  # type: ignore[assignment]
    _universe_b: list = field(default=None, repr=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        arena = GameArena(self.structure_a, self.structure_b, 0)
        self._universe_a = sorted(arena.universe("A"), key=_element_sort_key)
        self._universe_b = sorted(arena.universe("B"), key=_element_sort_key)

    # -- consistency ---------------------------------------------------------

    def consistent(self, pairs: frozenset) -> bool:
        """Is the pair set (with constants) a partial isomorphism?"""
        ordered = sorted(pairs, key=lambda p: (_element_sort_key(p[0]), _element_sort_key(p[1])))
        tuple_a = tuple(p[0] for p in ordered)
        tuple_b = tuple(p[1] for p in ordered)
        full_a, full_b = extend_with_constants(
            self.structure_a, self.structure_b, tuple_a, tuple_b
        )
        return (
            find_violation(self.structure_a, self.structure_b, full_a, full_b)
            is None
        )

    # -- decision ------------------------------------------------------------

    def duplicator_wins(
        self, rounds: int, pairs: frozenset = frozenset()
    ) -> bool:
        """Decide whether Duplicator wins from the given position.

        ``pairs`` must already be consistent (the empty position always is
        when both words realise the same constants pattern; an inconsistent
        start is reported as a Spoiler win).
        """
        if not self.consistent(pairs):
            return False
        return self._wins(rounds, pairs)

    def _wins(self, rounds: int, pairs: frozenset) -> bool:
        if rounds == 0:
            return True
        key = (rounds, pairs)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        result = True
        for move in self._spoiler_moves(pairs):
            if self._response(rounds, pairs, move) is None:
                result = False
                break
        self._memo[key] = result
        return result

    def _spoiler_moves(self, pairs: frozenset):
        taken_a = {p[0] for p in pairs}
        taken_b = {p[1] for p in pairs}
        for element in self._universe_a:
            if element not in taken_a:
                yield Move("A", element)
        for element in self._universe_b:
            if element not in taken_b:
                yield Move("B", element)

    def _response(
        self, rounds: int, pairs: frozenset, move: Move
    ) -> "Element | None":
        """Find a winning Duplicator response to ``move`` (``None`` = lost).

        Responses are tried mirror-first: the literally identical factor,
        then same-length factors, then the rest — in practice Duplicator's
        winning response is usually "the analogous element", so this
        ordering finds wins quickly.
        """
        if move.side == "A":
            candidates = self._universe_b
            make_pair = lambda d: (move.element, d)  # noqa: E731
        else:
            candidates = self._universe_a
            make_pair = lambda d: (d, move.element)  # noqa: E731
        ordered = sorted(
            candidates,
            key=lambda d: (
                d != move.element,
                (d is BOTTOM) != (move.element is BOTTOM),
                abs(
                    (0 if d is BOTTOM else len(d))
                    - (0 if move.element is BOTTOM else len(move.element))
                ),
            ),
        )
        for response in ordered:
            extended = pairs | {make_pair(response)}
            if self.consistent(extended) and self._wins(rounds - 1, extended):
                return response
        return None

    # -- strategy extraction ---------------------------------------------------

    def winning_response(
        self, rounds: int, pairs: frozenset, move: Move
    ) -> "Element | None":
        """Public strategy hook: Duplicator's winning response at a position
        with ``rounds`` rounds *remaining* (the current move included).

        Returns ``None`` when no response keeps Duplicator winning.
        """
        if rounds < 1:
            raise ValueError("no rounds remaining")
        return self._response(rounds, pairs, move)

    def spoiler_winning_move(
        self,
        rounds: int,
        pairs: frozenset = frozenset(),
        skip_bottom: bool = False,
    ) -> "Move | None":
        """Return a Spoiler move that defeats every Duplicator response, or
        ``None`` if Duplicator wins the position.

        ``skip_bottom`` restricts the search to factor moves — used by the
        formula synthesiser, whose quantifiers range over Facs only.  A ⊥
        move adds the inert pair (⊥, ⊥), so whenever only ⊥ "wins" at this
        round count the position is equally lost one round earlier; the
        synthesiser handles that by recursing at rounds − 1.
        """
        if not self.consistent(pairs):
            return None  # already won by Spoiler; no further move needed
        if rounds == 0:
            return None
        for move in self._spoiler_moves(pairs):
            if skip_bottom and move.element is BOTTOM:
                continue
            if self._response(rounds, pairs, move) is None:
                return move
        return None

    def memo_size(self) -> int:
        """Number of memoised positions (for the benchmark reports)."""
        return len(self._memo)
