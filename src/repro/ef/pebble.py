"""Pebble games — the conclusion's finite-variable direction.

The (m-round, p-pebble) game: the players share p pebble pairs; each round
Spoiler either places or *re-places* a pebble pair — picking a pebble
index and an element on one side — and Duplicator answers on the other.
Duplicator wins if after every round the currently-placed pebble pairs
(plus constants) form a partial isomorphism.  Survival for all m
characterises equivalence under FC-formulas using at most p distinct
variables and quantifier rank ≤ m (FCᵖ(m)).

The interesting phenomenon the experiment (E22) exhibits: with few pebbles
but many rounds, Spoiler can still separate words that plain ≡_k with
k = p rounds cannot — re-placing pebbles trades rank for variables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ef.partial_iso import extend_with_constants, find_violation

__all__ = ["PebbleGameSolver", "pebble_equiv", "pebble_distinguishing_rounds"]


@dataclass
class PebbleGameSolver:
    """Exact solver for the p-pebble, m-round game on two word structures.

    A position is a tuple of ``p`` slots, each ``None`` (pebble off the
    board) or a pair (a-element, b-element).
    """

    structure_a: object
    structure_b: object
    pebbles: int
    _memo: dict = field(default_factory=dict, repr=False)

    def consistent(self, position: tuple) -> bool:
        placed = [pair for pair in position if pair is not None]
        tuple_a = tuple(p[0] for p in placed)
        tuple_b = tuple(p[1] for p in placed)
        full_a, full_b = extend_with_constants(
            self.structure_a, self.structure_b, tuple_a, tuple_b
        )
        return (
            find_violation(self.structure_a, self.structure_b, full_a, full_b)
            is None
        )

    def duplicator_wins(
        self, rounds: int, position: tuple | None = None
    ) -> bool:
        if position is None:
            position = (None,) * self.pebbles
        if not self.consistent(position):
            return False
        return self._wins(rounds, position)

    def _wins(self, rounds: int, position: tuple) -> bool:
        if rounds == 0:
            return True
        key = (rounds, position)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        result = True
        for index in range(self.pebbles):
            for side, structure in (("A", self.structure_a), ("B", self.structure_b)):
                for element in structure.universe_factors:
                    if self._response(rounds, position, index, side, element) is None:
                        result = False
                        break
                if not result:
                    break
            if not result:
                break
        self._memo[key] = result
        return result

    def _response(self, rounds, position, index, side, element):
        other = self.structure_b if side == "A" else self.structure_a
        candidates = sorted(
            other.universe_factors,
            key=lambda d: (d != element, abs(len(d) - len(element)), d),
        )
        for response in candidates:
            pair = (
                (element, response) if side == "A" else (response, element)
            )
            extended = position[:index] + (pair,) + position[index + 1 :]
            if self.consistent(extended) and self._wins(rounds - 1, extended):
                return response
        return None


def pebble_equiv(
    w: str, v: str, pebbles: int, rounds: int, alphabet: str | None = None
) -> bool:
    """Duplicator survives the p-pebble, m-round game on 𝔄_w, 𝔅_v."""
    from repro.fc.structures import word_structure

    if alphabet is None:
        alphabet = "".join(sorted(set(w) | set(v)))
    if w == v:
        return True
    solver = PebbleGameSolver(
        word_structure(w, alphabet), word_structure(v, alphabet), pebbles
    )
    return solver.duplicator_wins(rounds)


def pebble_distinguishing_rounds(
    w: str, v: str, pebbles: int, max_rounds: int, alphabet: str | None = None
) -> int | None:
    """Least m ≤ max_rounds at which Spoiler wins with p pebbles."""
    if w == v:
        return None
    from repro.fc.structures import word_structure

    if alphabet is None:
        alphabet = "".join(sorted(set(w) | set(v)))
    solver = PebbleGameSolver(
        word_structure(w, alphabet), word_structure(v, alphabet), pebbles
    )
    for m in range(max_rounds + 1):
        if not solver.duplicator_wins(m):
            return m
    return None
