"""The paper's constructive Duplicator strategies (proofs as code).

Two strategy compositions drive all of Section 4:

* :class:`PseudoCongruenceDuplicator` — the Lemma 4.4 strategy.  Duplicator
  plays the k-round game on ``w₁·w₂`` vs ``v₁·v₂`` by consulting two
  *look-up games*: 𝒢₁ on (w₁, v₁) and 𝒢₂ on (w₂, v₂), both played with
  winning strategies for k+r+2 rounds.  Moves inside Facs(w₁)∩Facs(w₂) must
  be answered identically by both look-ups (Lemma 4.2); moves straddling
  the w₁/w₂ boundary are split with ``f_split`` and answered by the
  concatenation of the look-up responses (Lemma 4.3 guarantees the
  concatenation is a factor).

* :class:`PrimitivePowerDuplicator` — the Lemma 4.8 strategy.  For the
  k-round game on ``w^p`` vs ``w^q`` (w primitive), Duplicator consults a
  k+3-round look-up game on ``aᵖ`` vs ``a^q``: a move ``u`` with
  ``exp_w(u) = n ≥ 1`` factorises uniquely as ``u₁·wⁿ·u₂`` (Lemma 4.7);
  the look-up answers ``aᵐ`` and Duplicator replies ``u₁·wᵐ·u₂``.

Both classes implement the ``Duplicator`` protocol, so the exhaustive
verifier in ``repro.ef.strategies`` can machine-check them against every
Spoiler line — experiments E08 and E12.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ef.game import Move
from repro.fc.structures import BOTTOM
from repro.words.factors import common_factors
from repro.words.primitivity import exponent, is_primitive, power_factorization

__all__ = [
    "boundary_split",
    "PseudoCongruenceDuplicator",
    "PrimitivePowerDuplicator",
    "FringePreservingUnaryDuplicator",
]


def boundary_split(u: str, left: str, right: str) -> tuple[str, str]:
    """The paper's ``f_split``: split a straddling factor ``u`` of
    ``left·right`` into (suffix of ``left``, prefix of ``right``).

    Preconditions: ``u ∈ Facs(left·right) \\ (Facs(left) ∪ Facs(right))``.
    Every occurrence of such a ``u`` crosses the boundary; we use the
    leftmost occurrence (the proof notes the precise choice is irrelevant —
    any fixed choice works).
    """
    combined = left + right
    boundary = len(left)
    start = combined.find(u)
    while start != -1:
        end = start + len(u)
        if start < boundary < end:
            return u[: boundary - start], u[boundary - start :]
        start = combined.find(u, start + 1)
    raise ValueError(
        f"{u!r} does not straddle the boundary of {left!r}·{right!r} — "
        "it is a factor of one side (f_split does not apply)"
    )


@dataclass
class PseudoCongruenceDuplicator:
    """Lemma 4.4's composed strategy for the game on ``w₁w₂`` vs ``v₁v₂``.

    ``lookup1`` / ``lookup2`` must be winning Duplicator strategies for the
    look-up games on (w₁, v₁) and (w₂, v₂) with k+r+2 rounds, where
    ``r = max{|u| : u ∈ Facs(w₁) ∩ Facs(w₂)}`` — the caller (usually
    ``repro.core.pseudo_congruence``) is responsible for supplying
    strategies with enough spare rounds; this class checks the lemma's
    side condition ``Facs(w₁)∩Facs(w₂) = Facs(v₁)∩Facs(v₂)`` eagerly.
    """

    w1: str
    w2: str
    v1: str
    v2: str
    lookup1: object  # Duplicator over (w1, v1)
    lookup2: object  # Duplicator over (w2, v2)

    def __post_init__(self) -> None:
        if common_factors(self.w1, self.w2) != common_factors(self.v1, self.v2):
            raise ValueError(
                "Pseudo-Congruence precondition failed: "
                "Facs(w1) ∩ Facs(w2) ≠ Facs(v1) ∩ Facs(v2)"
            )

    def respond(self, move: Move):
        if move.element is BOTTOM:
            return BOTTOM
        u = move.element
        if move.side == "A":
            left, right = self.w1, self.w2
        else:
            left, right = self.v1, self.v2
        in_left = u in left
        in_right = u in right
        if in_left and in_right:
            # u ∈ Facs(left) ∩ Facs(right): both look-ups must answer u
            # itself (Lemma 4.2, using the r+2 spare rounds).
            r1 = self.lookup1.respond(Move(move.side, u))
            r2 = self.lookup2.respond(Move(move.side, u))
            if r1 != r2:
                raise RuntimeError(
                    f"look-up games disagree on shared factor {u!r}: "
                    f"{r1!r} vs {r2!r} — look-up strategies lack the "
                    "required spare rounds"
                )
            return r1
        if in_left:
            # Spoiler "skips" the round of 𝒢₂.
            return self.lookup1.respond(Move(move.side, u))
        if in_right:
            return self.lookup2.respond(Move(move.side, u))
        # Straddling factor: split at the boundary and answer with the
        # concatenation of the look-up responses.
        u1, u2 = boundary_split(u, left, right)
        r1 = self.lookup1.respond(Move(move.side, u1))
        r2 = self.lookup2.respond(Move(move.side, u2))
        return r1 + r2

    def clone(self) -> "PseudoCongruenceDuplicator":
        return PseudoCongruenceDuplicator(
            self.w1,
            self.w2,
            self.v1,
            self.v2,
            self.lookup1.clone(),
            self.lookup2.clone(),
        )


@dataclass
class FringePreservingUnaryDuplicator:
    """The response pattern a *fully-provisioned* unary look-up is forced
    into (Claims D.1 / D.2 in the Primitive Power proof), made explicit.

    The proof gives the look-up game k+3 rounds precisely so that any
    winning strategy must (a) echo powers of size ≤ 2 (constants force
    this), and (b) mirror the distance from the right end when it is ≤ 2
    (claim:almostFull) — otherwise Spoiler exploits the fringe.  The
    exactly-known unary witness pairs are only certified at rank ≤ 2, so
    a solver-extracted strategy at that budget is free to violate (b) and
    the composed Primitive Power strategy then breaks (we verified this
    experimentally: the a^11 ↦ a^11 response on the (12, 14) pair maps a
    boundary factor to a non-factor).  This class plays the pattern the
    claims force, directly:

    * n ≤ 2                    → m = n          (constants),
    * source − n ≤ 2           → m = target − (source − n)  (almostFull),
    * otherwise (middle zone)  → m = min(n, target − 3).

    The composed strategy built on it is then *machine-verified
    exhaustively* — the verification itself is the certificate, replacing
    the unobtainable high-rank unary premise.
    """

    p: int  # A-side exponent
    q: int  # B-side exponent
    unary_letter: str = "a"

    def respond(self, move: Move):
        if move.element is BOTTOM:
            return BOTTOM
        n = len(move.element)
        if move.side == "A":
            source, target = self.p, self.q
        else:
            source, target = self.q, self.p
        if n <= 2:
            m = n
        elif source - n <= 2:
            m = target - (source - n)
        else:
            m = min(n, target - 3)
        if m < 0:
            raise RuntimeError(
                f"no fringe-preserving response for a^{n} on side "
                f"{move.side} of (a^{self.p}, a^{self.q})"
            )
        return self.unary_letter * m

    def clone(self) -> "FringePreservingUnaryDuplicator":
        return FringePreservingUnaryDuplicator(
            self.p, self.q, self.unary_letter
        )


@dataclass
class PrimitivePowerDuplicator:
    """Lemma 4.8's strategy for the game on ``base^p`` vs ``base^q``.

    ``lookup`` must be a winning Duplicator strategy for the k+3-round
    look-up game on ``aᵖ`` vs ``a^q`` (sides aligned: A ↦ aᵖ, B ↦ a^q).
    """

    base: str
    p: int
    q: int
    lookup: object  # Duplicator over (a^p, a^q)
    unary_letter: str = "a"

    def __post_init__(self) -> None:
        if not is_primitive(self.base):
            raise ValueError(
                f"Primitive Power strategy requires a primitive base, got "
                f"{self.base!r}"
            )

    def respond(self, move: Move):
        if move.element is BOTTOM:
            return BOTTOM
        u = move.element
        n = exponent(self.base, u) if u else 0
        lookup_response = self.lookup.respond(
            Move(move.side, self.unary_letter * n)
        )
        m = 0 if lookup_response is BOTTOM else len(lookup_response)
        if n == 0:
            if m != 0:
                raise RuntimeError(
                    "look-up strategy answered ε with a non-empty power — "
                    "it is not playing a winning strategy"
                )
            # Factors without a full base occurrence transfer verbatim
            # (they are factors of base·base, present in every power ≥ 2).
            return u
        decomposition = power_factorization(self.base, u)
        return decomposition.with_exponent(m)

    def clone(self) -> "PrimitivePowerDuplicator":
        return PrimitivePowerDuplicator(
            self.base, self.p, self.q, self.lookup.clone(), self.unary_letter
        )
