"""Partial isomorphisms between τ_Σ word structures (Definition 3.1).

A pair of equal-length element tuples ``(ā, b̄)`` defines a *partial
isomorphism* between 𝔄_w and 𝔅_v if

1. constants are mirrored: ``aᵢ = c^𝔄 ⟺ bᵢ = c^𝔅`` for every constant c,
2. equalities are mirrored: ``aᵢ = aⱼ ⟺ bᵢ = bⱼ``,
3. concatenation is mirrored: ``aᵢ = aⱼ·a_k ⟺ bᵢ = bⱼ·b_k``.

In the EF game the played elements are *combined with* the constant vectors
⟨𝔄⟩, ⟨𝔅⟩ before checking, so the game-facing helpers here do that
automatically.  The check is O(n³) in the tuple length; tuples are tiny
(k + |Σ| + 1), so this is never a bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.fc.structures import BOTTOM, Bottom

__all__ = [
    "PartialIsoViolation",
    "is_partial_isomorphism",
    "find_violation",
    "extend_with_constants",
]

Element = "str | Bottom"


@dataclass(frozen=True)
class PartialIsoViolation:
    """A witness that ``(ā, b̄)`` is *not* a partial isomorphism.

    ``kind`` is one of ``"constant"``, ``"equality"``, ``"concat"``;
    ``indices`` are the positions involved; ``detail`` is human-readable.
    """

    kind: str
    indices: tuple[int, ...]
    detail: str

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"{self.kind} violation at {self.indices}: {self.detail}"


def _concat(left: Element, right: Element) -> Element:
    """Concatenation lifted to ⊥: any ⊥ operand poisons the result."""
    if left is BOTTOM or right is BOTTOM:
        return BOTTOM
    return left + right  # type: ignore[operator]


def find_violation(
    structure_a,
    structure_b,
    tuple_a: Sequence[Element],
    tuple_b: Sequence[Element],
) -> PartialIsoViolation | None:
    """Return the first Definition 3.1 violation, or ``None`` if ``(ā, b̄)``
    is a partial isomorphism between the two structures.

    The tuples must already include whatever constants should be checked;
    use :func:`extend_with_constants` (or the game harness) for the
    game-ending check.
    """
    if len(tuple_a) != len(tuple_b):
        raise ValueError(
            f"tuple lengths differ: {len(tuple_a)} vs {len(tuple_b)}"
        )
    n = len(tuple_a)

    # Condition 1: constants are mirrored.
    constant_symbols = list(structure_a.alphabet) + [""]
    for i in range(n):
        for symbol in constant_symbols:
            hits_a = tuple_a[i] == structure_a.constant(symbol)
            hits_b = tuple_b[i] == structure_b.constant(symbol)
            if hits_a != hits_b:
                display = symbol if symbol else "ε"
                return PartialIsoViolation(
                    "constant",
                    (i,),
                    f"a[{i}]={tuple_a[i]!r} vs b[{i}]={tuple_b[i]!r} "
                    f"disagree on constant {display}",
                )

    # Condition 2: equality pattern.
    for i in range(n):
        for j in range(i + 1, n):
            if (tuple_a[i] == tuple_a[j]) != (tuple_b[i] == tuple_b[j]):
                return PartialIsoViolation(
                    "equality",
                    (i, j),
                    f"a-side equality {tuple_a[i]!r}=={tuple_a[j]!r} is "
                    f"{tuple_a[i] == tuple_a[j]}, b-side is "
                    f"{tuple_b[i] == tuple_b[j]}",
                )

    # Condition 3: concatenation pattern.  aᵢ = aⱼ·a_k must use R∘, i.e. all
    # three elements must be genuine factors (⊥ never participates).
    for i in range(n):
        for j in range(n):
            for k in range(n):
                holds_a = (
                    tuple_a[i] is not BOTTOM
                    and tuple_a[j] is not BOTTOM
                    and tuple_a[k] is not BOTTOM
                    and tuple_a[i] == _concat(tuple_a[j], tuple_a[k])
                )
                holds_b = (
                    tuple_b[i] is not BOTTOM
                    and tuple_b[j] is not BOTTOM
                    and tuple_b[k] is not BOTTOM
                    and tuple_b[i] == _concat(tuple_b[j], tuple_b[k])
                )
                if holds_a != holds_b:
                    return PartialIsoViolation(
                        "concat",
                        (i, j, k),
                        f"a[{i}] ≐ a[{j}]·a[{k}] is {holds_a} but "
                        f"b[{i}] ≐ b[{j}]·b[{k}] is {holds_b}",
                    )
    return None


def is_partial_isomorphism(
    structure_a,
    structure_b,
    tuple_a: Sequence[Element],
    tuple_b: Sequence[Element],
) -> bool:
    """Return ``True`` iff ``(ā, b̄)`` defines a partial isomorphism."""
    return find_violation(structure_a, structure_b, tuple_a, tuple_b) is None


def extend_with_constants(
    structure_a,
    structure_b,
    tuple_a: Sequence[Element],
    tuple_b: Sequence[Element],
) -> tuple[tuple[Element, ...], tuple[Element, ...]]:
    """Append the constant vectors ⟨𝔄⟩ and ⟨𝔅⟩ to the played tuples.

    This mirrors the game's win condition: the final ``k + |Σ| + 1`` tuples
    consist of the k played pairs followed by the interpreted constants.
    """
    extended_a = tuple(tuple_a) + structure_a.constants_vector()
    extended_b = tuple(tuple_b) + structure_b.constants_vector()
    return extended_a, extended_b
