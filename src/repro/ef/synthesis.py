"""Distinguishing-formula synthesis: the constructive half of Theorem 3.4.

If Spoiler wins the k-round game on 𝔄_w and 𝔅_v, then some FC(k) sentence
separates the words.  The classical proof of Ehrenfeucht's theorem is
constructive, and this module executes it:

* at a position lost for Duplicator *now* (the pairs already violate
  Definition 3.1), emit the violated condition as a literal over the
  pebbled variables/constants;
* if Spoiler's winning move picks ``a ∈ A``, emit
  ``∃x: ⋀_b φ_b`` where φ_b distinguishes the position extended with
  (a, b), for every Duplicator response b;
* if Spoiler's winning move picks ``b ∈ B``, emit
  ``∀x: ⋁_a φ_a`` dually.

The result is an FC sentence φ with ``qr(φ) ≤ k``, ``𝔄_w ⊨ φ`` and
``𝔅_v ⊭ φ`` — a *certificate* of inequivalence that can be checked by the
(independent) model checker.  Sizes grow like (|A|·|B|)^k, so this is for
small k / short words — exactly where the solver operates anyway.
Syntactically identical subformulas are deduplicated before conjoining.
"""

from __future__ import annotations

from repro.ef.partial_iso import extend_with_constants, find_violation
from repro.ef.solver import GameSolver
from repro.fc.structures import BOTTOM, word_structure
from repro.fc.syntax import (
    Concat,
    Const,
    EPSILON,
    Exists,
    Forall,
    Formula,
    Not,
    Term,
    Var,
    conjunction,
    disjunction,
)

__all__ = ["synthesize_distinguishing_sentence", "SynthesisFailure"]


class SynthesisFailure(Exception):
    """Raised when the words are ≡_k (no distinguishing FC(k) sentence)."""


def _position_terms(
    solver: GameSolver, pair_list: list, variables: list[Var]
) -> tuple[list[Term], list, list]:
    """Terms naming the position: played variables then constants.

    Returns (terms, a-side values, b-side values), aligned.
    """
    terms: list[Term] = list(variables)
    values_a = [pair[0] for pair in pair_list]
    values_b = [pair[1] for pair in pair_list]
    alphabet = solver.structure_a.alphabet
    for letter in alphabet:
        terms.append(Const(letter))
    terms.append(EPSILON)
    full_a, full_b = extend_with_constants(
        solver.structure_a,
        solver.structure_b,
        tuple(values_a),
        tuple(values_b),
    )
    return terms, list(full_a), list(full_b)


def _violation_literal(
    solver: GameSolver, pair_list: list, variables: list[Var]
) -> Formula:
    """A literal true in 𝔄 and false in 𝔅 at a violated position.

    Step 1: if the ⊥-patterns of the two extended tuples differ at some
    slot, the self-atom ``(t ≐ t·ε)`` — true exactly at non-⊥ values —
    separates the structures (possibly negated).  Variables never take ⊥
    during synthesis, so such slots are always constant slots and the
    self-atom is a constant-only rank-0 sentence fragment.

    Step 2: with matching ⊥-patterns, the violated Definition 3.1
    condition (constant / equality / concatenation) converts directly to
    an atom over the pebble terms, negated when the 𝔄-side is the false
    one; the matched patterns guarantee the true side never mentions ⊥.
    """
    terms, full_a, full_b = _position_terms(solver, pair_list, variables)

    # Step 1: ⊥-pattern mismatches.
    for index in range(len(terms)):
        bottom_a = full_a[index] is BOTTOM
        bottom_b = full_b[index] is BOTTOM
        if bottom_a != bottom_b:
            self_atom = Concat(terms[index], terms[index], EPSILON)
            return Not(self_atom) if bottom_a else self_atom

    violation = find_violation(
        solver.structure_a, solver.structure_b, full_a, full_b
    )
    if violation is None:
        raise SynthesisFailure("position is a partial isomorphism")

    if violation.kind == "constant":
        (i,) = violation.indices
        alphabet = solver.structure_a.alphabet
        for symbol in list(alphabet) + [""]:
            hits_a = full_a[i] == solver.structure_a.constant(symbol)
            hits_b = full_b[i] == solver.structure_b.constant(symbol)
            if hits_a != hits_b:
                atom = Concat(terms[i], Const(symbol), EPSILON)
                # ⊥-patterns match, so the hitting side's constant is a
                # real (non-⊥) value and the atom is true exactly there.
                return atom if hits_a else Not(atom)
        raise AssertionError("constant violation without a witness symbol")
    if violation.kind == "equality":
        i, j = violation.indices
        atom = Concat(terms[i], terms[j], EPSILON)
        holds_a = full_a[i] == full_a[j] and full_a[i] is not BOTTOM
        return atom if holds_a else Not(atom)
    i, j, k = violation.indices
    atom = Concat(terms[i], terms[j], terms[k])
    holds_a = (
        full_a[i] is not BOTTOM
        and full_a[j] is not BOTTOM
        and full_a[k] is not BOTTOM
        and full_a[i] == full_a[j] + full_a[k]
    )
    return atom if holds_a else Not(atom)


def _synthesize(
    solver: GameSolver,
    rounds: int,
    pair_list: list,
    variables: list[Var],
) -> Formula:
    """φ with qr ≤ rounds, true in (𝔄, ā), false in (𝔅, b̄)."""
    pairs = frozenset(pair_list)
    if not solver.consistent(pairs):
        return _violation_literal(solver, pair_list, variables)
    if rounds == 0:
        raise SynthesisFailure(
            "Duplicator survives 0 more rounds — position not distinguishable"
        )
    move = solver.spoiler_winning_move(rounds, pairs, skip_bottom=True)
    if move is None:
        # Either Duplicator genuinely wins, or only the inert ⊥ move wins
        # at this round count; in the latter case the position is equally
        # lost with one round fewer (the ⊥ move only adds the pair (⊥, ⊥)),
        # so descend and retry.
        if solver.spoiler_winning_move(rounds, pairs) is None:
            raise SynthesisFailure(
                f"Duplicator wins the {rounds}-round game from this position"
            )
        return _synthesize(solver, rounds - 1, pair_list, variables)
    fresh = Var(f"s{len(pair_list)}")
    subformulas: list[Formula] = []
    seen: set = set()
    if move.side == "A":
        # ∃x: for EVERY Duplicator response b the position is still won.
        for response in solver.structure_b.universe():
            if response is BOTTOM:
                continue  # variables never take ⊥
            extended = pair_list + [(move.element, response)]
            sub = _synthesize(solver, rounds - 1, extended, variables + [fresh])
            if sub not in seen:
                seen.add(sub)
                subformulas.append(sub)
        return Exists(fresh, conjunction(subformulas))
    for response in solver.structure_a.universe():
        if response is BOTTOM:
            continue
        extended = pair_list + [(response, move.element)]
        sub = _synthesize(solver, rounds - 1, extended, variables + [fresh])
        if sub not in seen:
            seen.add(sub)
            subformulas.append(sub)
    return Forall(fresh, disjunction(subformulas))


def synthesize_distinguishing_sentence(
    w: str, v: str, k: int, alphabet: str | None = None
) -> Formula:
    """Return an FC(k) sentence φ with ``𝔄_w ⊨ φ`` and ``𝔅_v ⊭ φ``.

    Raises :class:`SynthesisFailure` when ``w ≡_k v`` (Theorem 3.4: no
    such sentence exists).  The returned certificate is independent of the
    solver — verify it with ``repro.fc.models``.
    """
    if alphabet is None:
        alphabet = "".join(sorted(set(w) | set(v)))
    solver = GameSolver(
        word_structure(w, alphabet), word_structure(v, alphabet)
    )
    return _synthesize(solver, k, [], [])
