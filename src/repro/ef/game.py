"""EF game positions and plays over τ_Σ word structures (Section 3).

A k-round game 𝒢 over 𝔄_w and 𝔅_v: each round Spoiler picks a structure
and an element of its universe; Duplicator answers with an element of the
other structure.  Duplicator wins iff the played pairs, *combined with the
constant vectors* ⟨𝔄_w⟩ and ⟨𝔅_v⟩, form a partial isomorphism.

This module provides the passive data model (moves, plays, win checking);
the decision procedure lives in ``repro.ef.solver`` and strategy objects in
``repro.ef.strategies``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Literal

from repro.ef.partial_iso import (
    PartialIsoViolation,
    extend_with_constants,
    find_violation,
)
from repro.fc.structures import Bottom

__all__ = ["Side", "Move", "Round", "Play", "GameArena"]

Side = Literal["A", "B"]
Element = "str | Bottom"


@dataclass(frozen=True)
class Move:
    """A Spoiler move: the chosen structure side and element."""

    side: Side
    element: Element

    def __repr__(self) -> str:
        return f"Spoiler[{self.side}]→{self.element!r}"


@dataclass(frozen=True)
class Round:
    """One completed round: Spoiler's move and Duplicator's response.

    ``element_a`` / ``element_b`` are the elements that ended up on the
    𝔄-side and 𝔅-side respectively, regardless of who chose which.
    """

    move: Move
    response: Element

    @property
    def element_a(self) -> Element:
        return self.move.element if self.move.side == "A" else self.response

    @property
    def element_b(self) -> Element:
        return self.move.element if self.move.side == "B" else self.response


@dataclass
class GameArena:
    """The two structures of a game plus its round budget.

    ``structure_a`` / ``structure_b`` may be :class:`WordStructure` or
    restrictions thereof — anything exposing ``universe_factors``,
    ``constants_vector``, ``constant`` and ``contains``.
    """

    structure_a: object
    structure_b: object
    rounds: int

    def __post_init__(self) -> None:
        if self.rounds < 0:
            raise ValueError(f"negative round count: {self.rounds}")
        if self.structure_a.alphabet != self.structure_b.alphabet:
            raise ValueError(
                "both structures must share one signature τ_Σ "
                f"({self.structure_a.alphabet!r} vs "
                f"{self.structure_b.alphabet!r})"
            )

    def universe(self, side: Side) -> list[Element]:
        """All legal Spoiler choices on ``side`` (including ⊥)."""
        structure = self.structure_a if side == "A" else self.structure_b
        return structure.universe()

    def opposite(self, side: Side) -> Side:
        return "B" if side == "A" else "A"

    def moves(self) -> Iterator[Move]:
        """All Spoiler moves (both sides, whole universes)."""
        for side in ("A", "B"):
            for element in self.universe(side):
                yield Move(side, element)


@dataclass
class Play:
    """A (possibly partial) play of the game: the rounds so far."""

    arena: GameArena
    rounds_played: list[Round] = field(default_factory=list)

    def record(self, move: Move, response: Element) -> None:
        """Append a completed round.

        Validates that the move/response elements belong to the right
        universes — a Duplicator response outside the opposite structure is
        an immediate loss and is rejected loudly rather than silently.
        """
        side = move.side
        chooser = (
            self.arena.structure_a if side == "A" else self.arena.structure_b
        )
        responder = (
            self.arena.structure_b if side == "A" else self.arena.structure_a
        )
        if not chooser.contains(move.element):
            raise ValueError(f"illegal Spoiler move: {move!r}")
        if not responder.contains(response):
            raise ValueError(
                f"Duplicator response {response!r} is not an element of the "
                f"{self.arena.opposite(side)}-side structure"
            )
        self.rounds_played.append(Round(move, response))

    def tuples(self) -> tuple[tuple[Element, ...], tuple[Element, ...]]:
        """The played pairs as parallel tuples (ā, b̄), without constants."""
        tuple_a = tuple(r.element_a for r in self.rounds_played)
        tuple_b = tuple(r.element_b for r in self.rounds_played)
        return tuple_a, tuple_b

    def violation(self) -> PartialIsoViolation | None:
        """Check the win condition *with constants appended* (Section 3)."""
        tuple_a, tuple_b = self.tuples()
        full_a, full_b = extend_with_constants(
            self.arena.structure_a, self.arena.structure_b, tuple_a, tuple_b
        )
        return find_violation(
            self.arena.structure_a, self.arena.structure_b, full_a, full_b
        )

    def duplicator_won(self) -> bool:
        """Duplicator wins a *completed* play iff no violation exists.

        For partial plays this reports whether Duplicator is still alive —
        partial isomorphisms are closed under prefixes, so a violated
        partial play is already lost.
        """
        return self.violation() is None

    def __len__(self) -> int:
        return len(self.rounds_played)
