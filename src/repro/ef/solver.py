"""Exact decision of ``𝔄_w ≡_k 𝔅_v`` by memoised, symmetry-reduced search.

The solver explores the EF game tree:  a *position* is the set of pairs
played so far plus the number of rounds left.  Duplicator wins a position
iff for **every** Spoiler move there is **some** response leading to a
winning sub-position; the recursion bottoms out at zero rounds with the
partial-isomorphism check (constants included).

Since the interned-factor kernel landed, :class:`GameSolver` is a thin
facade over :class:`repro.kernel.efcore.KernelSolver`: each structure's
universe is interned once into dense integer ids
(:func:`repro.kernel.interning.intern_table`, shared process-wide via a
registered lru cache), positions become sorted tuples of int pairs, the
transposition table is keyed on a canonical form quotienting automorphic
pairs, and consistency is checked incrementally — only the newly played
pair is validated against the position.  The facade translates between
the public string/⊥ element vocabulary and kernel ids at the boundary
and is bit-for-bit compatible with the original solver: same results,
same deterministic move and response ordering (the old implementation
survives as :class:`repro.ef.naive.NaiveGameSolver`, the oracle that
``tests/kernel/`` checks this one against).

Exactness comes at exponential cost in k; the kernel pushes the
practical envelope to ``|Facs| ≲ 120`` per structure at ``k ≤ 3``.
Larger instances are handled by the paper's *constructive* strategies in
``repro.ef.composition``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ef.game import GameArena, Move
from repro.fc.structures import BOTTOM, WordStructure
from repro.kernel.efcore import KernelSolver
from repro.kernel.interning import (
    BOTTOM_ID,
    InternTable,
    intern_restricted_table,
    intern_table,
)
from repro.store import artifacts, runtime as store_runtime

__all__ = ["GameSolver", "solve_equivalence"]

#: Memo tables smaller than this are never persisted: tiny games (the
#: E01 loops build hundreds of solvers) would flood the store with
#: records cheaper to recompute than to load.
_PERSIST_MIN_ENTRIES = 32

Element = "str | object"
Pair = tuple  # (a-side element, b-side element)


def _table_for(structure) -> InternTable:
    """Interned view of a :class:`WordStructure` or a restriction thereof."""
    alphabet = tuple(structure.alphabet)
    if isinstance(structure, WordStructure):
        return intern_table(structure.word, alphabet)
    return intern_restricted_table(
        structure.word, alphabet, structure.universe_factors
    )


@dataclass
class GameSolver:
    """Exact EF-game solver for one pair of structures.

    One solver instance amortises its transposition table across all
    queries about the same ``(structure_a, structure_b)`` pair —
    different round counts, strategy extraction, and mid-game positions
    all share it.  Elements in the public API are factors (``str``) or
    ``BOTTOM``; pairs/positions are frozensets of element pairs, exactly
    as before the kernel rewrite.
    """

    structure_a: object
    structure_b: object
    _core: KernelSolver = field(default=None, repr=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        # The arena constructor is the historical signature validator
        # (same-alphabet check, error message included).
        GameArena(self.structure_a, self.structure_b, 0)
        self._core = KernelSolver(
            _table_for(self.structure_a), _table_for(self.structure_b)
        )
        self._store_args = None
        self._persisted_size = 0
        if store_runtime.active() is not None:
            table_a = self._core.table_a
            table_b = self._core.table_b
            # Universe fingerprints key restricted structures correctly:
            # the same word pair with different allowed sets must not
            # share memo entries.  Ids are stable across processes (the
            # deterministic (len, text) assignment), so replayed
            # positions mean the same elements.
            self._store_args = {
                "alphabet": "".join(table_a.alphabet),
                "word_a": table_a.word,
                "word_b": table_b.word,
                "universe_a": artifacts.fingerprint_strings(
                    table_a.elements[1:]
                ),
                "universe_b": artifacts.fingerprint_strings(
                    table_b.elements[1:]
                ),
            }
            payload = store_runtime.load(
                artifacts.EF_MEMO_KIND,
                artifacts.EF_MEMO_VERSION,
                self._store_args,
            )
            if payload is not None:
                self._core.preload_memo(artifacts.decode_memo(payload))
                self._persisted_size = self._core.memo_size()

    def _persist(self) -> None:
        """Publish the transposition table when a query has grown it.

        Runs after every public query; a no-op without an active store,
        below :data:`_PERSIST_MIN_ENTRIES`, or when nothing new was
        memoised since the last publish.
        """
        if self._store_args is None:
            return
        size = self._core.memo_size()
        if size < _PERSIST_MIN_ENTRIES or size <= self._persisted_size:
            return
        store_runtime.publish(
            artifacts.EF_MEMO_KIND,
            artifacts.EF_MEMO_VERSION,
            self._store_args,
            artifacts.encode_memo(self._core.export_memo()),
        )
        # Monotone publish watermark: a racing stale value only triggers
        # one redundant publish of an identical content-addressed record.
        # repro-lint: allow[concurrency.shared-state-race] monotone watermark
        self._persisted_size = size

    # -- element translation -------------------------------------------------

    def _pair_ids(self, pairs) -> "list | None":
        """Positions as id pairs; ``None`` if any element is foreign.

        An element outside its structure's universe makes the position
        meaningless (the game never produces one); it is reported as
        inconsistent rather than an error.
        """
        table_a = self._core.table_a
        table_b = self._core.table_b
        out = []
        for element_a, element_b in pairs:
            try:
                out.append(
                    (
                        table_a.id_for(None if element_a is BOTTOM else element_a),
                        table_b.id_for(None if element_b is BOTTOM else element_b),
                    )
                )
            except KeyError:
                return None
        return out

    def _element(self, side: str, element_id: int):
        if element_id == BOTTOM_ID:
            return BOTTOM
        table = self._core.table_a if side == "A" else self._core.table_b
        return table.elements[element_id]

    # -- consistency ---------------------------------------------------------

    def consistent(self, pairs: frozenset) -> bool:
        """Is the pair set (with constants) a partial isomorphism?"""
        ids = self._pair_ids(pairs)
        return ids is not None and self._core.position_consistent(ids)

    # -- decision ------------------------------------------------------------

    def duplicator_wins(
        self, rounds: int, pairs: frozenset = frozenset()
    ) -> bool:
        """Decide whether Duplicator wins from the given position.

        ``pairs`` must already be consistent (the empty position always is
        when both words realise the same constants pattern; an inconsistent
        start is reported as a Spoiler win).
        """
        ids = self._pair_ids(pairs)
        if ids is None:
            return False
        verdict = self._core.duplicator_wins(rounds, ids)
        self._persist()
        return verdict

    # -- strategy extraction ---------------------------------------------------

    def winning_response(
        self, rounds: int, pairs: frozenset, move: Move
    ) -> "Element | None":
        """Public strategy hook: Duplicator's winning response at a position
        with ``rounds`` rounds *remaining* (the current move included).

        Returns ``None`` when no response keeps Duplicator winning.
        """
        if rounds < 1:
            raise ValueError("no rounds remaining")
        ids = self._pair_ids(pairs)
        if ids is None:
            return None
        move_table = (
            self._core.table_a if move.side == "A" else self._core.table_b
        )
        try:
            element_id = move_table.id_for(
                None if move.element is BOTTOM else move.element
            )
        except KeyError:
            return None
        response = self._core.winning_response(
            rounds, ids, move.side, element_id
        )
        self._persist()
        if response is None:
            return None
        return self._element("B" if move.side == "A" else "A", response)

    def spoiler_winning_move(
        self,
        rounds: int,
        pairs: frozenset = frozenset(),
        skip_bottom: bool = False,
    ) -> "Move | None":
        """Return a Spoiler move that defeats every Duplicator response, or
        ``None`` if Duplicator wins the position.

        ``skip_bottom`` restricts the search to factor moves — used by the
        formula synthesiser, whose quantifiers range over Facs only.  A ⊥
        move adds the inert pair (⊥, ⊥), so whenever only ⊥ "wins" at this
        round count the position is equally lost one round earlier; the
        synthesiser handles that by recursing at rounds − 1.
        """
        ids = self._pair_ids(pairs)
        if ids is None:
            return None
        found = self._core.spoiler_winning_move(rounds, ids, skip_bottom)
        self._persist()
        if found is None:
            return None
        side, element_id = found
        return Move(side, self._element(side, element_id))

    # -- introspection ---------------------------------------------------------

    def memo_size(self) -> int:
        """Number of memoised canonical positions (for benchmark reports)."""
        return self._core.memo_size()

    def solver_stats(self) -> dict[str, int]:
        """Search-effort counters for this solver instance.

        ``positions_explored`` (transposition-table misses computed),
        ``table_hits``, ``symmetry_cuts`` (positions whose canonical form
        differed from their literal form), ``consistency_checks``
        (incremental pair validations), plus ``memo_size`` and the two
        universe sizes.  Process-wide totals flow into
        ``BENCH_engine.json`` via :mod:`repro.kernel.stats`.
        """
        out = self._core.stats()
        out["memo_size"] = self._core.memo_size()
        out["universe_a"] = self._core.table_a.n_factors + 1
        out["universe_b"] = self._core.table_b.n_factors + 1
        return out


def solve_equivalence(structure_a, structure_b, rounds: int) -> bool:
    """One-shot ``𝔄 ≡_k 𝔅`` decision by the **naive reference solver**.

    This deliberately bypasses the kernel: it is the ground-truth oracle
    that the differential tests in ``tests/kernel/`` compare
    :class:`GameSolver` against, so it must stay independent of the
    machinery under test.  Production callers wanting speed should hold a
    :class:`GameSolver` (or use :func:`repro.ef.equivalence.equiv_k`).
    """
    from repro.ef.naive import NaiveGameSolver

    return NaiveGameSolver(structure_a, structure_b).duplicator_wins(rounds)
