"""Existential EF games — the conclusion's core-spanner direction.

In the *existential* k-round game Spoiler may only pick elements of the
**left** structure 𝔄_w; Duplicator answers in 𝔅_v.  Duplicator surviving
characterises preservation of existential-positive sentences: every
∃⁺FC(k) sentence (built from atoms with ∧, ∨, ∃ only) true in 𝔄_w is true
in 𝔅_v.  The paper's conclusion suggests this restriction as a route to
further *core spanner* inexpressibility results; this module provides the
game, the solver, and the corresponding preorder.

Note the asymmetry: ``existential_preorder(w, v, k)`` is reflexive and
transitive but not symmetric — e.g. every ∃⁺-sentence true in ``a`` is
true in ``aa`` (a is a factor-substructure), but not conversely at rank 1.
The win condition keeps only the "forward" directions of Definition 3.1:
equalities and concatenations *holding in 𝔄* must hold in 𝔅 (plus
constants both ways, since constants are closed terms available to both
polarities in atoms... no — atoms are positive, so only the A→B direction
of every condition is required).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fc.structures import BOTTOM

__all__ = [
    "positive_homomorphism",
    "ExistentialGameSolver",
    "existential_preorder",
    "existential_equivalent",
]


def positive_homomorphism(
    structure_a, structure_b, tuple_a, tuple_b
) -> bool:
    """The existential win condition: a *positive-atom homomorphism*.

    Every atomic fact over the chosen elements and constants that holds in
    𝔄 must hold in 𝔅 — equalities, concatenations, and constant
    identifications are preserved A → B (not necessarily reflected).
    """
    if len(tuple_a) != len(tuple_b):
        raise ValueError("tuples must have equal length")
    full_a = tuple(tuple_a) + structure_a.constants_vector()
    full_b = tuple(tuple_b) + structure_b.constants_vector()
    n = len(full_a)
    for i in range(n):
        for j in range(n):
            if full_a[i] == full_a[j] and full_a[i] is not BOTTOM:
                if full_b[i] != full_b[j] or full_b[i] is BOTTOM:
                    return False
            for k in range(n):
                holds_a = (
                    full_a[i] is not BOTTOM
                    and full_a[j] is not BOTTOM
                    and full_a[k] is not BOTTOM
                    and full_a[i] == full_a[j] + full_a[k]
                    and structure_a.contains(full_a[i])
                )
                if holds_a:
                    holds_b = (
                        full_b[i] is not BOTTOM
                        and full_b[j] is not BOTTOM
                        and full_b[k] is not BOTTOM
                        and full_b[i] == full_b[j] + full_b[k]
                        and structure_b.contains(full_b[i])
                    )
                    if not holds_b:
                        return False
    return True


@dataclass
class ExistentialGameSolver:
    """Exact solver for the existential (one-sided) k-round game."""

    structure_a: object
    structure_b: object
    _memo: dict = field(default_factory=dict, repr=False)

    def consistent(self, pairs: frozenset) -> bool:
        ordered = sorted(
            pairs, key=lambda p: (str(p[0]), str(p[1]))
        )
        return positive_homomorphism(
            self.structure_a,
            self.structure_b,
            tuple(p[0] for p in ordered),
            tuple(p[1] for p in ordered),
        )

    def duplicator_wins(self, rounds: int, pairs: frozenset = frozenset()) -> bool:
        if not self.consistent(pairs):
            return False
        return self._wins(rounds, pairs)

    def _wins(self, rounds: int, pairs: frozenset) -> bool:
        if rounds == 0:
            return True
        key = (rounds, pairs)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        taken = {p[0] for p in pairs}
        result = True
        for element in self.structure_a.universe_factors:
            if element in taken:
                continue
            if self._response(rounds, pairs, element) is None:
                result = False
                break
        self._memo[key] = result
        return result

    def _response(self, rounds: int, pairs: frozenset, element):
        candidates = sorted(
            self.structure_b.universe_factors,
            key=lambda d: (d != element, abs(len(d) - len(element)), d),
        )
        for response in candidates:
            extended = pairs | {(element, response)}
            if self.consistent(extended) and self._wins(rounds - 1, extended):
                return response
        return None


def existential_preorder(
    w: str, v: str, k: int, alphabet: str | None = None
) -> bool:
    """``w ⪯_k^∃ v``: Duplicator survives the one-sided k-round game,
    i.e. every ∃⁺FC(k) sentence true in w holds in v."""
    from repro.fc.structures import word_structure

    if alphabet is None:
        alphabet = "".join(sorted(set(w) | set(v)))
    if w == v:
        return True
    solver = ExistentialGameSolver(
        word_structure(w, alphabet), word_structure(v, alphabet)
    )
    return solver.duplicator_wins(k)


def existential_equivalent(
    w: str, v: str, k: int, alphabet: str | None = None
) -> bool:
    """Both directions of the preorder (∃⁺FC(k)-indistinguishable)."""
    return existential_preorder(w, v, k, alphabet) and existential_preorder(
        v, w, k, alphabet
    )
