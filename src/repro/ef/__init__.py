"""Ehrenfeucht–Fraïssé games for FC (Section 3 of the paper).

Partial isomorphisms, game plays, an exact ≡_k solver, strategy objects,
and the paper's constructive strategy compositions (Pseudo-Congruence,
Primitive Power).
"""

from repro.ef.composition import (
    FringePreservingUnaryDuplicator,
    PrimitivePowerDuplicator,
    PseudoCongruenceDuplicator,
    boundary_split,
)
from repro.ef.characteristic import characteristic_sentence
from repro.ef.existential import (
    ExistentialGameSolver,
    existential_equivalent,
    existential_preorder,
    positive_homomorphism,
)
from repro.ef.pebble import (
    PebbleGameSolver,
    pebble_distinguishing_rounds,
    pebble_equiv,
)
from repro.ef.synthesis import (
    SynthesisFailure,
    synthesize_distinguishing_sentence,
)
from repro.ef.unary import (
    UnaryGameSolver,
    minimal_equivalent_pair,
    unary_equiv_k,
    unary_equivalence_classes,
)
from repro.ef.equivalence import (
    UnaryWitness,
    distinguishing_rank,
    equiv_k,
    find_equivalent_unary_pair,
    solver_for,
)
from repro.ef.game import GameArena, Move, Play, Round, Side
from repro.ef.partial_iso import (
    PartialIsoViolation,
    extend_with_constants,
    find_violation,
    is_partial_isomorphism,
)
from repro.ef.solver import GameSolver, solve_equivalence
from repro.ef.strategies import (
    Duplicator,
    GreedySolverSpoiler,
    IdentityDuplicator,
    RandomSpoiler,
    ScriptedSpoiler,
    SolverDuplicator,
    Spoiler,
    VerificationResult,
    exhaustively_verify_duplicator,
    play_game,
)

__all__ = [
    "FringePreservingUnaryDuplicator",
    "characteristic_sentence",
    "ExistentialGameSolver",
    "existential_equivalent",
    "existential_preorder",
    "positive_homomorphism",
    "PebbleGameSolver",
    "pebble_distinguishing_rounds",
    "pebble_equiv",
    "SynthesisFailure",
    "synthesize_distinguishing_sentence",
    "UnaryGameSolver",
    "minimal_equivalent_pair",
    "unary_equiv_k",
    "unary_equivalence_classes",
    "PrimitivePowerDuplicator",
    "PseudoCongruenceDuplicator",
    "boundary_split",
    "UnaryWitness",
    "distinguishing_rank",
    "equiv_k",
    "find_equivalent_unary_pair",
    "solver_for",
    "GameArena",
    "Move",
    "Play",
    "Round",
    "Side",
    "PartialIsoViolation",
    "extend_with_constants",
    "find_violation",
    "is_partial_isomorphism",
    "GameSolver",
    "solve_equivalence",
    "Duplicator",
    "GreedySolverSpoiler",
    "IdentityDuplicator",
    "RandomSpoiler",
    "ScriptedSpoiler",
    "SolverDuplicator",
    "Spoiler",
    "VerificationResult",
    "exhaustively_verify_duplicator",
    "play_game",
]
